//! Motif discovery: find the common sub-trajectory of two trips that share
//! part of their path, with geodab fingerprints and with the exact BTM
//! baseline, and compare costs (Section VI-C / Figure 11 of the paper).
//!
//! Run with `cargo run --release --example motif_discovery`.

use geodabs::core::discover_motif;
use geodabs::distance::btm;
use geodabs::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two commutes that approach from different directions, share a 5.4 km
    // stretch through the center, then split again (~15 m between samples).
    let hub = Point::new(51.5074, -0.1278)?;
    let shared: Vec<Point> = (0..360)
        .map(|i| hub.destination(90.0, i as f64 * 15.0))
        .collect();
    let mut commute_a: Vec<Point> = (1..160)
        .rev()
        .map(|i| hub.destination(225.0, i as f64 * 15.0))
        .collect();
    commute_a.extend(shared.iter().copied());
    let mut commute_b: Vec<Point> = (1..160)
        .rev()
        .map(|i| hub.destination(315.0, i as f64 * 15.0))
        .collect();
    commute_b.extend(shared.iter().copied());
    let a = Trajectory::new(commute_a);
    let b = Trajectory::new(commute_b);
    println!(
        "trajectory A: {} points ({:.1} km), trajectory B: {} points ({:.1} km)",
        a.len(),
        a.ground_length_meters() / 1e3,
        b.len(),
        b.ground_length_meters() / 1e3
    );

    // Geodab motif discovery over winnowed fingerprint sequences.
    let fingerprinter = Fingerprinter::default();
    let t0 = Instant::now();
    let fa = fingerprinter.normalize_and_fingerprint(&a);
    let fb = fingerprinter.normalize_and_fingerprint(&b);
    // Motif length in fingerprints: half the shorter sequence, so the
    // example adapts if the pipeline parameters change.
    let motif_fps = (fa.len().min(fb.len()) / 2).max(2);
    let geodab_motif =
        discover_motif(&fa, &fb, motif_fps).ok_or("fingerprint sequences too short")?;
    let geodab_time = t0.elapsed();
    println!(
        "\ngeodab motif:   windows ({}..{}) x ({}..{}), jaccard distance {:.3}, {:.2} ms",
        geodab_motif.start_a,
        geodab_motif.start_a + motif_fps,
        geodab_motif.start_b,
        geodab_motif.start_b + motif_fps,
        geodab_motif.distance,
        geodab_time.as_secs_f64() * 1e3
    );
    println!(
        "global jaccard distance between A and B: {:.3} (the motif is much closer)",
        fa.jaccard_distance(&fb)
    );

    // Exact BTM baseline: DFD over every pair of 240-point windows.
    let t0 = Instant::now();
    let exact = btm(&a, &b, 240).ok_or("trajectories too short")?;
    let btm_time = t0.elapsed();
    println!(
        "BTM exact motif: A[{}..{}] x B[{}..{}], frechet distance {:.1} m, {:.2} ms",
        exact.start_a,
        exact.start_a + exact.len,
        exact.start_b,
        exact.start_b + exact.len,
        exact.distance,
        btm_time.as_secs_f64() * 1e3
    );
    println!(
        "\nspeedup of the fingerprint method: {:.0}x",
        btm_time.as_secs_f64() / geodab_time.as_secs_f64().max(1e-9)
    );
    Ok(())
}
