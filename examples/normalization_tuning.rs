//! Normalization tuning: sweep the geohash normalization depth and watch
//! precision/recall, reproducing the paper's parameter-validation method
//! (Section V-C / Figure 8) on a small sample.
//!
//! Run with `cargo run --release --example normalization_tuning`.

use geodabs::gen::dataset::{Dataset, DatasetConfig};
use geodabs::index::eval::{average_pr_curve, pr_curve, ranked_ids};
use geodabs::prelude::*;
use geodabs::roadnet::generators::{grid_network, GridConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = grid_network(&GridConfig::default(), 42);
    let dataset = Dataset::generate(
        &network,
        &DatasetConfig {
            routes: 15,
            per_direction: 5,
            queries: 10,
            ..DatasetConfig::default()
        },
        8,
    )?;

    println!("depth sweep over {} queries:", dataset.queries().len());
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "depth", "P@recall=.5", "P@recall=1", "mean P"
    );
    for depth in [32u8, 34, 36, 38, 40] {
        let config = GeodabConfig::builder().normalization_depth(depth).build()?;
        let mut index = GeodabIndex::new(config);
        for record in dataset.records() {
            index.insert(record.id, &record.trajectory);
        }
        let mut curves = Vec::new();
        for q in dataset.queries() {
            let hits = index.search(&q.trajectory, &SearchOptions::default());
            curves.push(pr_curve(&ranked_ids(&hits), &dataset.relevant_ids(q)));
        }
        let avg = average_pr_curve(&curves, 11);
        let mean: f64 = avg.iter().map(|p| p.precision).sum::<f64>() / avg.len() as f64;
        println!(
            "{:>8} {:>12.3} {:>12.3} {:>12.3}",
            depth, avg[5].precision, avg[10].precision, mean
        );
    }
    println!(
        "\nas in the paper, mid depths dominate: too shallow merges distinct \
         paths (precision drops), too deep defeats noise tolerance (recall \
         collapses, dragging interpolated precision down)"
    );
    Ok(())
}
