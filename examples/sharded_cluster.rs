//! Sharded cluster: distribute a geodab index over a simulated 10-node
//! cluster, query it with fan-out, and inspect the locality/balance
//! trade-off of the sharding strategy (Section VI-E / Figure 16).
//!
//! Run with `cargo run --release --example sharded_cluster`.

use geodabs::cluster::balance::{imbalance, node_loads};
use geodabs::gen::dataset::{Dataset, DatasetConfig};
use geodabs::gen::world::{WorldActivity, WorldConfig};
use geodabs::prelude::*;
use geodabs::roadnet::generators::{grid_network, GridConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A city-scale dataset, indexed across 10 nodes with 10 000 shards.
    let network = grid_network(&GridConfig::default(), 42);
    let dataset = Dataset::generate(
        &network,
        &DatasetConfig {
            routes: 15,
            per_direction: 4,
            queries: 5,
            ..DatasetConfig::default()
        },
        11,
    )?;
    let mut cluster = ClusterIndex::new(GeodabConfig::default(), 10_000, 10)?;
    for record in dataset.records() {
        cluster.insert(record.id, &record.trajectory);
    }
    println!(
        "cluster: {} trajectories across {} nodes, {} active shards",
        cluster.len(),
        cluster.router().num_nodes(),
        cluster.active_shards()
    );

    // Fan-out query: only the nodes owning the query's terms participate.
    let query = &dataset.queries()[0];
    let (hits, stats) =
        cluster.search_with_stats(&query.trajectory, &SearchOptions::default().limit(5));
    println!(
        "\nquery touched {} shard(s) on {} node(s), scored {} candidate(s):",
        stats.shards_contacted, stats.nodes_contacted, stats.candidates_scored
    );
    for hit in &hits {
        println!("  {} at distance {:.3}", hit.id, hit.distance);
    }

    // World-scale balance: the Figure 16 experiment in miniature.
    let world = WorldActivity::generate(
        &WorldConfig {
            trajectories: 200_000,
            ..WorldConfig::default()
        },
        16,
    );
    let cells = world.sorted_counts();
    println!(
        "\nworld model: {} trajectories in {} cells",
        world.total(),
        cells.len()
    );
    println!("{:>10} {:>16} {:>16}", "node", "100 shards", "10000 shards");
    let coarse = node_loads(&ShardRouter::new(16, 100, 10)?, &cells);
    let fine = node_loads(&ShardRouter::new(16, 10_000, 10)?, &cells);
    for n in 0..10 {
        println!("{:>10} {:>16} {:>16}", n, coarse[n], fine[n]);
    }
    println!(
        "{:>10} {:>16.2} {:>16.2}",
        "imbalance",
        imbalance(&coarse),
        imbalance(&fine)
    );
    println!("\nmore shards break locality into smaller pieces and balance the nodes");
    Ok(())
}
