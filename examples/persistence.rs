//! Persistence and boolean retrieval: build an index, save it to disk in
//! the compact binary format, reload it, and run ranked, boolean and
//! sub-trajectory queries against the restored copy.
//!
//! Run with `cargo run --release --example persistence`.

use geodabs::gen::dataset::{Dataset, DatasetConfig};
use geodabs::index::{codec, PositionalIndex};
use geodabs::prelude::*;
use geodabs::roadnet::generators::{grid_network, GridConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = grid_network(&GridConfig::default(), 42);
    let dataset = Dataset::generate(
        &network,
        &DatasetConfig {
            routes: 10,
            per_direction: 3,
            queries: 2,
            ..DatasetConfig::default()
        },
        19,
    )?;

    // Build and persist the ranked index.
    let mut index = GeodabIndex::new(GeodabConfig::default());
    for r in dataset.records() {
        index.insert(r.id, &r.trajectory);
    }
    let path = std::env::temp_dir().join("geodabs-example.gdab");
    let bytes = codec::encode(&index);
    std::fs::write(&path, &bytes)?;
    println!(
        "saved {} trajectories / {} terms as {} bytes to {}",
        index.len(),
        index.term_count(),
        bytes.len(),
        path.display()
    );

    // Reload and query: the restored index answers identically.
    let restored = codec::decode(&std::fs::read(&path)?)?;
    let query = &dataset.queries()[0];
    let hits = restored.search(&query.trajectory, &SearchOptions::default().limit(5));
    println!("\ntop hits from the restored index:");
    for h in &hits {
        println!("  {} at distance {:.3}", h.id, h.distance);
    }
    assert_eq!(
        hits,
        index.search(&query.trajectory, &SearchOptions::default().limit(5))
    );

    // Positional retrieval: find trajectories containing a route segment.
    let mut positional = PositionalIndex::new(GeodabConfig::default());
    for r in dataset.records() {
        positional.insert(r.id, &r.trajectory);
    }
    let record = &dataset.records()[0];
    let third = record.trajectory.len() / 3;
    let segment = record.trajectory.motif(third, third);
    let (level, ids) = positional.search_subtrajectory(&segment);
    println!(
        "\nsub-trajectory search over a {}-point segment: {:?} match on {} trajectorie(s)",
        segment.len(),
        level,
        ids.len()
    );
    for id in ids.iter().take(5) {
        println!("  {id}");
    }
    Ok(())
}
