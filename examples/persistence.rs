//! Snapshots and boolean retrieval: build all three index backends,
//! save each to disk in the sectioned `GDAB` v2 snapshot format, reload
//! them cold, and verify the restored indexes answer exactly like the
//! originals — plus a sub-trajectory query against the positional index.
//!
//! Run with `cargo run --release --example persistence`.

use geodabs::cluster::ClusterIndex;
use geodabs::gen::dataset::{Dataset, DatasetConfig};
use geodabs::index::{GeohashIndex, PositionalIndex};
use geodabs::prelude::*;
use geodabs::roadnet::generators::{grid_network, GridConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = grid_network(&GridConfig::default(), 42);
    let dataset = Dataset::generate(
        &network,
        &DatasetConfig {
            routes: 10,
            per_direction: 3,
            queries: 2,
            ..DatasetConfig::default()
        },
        19,
    )?;
    let items: Vec<_> = dataset
        .records()
        .iter()
        .map(|r| (r.id, &r.trajectory))
        .collect();
    let query = &dataset.queries()[0];
    let options = SearchOptions::default().limit(5);
    let dir = std::env::temp_dir();

    // Build, save and reload the paper's geodab index. `Persist` gives
    // every backend `save_to`/`load_from` over the same container format;
    // the snapshot stores the engine's derived state (posting bitmaps,
    // interner table), so loading materializes directly instead of
    // re-ingesting.
    let mut geodab = GeodabIndex::new(GeodabConfig::default());
    geodab.insert_batch(items.clone());
    let path = dir.join("geodabs-example.gdab");
    let bytes = geodab.save_to(&path)?;
    println!(
        "geodab:  saved {} trajectories / {} terms as {} bytes to {}",
        geodab.len(),
        geodab.term_count(),
        bytes,
        path.display()
    );
    let restored = GeodabIndex::load_from(&path)?;
    assert_eq!(
        restored.search(&query.trajectory, &options),
        geodab.search(&query.trajectory, &options)
    );
    println!("         restored index answers identically");

    // The geohash baseline persists the same way (terms are u64 cells).
    let mut geohash = GeohashIndex::new(36);
    geohash.insert_batch(items.clone());
    let path = dir.join("geodabs-example-geohash.gdab");
    geohash.save_to(&path)?;
    let restored = GeohashIndex::load_from(&path)?;
    assert_eq!(
        restored.search(&query.trajectory, &options),
        geohash.search(&query.trajectory, &options)
    );
    println!(
        "geohash: {} trajectories / {} cells round-trip through {}",
        geohash.len(),
        geohash.term_count(),
        path.display()
    );

    // A sharded cluster snapshot is a manifest plus per-node segments,
    // written and read concurrently — the cold-start path of a sharded
    // deployment.
    let mut cluster = ClusterIndex::new(GeodabConfig::default(), 10_000, 8)?;
    cluster.insert_batch(items);
    let path = dir.join("geodabs-example-cluster.gdab");
    cluster.save_to(&path)?;
    let restored = ClusterIndex::load_from(&path)?;
    assert_eq!(restored.postings_per_node(), cluster.postings_per_node());
    let (hits, stats) = restored.search_with_stats(&query.trajectory, &options);
    assert_eq!(hits, cluster.search(&query.trajectory, &options));
    println!(
        "cluster: {} nodes restored; query contacted {} node(s) for {} hit(s)",
        restored.router().num_nodes(),
        stats.nodes_contacted,
        hits.len()
    );

    println!("\ntop hits from the restored geodab index:");
    for h in GeodabIndex::load_from(dir.join("geodabs-example.gdab"))?
        .search(&query.trajectory, &options)
    {
        println!("  {} at distance {:.3}", h.id, h.distance);
    }

    // Positional retrieval: find trajectories containing a route segment.
    let mut positional = PositionalIndex::new(GeodabConfig::default());
    for r in dataset.records() {
        positional.insert(r.id, &r.trajectory);
    }
    let record = &dataset.records()[0];
    let third = record.trajectory.len() / 3;
    let segment = record.trajectory.motif(third, third);
    let (level, ids) = positional.search_subtrajectory(&segment);
    println!(
        "\nsub-trajectory search over a {}-point segment: {:?} match on {} trajectorie(s)",
        segment.len(),
        level,
        ids.len()
    );
    for id in ids.iter().take(5) {
        println!("  {id}");
    }
    Ok(())
}
