//! Quickstart: index a dense synthetic trajectory dataset with geodabs and
//! run a ranked similarity query.
//!
//! Run with `cargo run --release --example quickstart`.

use geodabs::gen::dataset::{Dataset, DatasetConfig};
use geodabs::prelude::*;
use geodabs::roadnet::generators::{grid_network, GridConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic road network around central London (stand-in for the
    //    paper's OpenStreetMap extract).
    let network = grid_network(&GridConfig::default(), 42);
    println!(
        "road network: {} nodes, {} directed edges",
        network.node_count(),
        network.edge_count()
    );

    // 2. A dense dataset: routes x similar trajectories per direction,
    //    sampled at 1 Hz with 20 m Gaussian noise (Section VI-A1 of the
    //    paper, scaled down).
    let cfg = DatasetConfig {
        routes: 20,
        per_direction: 5,
        queries: 3,
        ..DatasetConfig::default()
    };
    let dataset = Dataset::generate(&network, &cfg, 7)?;
    println!(
        "dataset: {} trajectories from {} routes ({} points total)",
        dataset.records().len(),
        dataset.routes().len(),
        dataset.total_points()
    );

    // 3. Build the geodab inverted index with the paper's parameters:
    //    36-bit normalization, k = 6, t = 12, 16-bit geohash prefix
    //    (these are also `GeodabConfig::default()`).
    let config = GeodabConfig::builder()
        .normalization_depth(36)
        .k(6)
        .t(12)
        .prefix_bits(16)
        .build()?;
    let mut index = GeodabIndex::new(config);
    for record in dataset.records() {
        index.insert(record.id, &record.trajectory);
    }
    println!(
        "index: {} trajectories, {} distinct geodab terms",
        index.len(),
        index.term_count()
    );

    // 4. Ranked retrieval: find the trajectories most similar to a fresh
    //    query, ordered by Jaccard distance over fingerprint sets.
    let query = &dataset.queries()[0];
    let relevant = dataset.relevant_ids(query);
    let hits = index.search(&query.trajectory, &SearchOptions::default().limit(10));
    println!("\ntop results for a query on route {}:", query.route);
    println!(
        "{:>6} {:>10} {:>10} {:>9}",
        "rank", "trajectory", "distance", "relevant"
    );
    for (rank, hit) in hits.iter().enumerate() {
        println!(
            "{:>6} {:>10} {:>10.3} {:>9}",
            rank + 1,
            hit.id.to_string(),
            hit.distance,
            if relevant.contains(&hit.id) {
                "yes"
            } else {
                "no"
            }
        );
    }
    Ok(())
}
