//! Geographic primitives for the geodabs workspace.
//!
//! This crate implements, from scratch, every spatial building block the
//! geodabs paper (Chapuis & Garbinato, ICDCS 2018) relies on:
//!
//! * [`Point`] — validated latitude/longitude pairs with the haversine
//!   ground distance of the paper's Equation 2,
//! * [`Geohash`] — bit-level geohashes of arbitrary depth (Section III-C),
//!   including the Z-order space-filling-curve view used for sharding,
//! * [`BoundingBox`] — the rectangular cells geohashes decode to,
//! * [`morton`] — the bit-interleaving (Morton encoding) underlying the
//!   space-filling curve of Figure 2.
//!
//! # Examples
//!
//! ```
//! use geodabs_geo::{Geohash, Point};
//!
//! # fn main() -> Result<(), geodabs_geo::GeoError> {
//! // Central London.
//! let p = Point::new(51.5074, -0.1278)?;
//! let g = Geohash::encode(p, 36)?;
//! assert_eq!(g.depth(), 36);
//! assert!(g.bounds().contains(p));
//! // 36 bits in London: cells of roughly 95 m x 76 m, as quoted in the paper.
//! assert!((50.0..150.0).contains(&g.bounds().width_meters()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbox;
mod error;
mod geohash;
pub mod morton;
mod point;

pub use bbox::BoundingBox;
pub use error::GeoError;
pub use geohash::{CellEncoder, Direction, Geohash, MAX_DEPTH};
pub use point::{Point, EARTH_RADIUS_METERS};
