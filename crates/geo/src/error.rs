use std::error::Error;
use std::fmt;

/// Errors produced by the geographic primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// Latitude outside the `[-90, 90]` range, or not finite.
    InvalidLatitude(f64),
    /// Longitude outside the `[-180, 180]` range, or not finite.
    InvalidLongitude(f64),
    /// Geohash depth outside the supported `1..=64` range.
    InvalidDepth(u8),
    /// A base32 geohash string contained a character outside the alphabet.
    InvalidBase32(char),
    /// An operation that requires at least one point received none.
    EmptyPointSet,
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidLatitude(lat) => {
                write!(f, "latitude {lat} is not a finite value in [-90, 90]")
            }
            GeoError::InvalidLongitude(lon) => {
                write!(f, "longitude {lon} is not a finite value in [-180, 180]")
            }
            GeoError::InvalidDepth(d) => {
                write!(f, "geohash depth {d} is outside the supported range 1..=64")
            }
            GeoError::InvalidBase32(c) => {
                write!(
                    f,
                    "character {c:?} is not part of the geohash base32 alphabet"
                )
            }
            GeoError::EmptyPointSet => write!(f, "operation requires at least one point"),
        }
    }
}

impl Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(GeoError, &str)> = vec![
            (GeoError::InvalidLatitude(91.0), "latitude"),
            (GeoError::InvalidLongitude(181.0), "longitude"),
            (GeoError::InvalidDepth(65), "depth"),
            (GeoError::InvalidBase32('!'), "base32"),
            (GeoError::EmptyPointSet, "at least one point"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
            assert!(
                !msg.ends_with('.'),
                "error messages have no trailing period"
            );
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<GeoError>();
    }
}
