use serde::{Deserialize, Serialize};
use std::fmt;

use crate::GeoError;

/// Mean earth radius in meters, used by the haversine formula (Equation 2 of
/// the paper).
pub const EARTH_RADIUS_METERS: f64 = 6_371_000.0;

/// A validated latitude/longitude point `p = (φ, λ)` in degrees.
///
/// The paper models every location as such a point (Section II-A). The
/// constructor rejects non-finite values and values outside the valid
/// latitude/longitude ranges, so a `Point` is always a real position on
/// earth.
///
/// # Examples
///
/// ```
/// use geodabs_geo::Point;
///
/// # fn main() -> Result<(), geodabs_geo::GeoError> {
/// let london = Point::new(51.5074, -0.1278)?;
/// let paris = Point::new(48.8566, 2.3522)?;
/// let d = london.haversine_distance(paris);
/// // Roughly 344 km.
/// assert!((330_000.0..360_000.0).contains(&d));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Point {
    lat: f64,
    lon: f64,
}

impl Point {
    /// Creates a point from a latitude and a longitude in degrees.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidLatitude`] if `lat` is not finite or not in
    /// `[-90, 90]`, and [`GeoError::InvalidLongitude`] if `lon` is not finite
    /// or not in `[-180, 180]`.
    pub fn new(lat: f64, lon: f64) -> Result<Point, GeoError> {
        if !lat.is_finite() || !(-90.0..=90.0).contains(&lat) {
            return Err(GeoError::InvalidLatitude(lat));
        }
        if !lon.is_finite() || !(-180.0..=180.0).contains(&lon) {
            return Err(GeoError::InvalidLongitude(lon));
        }
        Ok(Point { lat, lon })
    }

    /// Creates a point, clamping the coordinates into their valid ranges.
    ///
    /// Useful when adding synthetic noise near the domain boundary.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is `NaN`.
    pub fn clamped(lat: f64, lon: f64) -> Point {
        assert!(
            !lat.is_nan() && !lon.is_nan(),
            "coordinates must not be NaN"
        );
        Point {
            lat: lat.clamp(-90.0, 90.0),
            lon: lon.clamp(-180.0, 180.0),
        }
    }

    /// Latitude in degrees, in `[-90, 90]`.
    pub fn lat(&self) -> f64 {
        self.lat
    }

    /// Longitude in degrees, in `[-180, 180]`.
    pub fn lon(&self) -> f64 {
        self.lon
    }

    /// Haversine ground distance in meters (Equation 2 of the paper).
    ///
    /// ```
    /// use geodabs_geo::Point;
    ///
    /// # fn main() -> Result<(), geodabs_geo::GeoError> {
    /// let a = Point::new(0.0, 0.0)?;
    /// let b = Point::new(0.0, 1.0)?;
    /// // One degree of longitude at the equator is about 111.2 km.
    /// assert!((a.haversine_distance(b) - 111_195.0).abs() < 100.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn haversine_distance(&self, other: Point) -> f64 {
        let phi_l = self.lat.to_radians();
        let phi_k = other.lat.to_radians();
        let d_phi = (self.lat - other.lat).to_radians();
        let d_lambda = (self.lon - other.lon).to_radians();
        let a = (d_phi / 2.0).sin().powi(2)
            + phi_k.cos() * phi_l.cos() * (d_lambda / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_METERS * a.sqrt().min(1.0).asin()
    }

    /// Returns the point reached by moving `meters` along the given compass
    /// `bearing_deg` (0° = north, 90° = east) on the great circle.
    ///
    /// The result is clamped into the valid coordinate domain, which only
    /// matters for paths crossing the antimeridian or the poles.
    pub fn destination(&self, bearing_deg: f64, meters: f64) -> Point {
        let delta = meters / EARTH_RADIUS_METERS;
        let theta = bearing_deg.to_radians();
        let phi1 = self.lat.to_radians();
        let lambda1 = self.lon.to_radians();
        let phi2 = (phi1.sin() * delta.cos() + phi1.cos() * delta.sin() * theta.cos()).asin();
        let lambda2 = lambda1
            + (theta.sin() * delta.sin() * phi1.cos()).atan2(delta.cos() - phi1.sin() * phi2.sin());
        // Normalize the longitude into [-180, 180].
        let mut lon = lambda2.to_degrees();
        if lon > 180.0 {
            lon -= 360.0;
        } else if lon < -180.0 {
            lon += 360.0;
        }
        Point::clamped(phi2.to_degrees(), lon)
    }

    /// Linear interpolation between two points, with `t` in `[0, 1]`.
    ///
    /// For the short segments that make up road edges this is an excellent
    /// approximation of the great-circle path, and it is what the trajectory
    /// sampler uses to walk along routes.
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        let t = t.clamp(0.0, 1.0);
        Point {
            lat: self.lat + (other.lat - self.lat) * t,
            lon: self.lon + (other.lon - self.lon) * t,
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lat, self.lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new(lat, lon).unwrap()
    }

    #[test]
    fn new_accepts_valid_range() {
        assert!(Point::new(90.0, 180.0).is_ok());
        assert!(Point::new(-90.0, -180.0).is_ok());
        assert!(Point::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert_eq!(
            Point::new(90.01, 0.0),
            Err(GeoError::InvalidLatitude(90.01))
        );
        assert_eq!(
            Point::new(0.0, -180.01),
            Err(GeoError::InvalidLongitude(-180.01))
        );
        assert!(Point::new(f64::NAN, 0.0).is_err());
        assert!(Point::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn clamped_saturates() {
        let q = Point::clamped(95.0, -200.0);
        assert_eq!(q.lat(), 90.0);
        assert_eq!(q.lon(), -180.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn clamped_panics_on_nan() {
        let _ = Point::clamped(f64::NAN, 0.0);
    }

    #[test]
    fn haversine_is_zero_on_identical_points() {
        let a = p(51.5, -0.12);
        assert_eq!(a.haversine_distance(a), 0.0);
    }

    #[test]
    fn haversine_known_distances() {
        // London -> Paris, roughly 344 km.
        let d = p(51.5074, -0.1278).haversine_distance(p(48.8566, 2.3522));
        assert!((d - 344_000.0).abs() < 4_000.0, "got {d}");
        // Antipodal points: half the earth circumference.
        let d = p(0.0, 0.0).haversine_distance(p(0.0, 180.0));
        let half_circumference = std::f64::consts::PI * EARTH_RADIUS_METERS;
        assert!((d - half_circumference).abs() < 1.0, "got {d}");
    }

    #[test]
    fn haversine_one_degree_latitude() {
        let d = p(10.0, 20.0).haversine_distance(p(11.0, 20.0));
        // One degree of latitude is ~111.2 km everywhere.
        assert!((d - 111_195.0).abs() < 100.0, "got {d}");
    }

    #[test]
    fn destination_roundtrip_distance() {
        let start = p(51.5, -0.12);
        for bearing in [0.0, 45.0, 90.0, 135.0, 180.0, 270.0] {
            let end = start.destination(bearing, 1_000.0);
            let d = start.haversine_distance(end);
            assert!((d - 1_000.0).abs() < 1.0, "bearing {bearing}: {d}");
        }
    }

    #[test]
    fn destination_north_increases_latitude() {
        let start = p(10.0, 10.0);
        let end = start.destination(0.0, 10_000.0);
        assert!(end.lat() > start.lat());
        assert!((end.lon() - start.lon()).abs() < 1e-9);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = p(10.0, 20.0);
        let b = p(12.0, 26.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let m = a.lerp(b, 0.5);
        assert!((m.lat() - 11.0).abs() < 1e-12);
        assert!((m.lon() - 23.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_clamps_t() {
        let a = p(0.0, 0.0);
        let b = p(1.0, 1.0);
        assert_eq!(a.lerp(b, -3.0), a);
        assert_eq!(a.lerp(b, 7.0), b);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(p(1.5, -2.25).to_string(), "(1.500000, -2.250000)");
    }

    proptest! {
        #[test]
        fn prop_haversine_symmetric(
            lat1 in -89.0f64..89.0, lon1 in -179.0f64..179.0,
            lat2 in -89.0f64..89.0, lon2 in -179.0f64..179.0,
        ) {
            let a = p(lat1, lon1);
            let b = p(lat2, lon2);
            let ab = a.haversine_distance(b);
            let ba = b.haversine_distance(a);
            prop_assert!((ab - ba).abs() <= 1e-6 * ab.max(1.0));
            prop_assert!(ab >= 0.0);
        }

        #[test]
        fn prop_haversine_triangle_inequality(
            lat1 in -80.0f64..80.0, lon1 in -170.0f64..170.0,
            lat2 in -80.0f64..80.0, lon2 in -170.0f64..170.0,
            lat3 in -80.0f64..80.0, lon3 in -170.0f64..170.0,
        ) {
            let a = p(lat1, lon1);
            let b = p(lat2, lon2);
            let c = p(lat3, lon3);
            let direct = a.haversine_distance(c);
            let via = a.haversine_distance(b) + b.haversine_distance(c);
            prop_assert!(direct <= via + 1e-6);
        }

        #[test]
        fn prop_destination_distance_matches(
            lat in -60.0f64..60.0, lon in -170.0f64..170.0,
            bearing in 0.0f64..360.0, meters in 1.0f64..50_000.0,
        ) {
            let start = p(lat, lon);
            let end = start.destination(bearing, meters);
            let d = start.haversine_distance(end);
            prop_assert!((d - meters).abs() < meters * 1e-3 + 1.0);
        }
    }
}
