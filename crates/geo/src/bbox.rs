use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{GeoError, Point};

/// An axis-aligned latitude/longitude rectangle.
///
/// Geohash cells decode to bounding boxes; the synthetic dataset generator
/// also uses a box to delimit the evaluation region (the paper uses a 300 km²
/// area around the center of London).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    min_lat: f64,
    max_lat: f64,
    min_lon: f64,
    max_lon: f64,
}

impl BoundingBox {
    /// Creates a bounding box from its south-west and north-east corners.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidLatitude`] / [`GeoError::InvalidLongitude`]
    /// if the corners are out of range or inverted (min greater than max).
    pub fn new(
        min_lat: f64,
        max_lat: f64,
        min_lon: f64,
        max_lon: f64,
    ) -> Result<BoundingBox, GeoError> {
        // Validate both corners through Point's own validation.
        Point::new(min_lat, min_lon)?;
        Point::new(max_lat, max_lon)?;
        if min_lat > max_lat {
            return Err(GeoError::InvalidLatitude(min_lat));
        }
        if min_lon > max_lon {
            return Err(GeoError::InvalidLongitude(min_lon));
        }
        Ok(BoundingBox {
            min_lat,
            max_lat,
            min_lon,
            max_lon,
        })
    }

    /// The whole latitude/longitude domain.
    pub fn world() -> BoundingBox {
        BoundingBox {
            min_lat: -90.0,
            max_lat: 90.0,
            min_lon: -180.0,
            max_lon: 180.0,
        }
    }

    /// A box centered on `center` whose sides span `width_m` x `height_m`
    /// meters (approximately; exact at the center latitude).
    pub fn around(center: Point, width_m: f64, height_m: f64) -> BoundingBox {
        let north = center.destination(0.0, height_m / 2.0);
        let south = center.destination(180.0, height_m / 2.0);
        let east = center.destination(90.0, width_m / 2.0);
        let west = center.destination(270.0, width_m / 2.0);
        BoundingBox {
            min_lat: south.lat(),
            max_lat: north.lat(),
            min_lon: west.lon(),
            max_lon: east.lon(),
        }
    }

    /// Smallest box containing every point of the iterator.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::EmptyPointSet`] if the iterator is empty.
    pub fn enclosing<I: IntoIterator<Item = Point>>(points: I) -> Result<BoundingBox, GeoError> {
        let mut iter = points.into_iter();
        let first = iter.next().ok_or(GeoError::EmptyPointSet)?;
        let mut bb = BoundingBox {
            min_lat: first.lat(),
            max_lat: first.lat(),
            min_lon: first.lon(),
            max_lon: first.lon(),
        };
        for p in iter {
            bb.min_lat = bb.min_lat.min(p.lat());
            bb.max_lat = bb.max_lat.max(p.lat());
            bb.min_lon = bb.min_lon.min(p.lon());
            bb.max_lon = bb.max_lon.max(p.lon());
        }
        Ok(bb)
    }

    /// Southern latitude bound in degrees.
    pub fn min_lat(&self) -> f64 {
        self.min_lat
    }

    /// Northern latitude bound in degrees.
    pub fn max_lat(&self) -> f64 {
        self.max_lat
    }

    /// Western longitude bound in degrees.
    pub fn min_lon(&self) -> f64 {
        self.min_lon
    }

    /// Eastern longitude bound in degrees.
    pub fn max_lon(&self) -> f64 {
        self.max_lon
    }

    /// Center point of the box.
    pub fn center(&self) -> Point {
        Point::clamped(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )
    }

    /// Whether `p` lies inside the box (inclusive bounds).
    pub fn contains(&self, p: Point) -> bool {
        (self.min_lat..=self.max_lat).contains(&p.lat())
            && (self.min_lon..=self.max_lon).contains(&p.lon())
    }

    /// Whether two boxes overlap (inclusive bounds).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min_lat <= other.max_lat
            && other.min_lat <= self.max_lat
            && self.min_lon <= other.max_lon
            && other.min_lon <= self.max_lon
    }

    /// East-west extent at the center latitude, in meters.
    pub fn width_meters(&self) -> f64 {
        let mid = (self.min_lat + self.max_lat) / 2.0;
        Point::clamped(mid, self.min_lon).haversine_distance(Point::clamped(mid, self.max_lon))
    }

    /// North-south extent, in meters.
    pub fn height_meters(&self) -> f64 {
        Point::clamped(self.min_lat, self.min_lon)
            .haversine_distance(Point::clamped(self.max_lat, self.min_lon))
    }
}

impl fmt::Display for BoundingBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.6}, {:.6}] x [{:.6}, {:.6}]",
            self.min_lat, self.max_lat, self.min_lon, self.max_lon
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new(lat, lon).unwrap()
    }

    #[test]
    fn new_validates_order() {
        assert!(BoundingBox::new(1.0, 0.0, 0.0, 1.0).is_err());
        assert!(BoundingBox::new(0.0, 1.0, 1.0, 0.0).is_err());
        assert!(BoundingBox::new(0.0, 1.0, 0.0, 1.0).is_ok());
    }

    #[test]
    fn world_contains_everything() {
        let w = BoundingBox::world();
        assert!(w.contains(p(90.0, 180.0)));
        assert!(w.contains(p(-90.0, -180.0)));
        assert!(w.contains(p(0.0, 0.0)));
    }

    #[test]
    fn around_has_requested_extent() {
        let c = p(51.5, -0.12);
        let bb = BoundingBox::around(c, 20_000.0, 15_000.0);
        assert!((bb.width_meters() - 20_000.0).abs() < 100.0);
        assert!((bb.height_meters() - 15_000.0).abs() < 100.0);
        assert!(bb.contains(c));
        let center = bb.center();
        assert!(c.haversine_distance(center) < 50.0);
    }

    #[test]
    fn enclosing_empty_errors() {
        assert_eq!(
            BoundingBox::enclosing(std::iter::empty()),
            Err(GeoError::EmptyPointSet)
        );
    }

    #[test]
    fn enclosing_single_point_is_degenerate() {
        let bb = BoundingBox::enclosing([p(3.0, 4.0)]).unwrap();
        assert_eq!(bb.min_lat(), 3.0);
        assert_eq!(bb.max_lat(), 3.0);
        assert!(bb.contains(p(3.0, 4.0)));
        assert_eq!(bb.width_meters(), 0.0);
    }

    #[test]
    fn enclosing_covers_all_inputs() {
        let pts = [p(1.0, 5.0), p(-2.0, 7.0), p(0.5, 6.0)];
        let bb = BoundingBox::enclosing(pts).unwrap();
        for q in pts {
            assert!(bb.contains(q));
        }
        assert_eq!(bb.min_lat(), -2.0);
        assert_eq!(bb.max_lat(), 1.0);
        assert_eq!(bb.min_lon(), 5.0);
        assert_eq!(bb.max_lon(), 7.0);
    }

    #[test]
    fn intersects_is_symmetric_and_correct() {
        let a = BoundingBox::new(0.0, 2.0, 0.0, 2.0).unwrap();
        let b = BoundingBox::new(1.0, 3.0, 1.0, 3.0).unwrap();
        let c = BoundingBox::new(5.0, 6.0, 5.0, 6.0).unwrap();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching edges count as intersecting (inclusive bounds).
        let d = BoundingBox::new(2.0, 4.0, 0.0, 2.0).unwrap();
        assert!(a.intersects(&d));
    }

    proptest! {
        #[test]
        fn prop_enclosing_contains_inputs(
            pts in proptest::collection::vec((-89.0f64..89.0, -179.0f64..179.0), 1..20)
        ) {
            let points: Vec<Point> = pts.iter().map(|&(la, lo)| p(la, lo)).collect();
            let bb = BoundingBox::enclosing(points.iter().copied()).unwrap();
            for q in points {
                prop_assert!(bb.contains(q));
            }
        }

        #[test]
        fn prop_center_inside(
            min_lat in -89.0f64..0.0, extent_lat in 0.001f64..80.0,
            min_lon in -179.0f64..0.0, extent_lon in 0.001f64..170.0,
        ) {
            let bb = BoundingBox::new(
                min_lat, (min_lat + extent_lat).min(90.0),
                min_lon, (min_lon + extent_lon).min(180.0),
            ).unwrap();
            prop_assert!(bb.contains(bb.center()));
        }
    }
}
