use serde::{Deserialize, Serialize};
use std::fmt;

use crate::morton::{deinterleave, interleave};
use crate::{BoundingBox, GeoError, Point};

/// Maximum supported geohash depth, in bits.
pub const MAX_DEPTH: u8 = 64;

/// The canonical geohash base32 alphabet (Niemeyer, 2008).
const BASE32: &[u8; 32] = b"0123456789bcdefghjkmnpqrstuvwxyz";

/// Reverse lookup for [`BASE32`]: maps a byte to its 5-bit digit, with both
/// cases of each letter accepted and `0xFF` marking bytes outside the
/// alphabet — one table index replaces the per-character linear scan.
const BASE32_REV: [u8; 256] = {
    let mut table = [0xFFu8; 256];
    let mut i = 0usize;
    while i < 32 {
        let b = BASE32[i];
        table[b as usize] = i as u8;
        table[b.to_ascii_uppercase() as usize] = i as u8;
        i += 1;
    }
    table
};

/// A geohash: `depth` bits that repeatedly bisect the latitude/longitude
/// space (Section III-C of the paper).
///
/// The first bisection (most significant bit) splits the longitude axis, the
/// second the latitude axis, and so on, exactly as in Figure 2 (a). The bits
/// are stored right-aligned, so the numeric value of [`Geohash::bits`] is the
/// position of the cell on the Z-order space-filling curve of Figure 2 (b) —
/// this is what makes geohashes usable for locality-preserving sharding.
///
/// A depth of `0` is valid and denotes the whole world cell.
///
/// # Examples
///
/// ```
/// use geodabs_geo::{Geohash, Point};
///
/// # fn main() -> Result<(), geodabs_geo::GeoError> {
/// let p = Point::new(57.64911, 10.40744)?;
/// let g = Geohash::encode(p, 55)?;
/// assert_eq!(g.to_base32().unwrap(), "u4pruydqqvj");
/// assert!(g.bounds().contains(p));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Geohash {
    // Order matters for the derived `Ord`: compare by depth first so that
    // hashes of equal depth sort along the Z-curve, which is the only
    // ordering the library relies on (sharding always uses a fixed depth).
    depth: u8,
    bits: u64,
}

/// The four cardinal directions used when walking to neighboring cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Increasing latitude.
    North,
    /// Decreasing latitude.
    South,
    /// Increasing longitude (wraps at the antimeridian).
    East,
    /// Decreasing longitude (wraps at the antimeridian).
    West,
}

impl Geohash {
    /// Encodes a point at the given depth (`0..=64` bits).
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidDepth`] if `depth > 64`.
    pub fn encode(p: Point, depth: u8) -> Result<Geohash, GeoError> {
        if depth > MAX_DEPTH {
            return Err(GeoError::InvalidDepth(depth));
        }
        let lat_q = quantize(p.lat(), -90.0, 90.0);
        let lon_q = quantize(p.lon(), -180.0, 180.0);
        // Longitude sits at odd Morton positions so that, once the code is
        // read MSB-first, the very first bit subdivides the longitude axis.
        let code = interleave(lat_q, lon_q);
        Ok(Geohash {
            depth,
            bits: if depth == 0 { 0 } else { code >> (64 - depth) },
        })
    }

    /// Builds a geohash from raw bits.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidDepth`] if `depth > 64` or if `bits` has
    /// set bits above position `depth`.
    pub fn from_bits(bits: u64, depth: u8) -> Result<Geohash, GeoError> {
        if depth > MAX_DEPTH {
            return Err(GeoError::InvalidDepth(depth));
        }
        if depth < 64 && bits >> depth != 0 {
            return Err(GeoError::InvalidDepth(depth));
        }
        Ok(Geohash { depth, bits })
    }

    /// The whole-world geohash (depth 0).
    pub fn world() -> Geohash {
        Geohash { depth: 0, bits: 0 }
    }

    /// The raw right-aligned bits. At a fixed depth this value is the cell's
    /// position on the Z-order space-filling curve.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Number of bits (the precision) of this geohash.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Position on the Z-order curve at this geohash's depth.
    ///
    /// Alias of [`Geohash::bits`], named for readability at call sites that
    /// deal with sharding.
    pub fn zorder(&self) -> u64 {
        self.bits
    }

    /// The rectangular cell this geohash covers.
    pub fn bounds(&self) -> BoundingBox {
        let aligned = if self.depth == 0 {
            0
        } else {
            self.bits << (64 - self.depth)
        };
        let (lat_q, lon_q) = deinterleave(aligned);
        let lat_bits = u32::from(self.depth) / 2;
        let lon_bits = u32::from(self.depth).div_ceil(2);
        let (min_lat, max_lat) = dequantize_range(lat_q, lat_bits, -90.0, 90.0);
        let (min_lon, max_lon) = dequantize_range(lon_q, lon_bits, -180.0, 180.0);
        BoundingBox::new(min_lat, max_lat, min_lon, max_lon)
            .expect("geohash cells always decode to valid boxes")
    }

    /// The center of the cell.
    pub fn center(&self) -> Point {
        self.bounds().center()
    }

    /// The geohash truncated to a shallower depth.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidDepth`] if `depth` exceeds this geohash's
    /// depth (truncation cannot add precision).
    pub fn truncate(&self, depth: u8) -> Result<Geohash, GeoError> {
        if depth > self.depth {
            return Err(GeoError::InvalidDepth(depth));
        }
        Ok(Geohash {
            depth,
            bits: if depth == 0 {
                0
            } else {
                self.bits >> (self.depth - depth)
            },
        })
    }

    /// The parent cell (one bit shallower), or `None` at depth 0.
    pub fn parent(&self) -> Option<Geohash> {
        if self.depth == 0 {
            None
        } else {
            Some(Geohash {
                depth: self.depth - 1,
                bits: self.bits >> 1,
            })
        }
    }

    /// The two child cells (one bit deeper), or `None` at the maximum
    /// depth. The first child carries bit `0`, the second bit `1`.
    pub fn children(&self) -> Option<[Geohash; 2]> {
        if self.depth == MAX_DEPTH {
            return None;
        }
        let base = self.bits << 1;
        Some([
            Geohash {
                depth: self.depth + 1,
                bits: base,
            },
            Geohash {
                depth: self.depth + 1,
                bits: base | 1,
            },
        ])
    }

    /// Whether `other` is this cell or one of its descendants.
    pub fn contains_hash(&self, other: &Geohash) -> bool {
        other.depth >= self.depth
            && (self.depth == 0 || other.bits >> (other.depth - self.depth) == self.bits)
    }

    /// Whether the point falls in this cell.
    pub fn contains_point(&self, p: Point) -> bool {
        Geohash::encode(p, self.depth)
            .map(|g| g == *self)
            .unwrap_or(false)
    }

    /// The deepest geohash that overlaps every point of the iterator — the
    /// `geohash({p1, ..., pn})` function of Section III-C.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::EmptyPointSet`] if the iterator is empty.
    pub fn covering<I: IntoIterator<Item = Point>>(points: I) -> Result<Geohash, GeoError> {
        let mut iter = points.into_iter();
        let first = iter.next().ok_or(GeoError::EmptyPointSet)?;
        let first = Geohash::encode(first, MAX_DEPTH).expect("depth 64 is valid");
        let mut prefix_len = MAX_DEPTH;
        let mut bits = first.bits;
        for p in iter {
            let code = Geohash::encode(p, MAX_DEPTH)
                .expect("depth 64 is valid")
                .bits;
            let common = (bits ^ code).leading_zeros().min(u32::from(prefix_len)) as u8;
            prefix_len = common;
            if prefix_len == 0 {
                return Ok(Geohash::world());
            }
            bits &= !0u64 << (64 - prefix_len);
        }
        Ok(Geohash {
            depth: prefix_len,
            bits: if prefix_len == 0 {
                0
            } else {
                bits >> (64 - prefix_len)
            },
        })
    }

    /// The adjacent cell in the given direction at the same depth.
    ///
    /// Longitude wraps around the antimeridian; latitude saturates, so the
    /// northern neighbor of a cell touching the north pole is `None`.
    pub fn neighbor(&self, dir: Direction) -> Option<Geohash> {
        if self.depth == 0 {
            // The world cell wraps onto itself east/west and has no
            // north/south neighbor.
            return match dir {
                Direction::East | Direction::West => Some(*self),
                Direction::North | Direction::South => None,
            };
        }
        let aligned = self.bits << (64 - self.depth);
        let (lat_q, lon_q) = deinterleave(aligned);
        let lat_bits = u32::from(self.depth) / 2;
        let lon_bits = u32::from(self.depth).div_ceil(2);
        let (mut lat_cell, mut lon_cell) = (
            if lat_bits == 0 {
                0
            } else {
                lat_q >> (32 - lat_bits)
            },
            if lon_bits == 0 {
                0
            } else {
                lon_q >> (32 - lon_bits)
            },
        );
        match dir {
            Direction::North => {
                if lat_bits == 0 || lat_cell == (1u32 << lat_bits) - 1 {
                    return None;
                }
                lat_cell += 1;
            }
            Direction::South => {
                if lat_bits == 0 || lat_cell == 0 {
                    return None;
                }
                lat_cell -= 1;
            }
            Direction::East => {
                lon_cell = (lon_cell + 1) & ((1u64 << lon_bits) - 1) as u32;
            }
            Direction::West => {
                lon_cell = lon_cell.wrapping_sub(1) & ((1u64 << lon_bits) - 1) as u32;
            }
        }
        let lat_q = if lat_bits == 0 {
            0
        } else {
            lat_cell << (32 - lat_bits)
        };
        let lon_q = if lon_bits == 0 {
            0
        } else {
            lon_cell << (32 - lon_bits)
        };
        let code = interleave(lat_q, lon_q);
        Some(Geohash {
            depth: self.depth,
            bits: code >> (64 - self.depth),
        })
    }

    /// Enumerates every cell of the given depth intersecting the box, in
    /// Z-order. This is the covering used for region queries (e.g. "all
    /// trajectories crossing this area").
    ///
    /// The number of cells grows with the box area and the depth:
    /// `cover_count` can be used to preflight. Boxes are not split at the
    /// antimeridian (the latitude/longitude domain is a rectangle here).
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidDepth`] if `depth > 64`.
    pub fn cover_bbox(bbox: &BoundingBox, depth: u8) -> Result<Vec<Geohash>, GeoError> {
        if depth > MAX_DEPTH {
            return Err(GeoError::InvalidDepth(depth));
        }
        let (lat_lo, lat_hi, lon_lo, lon_hi) = cell_ranges(bbox, depth);
        let mut out = Vec::with_capacity(((lat_hi - lat_lo + 1) * (lon_hi - lon_lo + 1)) as usize);
        let lat_bits = u32::from(depth) / 2;
        let lon_bits = u32::from(depth).div_ceil(2);
        for lat_cell in lat_lo..=lat_hi {
            for lon_cell in lon_lo..=lon_hi {
                let lat_q = if lat_bits == 0 {
                    0
                } else {
                    (lat_cell as u32) << (32 - lat_bits)
                };
                let lon_q = if lon_bits == 0 {
                    0
                } else {
                    (lon_cell as u32) << (32 - lon_bits)
                };
                let code = interleave(lat_q, lon_q);
                out.push(Geohash {
                    depth,
                    bits: if depth == 0 { 0 } else { code >> (64 - depth) },
                });
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// The number of cells [`Geohash::cover_bbox`] would return, without
    /// materializing them.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidDepth`] if `depth > 64`.
    pub fn cover_count(bbox: &BoundingBox, depth: u8) -> Result<u64, GeoError> {
        if depth > MAX_DEPTH {
            return Err(GeoError::InvalidDepth(depth));
        }
        let (lat_lo, lat_hi, lon_lo, lon_hi) = cell_ranges(bbox, depth);
        Ok((lat_hi - lat_lo + 1) * (lon_hi - lon_lo + 1))
    }

    /// Encodes this geohash in the canonical base32 alphabet.
    ///
    /// Returns `None` unless the depth is a multiple of 5 (base32 encodes
    /// five bits per character).
    pub fn to_base32(&self) -> Option<String> {
        if !self.depth.is_multiple_of(5) {
            return None;
        }
        let chars = self.depth / 5;
        let mut out = String::with_capacity(chars as usize);
        for i in (0..chars).rev() {
            let chunk = (self.bits >> (i * 5)) & 0b11111;
            out.push(BASE32[chunk as usize] as char);
        }
        Some(out)
    }

    /// Parses a base32 geohash string (depth = 5 bits per character).
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidBase32`] on characters outside the
    /// alphabet, and [`GeoError::InvalidDepth`] if the string encodes more
    /// than 64 bits (i.e. more than 12 characters).
    pub fn from_base32(s: &str) -> Result<Geohash, GeoError> {
        if s.len() > 12 {
            return Err(GeoError::InvalidDepth(
                u8::try_from(s.len() * 5).unwrap_or(u8::MAX),
            ));
        }
        let mut bits: u64 = 0;
        for c in s.chars() {
            let idx = if (c as u32) < 256 {
                BASE32_REV[c as usize]
            } else {
                0xFF
            };
            if idx == 0xFF {
                return Err(GeoError::InvalidBase32(c));
            }
            bits = (bits << 5) | idx as u64;
        }
        Ok(Geohash {
            depth: (s.len() * 5) as u8,
            bits,
        })
    }
}

/// A reusable point→cell encoder for a fixed depth.
///
/// [`Geohash::encode`] validates the depth, branches on `depth == 0` and
/// wraps the result on every call; in batched paths (fingerprinting a whole
/// trajectory) that per-point overhead dominates. `CellEncoder` hoists the
/// validation and the truncation shift out of the loop and hands back raw
/// cell bits. The arithmetic is exactly the one `Geohash::encode` performs
/// (same quantization, same interleave, same shift), so the produced cells
/// are bit-identical — `cell_encoder_matches_encode` asserts it.
///
/// # Examples
///
/// ```
/// use geodabs_geo::{CellEncoder, Geohash, Point};
///
/// # fn main() -> Result<(), geodabs_geo::GeoError> {
/// let enc = CellEncoder::new(36)?;
/// let p = Point::new(57.64911, 10.40744)?;
/// assert_eq!(enc.encode_bits(p), Geohash::encode(p, 36)?.bits());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CellEncoder {
    depth: u8,
    /// `64 - depth`, precomputed; only meaningful when `depth > 0`.
    shift: u32,
}

impl CellEncoder {
    /// Creates an encoder for the given depth (`0..=64` bits).
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidDepth`] if `depth > 64`.
    pub fn new(depth: u8) -> Result<CellEncoder, GeoError> {
        if depth > MAX_DEPTH {
            return Err(GeoError::InvalidDepth(depth));
        }
        Ok(CellEncoder {
            depth,
            shift: 64 - u32::from(depth).min(64),
        })
    }

    /// The depth this encoder truncates to.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// The cell bits of `p` at this encoder's depth — what
    /// `Geohash::encode(p, depth).bits()` returns, without the per-call
    /// validation and `Result` wrapping.
    pub fn encode_bits(&self, p: Point) -> u64 {
        let lat_q = quantize(p.lat(), -90.0, 90.0);
        let lon_q = quantize(p.lon(), -180.0, 180.0);
        let code = interleave(lat_q, lon_q);
        if self.depth == 0 {
            0
        } else {
            code >> self.shift
        }
    }

    /// Encodes `p` as a [`Geohash`] at this encoder's depth.
    pub fn encode(&self, p: Point) -> Geohash {
        Geohash {
            depth: self.depth,
            bits: self.encode_bits(p),
        }
    }

    /// The sorted, deduplicated cell set of a trajectory — every distinct
    /// cell its points fall in, in Z-order. One pass over the points, one
    /// allocation.
    pub fn cell_set(&self, points: &[Point]) -> Vec<u64> {
        let mut cells: Vec<u64> = points.iter().map(|&p| self.encode_bits(p)).collect();
        cells.sort_unstable();
        cells.dedup();
        cells
    }
}

impl std::str::FromStr for Geohash {
    type Err = GeoError;

    /// Parses the base32 form, like [`Geohash::from_base32`].
    fn from_str(s: &str) -> Result<Geohash, GeoError> {
        Geohash::from_base32(s)
    }
}

impl fmt::Display for Geohash {
    /// Displays the base32 form when the depth allows it, and the raw binary
    /// prefix (e.g. `0b1101/4`) otherwise.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.to_base32() {
            Some(s) if !s.is_empty() => write!(f, "{s}"),
            _ => write!(
                f,
                "0b{:0width$b}/{}",
                self.bits,
                self.depth,
                width = self.depth as usize
            ),
        }
    }
}

/// Cell-index ranges `(lat_lo, lat_hi, lon_lo, lon_hi)` of the cells at
/// `depth` intersecting the box.
fn cell_ranges(bbox: &BoundingBox, depth: u8) -> (u64, u64, u64, u64) {
    let lat_bits = u32::from(depth) / 2;
    let lon_bits = u32::from(depth).div_ceil(2);
    let lat_cell = |v: f64| -> u64 {
        if lat_bits == 0 {
            0
        } else {
            u64::from(quantize(v, -90.0, 90.0) >> (32 - lat_bits))
        }
    };
    let lon_cell = |v: f64| -> u64 {
        if lon_bits == 0 {
            0
        } else {
            u64::from(quantize(v, -180.0, 180.0) >> (32 - lon_bits))
        }
    };
    (
        lat_cell(bbox.min_lat()),
        lat_cell(bbox.max_lat()),
        lon_cell(bbox.min_lon()),
        lon_cell(bbox.max_lon()),
    )
}

/// Maps a coordinate in `[lo, hi]` to a 32-bit cell index.
fn quantize(value: f64, lo: f64, hi: f64) -> u32 {
    let scaled = (value - lo) / (hi - lo) * 2f64.powi(32);
    // `value == hi` maps just past the last cell; clamp it back in.
    scaled.min(u32::MAX as f64).max(0.0) as u32
}

/// Recovers the `[min, max]` coordinate range of a quantized prefix.
fn dequantize_range(q: u32, prefix_bits: u32, lo: f64, hi: f64) -> (f64, f64) {
    if prefix_bits == 0 {
        return (lo, hi);
    }
    let cell = (q >> (32 - prefix_bits)) as f64;
    let span = (hi - lo) / 2f64.powi(prefix_bits as i32);
    let min = lo + cell * span;
    (min, min + span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new(lat, lon).unwrap()
    }

    #[test]
    fn encode_rejects_deep_hashes() {
        assert_eq!(
            Geohash::encode(p(0.0, 0.0), 65),
            Err(GeoError::InvalidDepth(65))
        );
    }

    #[test]
    fn encode_depth_zero_is_world() {
        let g = Geohash::encode(p(12.0, 34.0), 0).unwrap();
        assert_eq!(g, Geohash::world());
        assert_eq!(g.bounds(), BoundingBox::world());
    }

    #[test]
    fn first_bit_subdivides_longitude() {
        // Western hemisphere -> first bit 0, eastern -> 1.
        let west = Geohash::encode(p(0.0, -90.0), 1).unwrap();
        let east = Geohash::encode(p(0.0, 90.0), 1).unwrap();
        assert_eq!(west.bits(), 0);
        assert_eq!(east.bits(), 1);
        // Latitude does not matter at depth 1.
        let north = Geohash::encode(p(80.0, -90.0), 1).unwrap();
        assert_eq!(north.bits(), 0);
    }

    #[test]
    fn second_bit_subdivides_latitude() {
        let sw = Geohash::encode(p(-45.0, -90.0), 2).unwrap();
        let nw = Geohash::encode(p(45.0, -90.0), 2).unwrap();
        let se = Geohash::encode(p(-45.0, 90.0), 2).unwrap();
        let ne = Geohash::encode(p(45.0, 90.0), 2).unwrap();
        assert_eq!(sw.bits(), 0b00);
        assert_eq!(nw.bits(), 0b01);
        assert_eq!(se.bits(), 0b10);
        assert_eq!(ne.bits(), 0b11);
    }

    #[test]
    fn classic_base32_test_vector() {
        // The canonical example from the geohash literature.
        let g = Geohash::encode(p(57.64911, 10.40744), 55).unwrap();
        assert_eq!(g.to_base32().unwrap(), "u4pruydqqvj");
    }

    #[test]
    fn base32_roundtrip() {
        for s in ["u", "u4", "gbsuv", "u4pruydqqvj", "0", "zzzzz"] {
            let g = Geohash::from_base32(s).unwrap();
            assert_eq!(g.to_base32().unwrap(), s);
            assert_eq!(g.depth() as usize, s.len() * 5);
        }
    }

    #[test]
    fn base32_parse_is_case_insensitive_and_validates() {
        assert_eq!(
            Geohash::from_base32("GBSUV").unwrap(),
            Geohash::from_base32("gbsuv").unwrap()
        );
        assert_eq!(
            Geohash::from_base32("ab"),
            Err(GeoError::InvalidBase32('a'))
        );
        assert!(Geohash::from_base32("0123456789012").is_err());
    }

    #[test]
    fn to_base32_requires_multiple_of_five() {
        let g = Geohash::encode(p(1.0, 2.0), 36).unwrap();
        assert!(g.to_base32().is_none());
        let g = Geohash::encode(p(1.0, 2.0), 35).unwrap();
        assert!(g.to_base32().is_some());
    }

    #[test]
    fn bounds_contains_encoded_point() {
        for depth in [1u8, 2, 7, 16, 36, 55, 64] {
            let q = p(51.5074, -0.1278);
            let g = Geohash::encode(q, depth).unwrap();
            assert!(g.bounds().contains(q), "depth {depth}");
        }
    }

    #[test]
    fn cell_size_in_london_matches_paper() {
        // Paper, Section VI-A2: "In London, a geohash of 36 bits has a width
        // of 95 meters and a height of 76 meters."
        let g = Geohash::encode(p(51.5074, -0.1278), 36).unwrap();
        let b = g.bounds();
        assert!(
            (b.width_meters() - 95.0).abs() < 5.0,
            "width {}",
            b.width_meters()
        );
        assert!(
            (b.height_meters() - 76.0).abs() < 5.0,
            "height {}",
            b.height_meters()
        );
    }

    #[test]
    fn sixteen_bit_cells_are_continental_scale() {
        // Paper, Section VI-E: 16-bit cells are ~156 km wide at the equator.
        let g = Geohash::encode(p(0.0, 0.0), 16).unwrap();
        let b = g.bounds();
        assert!(
            (b.width_meters() - 156_000.0).abs() < 5_000.0,
            "{}",
            b.width_meters()
        );
    }

    #[test]
    fn truncate_and_parent() {
        let g = Geohash::from_bits(0b110101, 6).unwrap();
        assert_eq!(g.truncate(3).unwrap().bits(), 0b110);
        assert_eq!(g.parent().unwrap().bits(), 0b11010);
        assert_eq!(g.truncate(0).unwrap(), Geohash::world());
        assert!(g.truncate(7).is_err());
        assert!(Geohash::world().parent().is_none());
    }

    #[test]
    fn contains_hash_prefix_semantics() {
        let parent = Geohash::from_bits(0b1101, 4).unwrap();
        let child = Geohash::from_bits(0b110110, 6).unwrap();
        let other = Geohash::from_bits(0b111000, 6).unwrap();
        assert!(parent.contains_hash(&child));
        assert!(parent.contains_hash(&parent));
        assert!(!parent.contains_hash(&other));
        assert!(!child.contains_hash(&parent));
        assert!(Geohash::world().contains_hash(&child));
    }

    #[test]
    fn from_bits_validates() {
        assert!(Geohash::from_bits(0b1000, 3).is_err());
        assert!(Geohash::from_bits(0b100, 3).is_ok());
        assert!(Geohash::from_bits(u64::MAX, 64).is_ok());
        assert!(Geohash::from_bits(0, 65).is_err());
    }

    #[test]
    fn covering_of_single_point_is_full_depth() {
        let q = p(48.85, 2.35);
        let g = Geohash::covering([q]).unwrap();
        assert_eq!(g.depth(), MAX_DEPTH);
        assert!(g.bounds().contains(q));
    }

    #[test]
    fn covering_empty_errors() {
        assert_eq!(
            Geohash::covering(std::iter::empty()),
            Err(GeoError::EmptyPointSet)
        );
    }

    #[test]
    fn covering_nearby_points_is_deep() {
        // Points ~100 m apart share a deep prefix.
        let a = p(51.5074, -0.1278);
        let b = a.destination(90.0, 100.0);
        let g = Geohash::covering([a, b]).unwrap();
        assert!(g.depth() >= 20, "depth {}", g.depth());
        assert!(g.bounds().contains(a));
        assert!(g.bounds().contains(b));
    }

    #[test]
    fn covering_hemispheres_is_world() {
        let g = Geohash::covering([p(0.0, -90.0), p(0.0, 90.0)]).unwrap();
        assert_eq!(g, Geohash::world());
    }

    #[test]
    fn neighbors_are_adjacent() {
        let g = Geohash::encode(p(51.5, -0.12), 20).unwrap();
        let b = g.bounds();
        let east = g.neighbor(Direction::East).unwrap().bounds();
        assert!((east.min_lon() - b.max_lon()).abs() < 1e-9);
        assert!((east.min_lat() - b.min_lat()).abs() < 1e-9);
        let north = g.neighbor(Direction::North).unwrap().bounds();
        assert!((north.min_lat() - b.max_lat()).abs() < 1e-9);
        let west = g.neighbor(Direction::West).unwrap().bounds();
        assert!((west.max_lon() - b.min_lon()).abs() < 1e-9);
        let south = g.neighbor(Direction::South).unwrap().bounds();
        assert!((south.max_lat() - b.min_lat()).abs() < 1e-9);
    }

    #[test]
    fn neighbor_roundtrip() {
        let g = Geohash::encode(p(10.0, 20.0), 30).unwrap();
        assert_eq!(
            g.neighbor(Direction::East)
                .unwrap()
                .neighbor(Direction::West)
                .unwrap(),
            g
        );
        assert_eq!(
            g.neighbor(Direction::North)
                .unwrap()
                .neighbor(Direction::South)
                .unwrap(),
            g
        );
    }

    #[test]
    fn neighbor_saturates_at_poles_and_wraps_longitude() {
        let near_pole = Geohash::encode(p(89.99, 0.0), 20).unwrap();
        assert!(near_pole.neighbor(Direction::North).is_none());
        // Eastern edge wraps to the western edge.
        let east_edge = Geohash::encode(p(0.0, 179.99), 20).unwrap();
        let wrapped = east_edge.neighbor(Direction::East).unwrap();
        assert!(wrapped.bounds().min_lon() < -179.0);
    }

    #[test]
    fn zorder_orders_west_to_east_within_band() {
        // Two cells in the same latitude band and longitude half: the more
        // western one comes first on the curve when their prefix differs
        // only in the trailing longitude bit.
        let a = Geohash::from_bits(0b00, 2).unwrap();
        let b = Geohash::from_bits(0b10, 2).unwrap();
        assert!(a.zorder() < b.zorder());
        assert!(a.bounds().min_lon() < b.bounds().min_lon());
    }

    #[test]
    fn children_partition_the_parent() {
        let g = Geohash::encode(p(51.5, -0.12), 20).unwrap();
        let [c0, c1] = g.children().unwrap();
        assert_eq!(c0.parent(), Some(g));
        assert_eq!(c1.parent(), Some(g));
        assert!(g.contains_hash(&c0) && g.contains_hash(&c1));
        // The two children split the parent box along one axis.
        let pb = g.bounds();
        let area = |b: &BoundingBox| b.width_meters() * b.height_meters();
        let half = area(&c0.bounds()) + area(&c1.bounds());
        assert!((half - area(&pb)).abs() / area(&pb) < 0.01);
        // Max depth has no children.
        assert!(Geohash::encode(p(0.0, 0.0), 64)
            .unwrap()
            .children()
            .is_none());
    }

    #[test]
    fn from_str_parses_base32() {
        let g: Geohash = "gbsuv".parse().unwrap();
        assert_eq!(g, Geohash::from_base32("gbsuv").unwrap());
        assert!("?!".parse::<Geohash>().is_err());
    }

    #[test]
    fn cover_bbox_covers_the_box() {
        let bb = BoundingBox::around(p(51.5074, -0.1278), 2_000.0, 1_500.0);
        let cells = Geohash::cover_bbox(&bb, 30).unwrap();
        assert!(!cells.is_empty());
        assert_eq!(cells.len() as u64, Geohash::cover_count(&bb, 30).unwrap());
        // Cells are sorted, distinct and all intersect the box.
        assert!(cells.windows(2).all(|w| w[0] < w[1]));
        for c in &cells {
            assert!(c.bounds().intersects(&bb), "{c:?} misses the box");
        }
        // Every corner and the center are covered.
        for q in [
            bb.center(),
            p(bb.min_lat(), bb.min_lon()),
            p(bb.max_lat(), bb.max_lon()),
        ] {
            assert!(cells.iter().any(|c| c.contains_point(q)), "{q} uncovered");
        }
    }

    #[test]
    fn cover_bbox_depth_zero_is_world() {
        let bb = BoundingBox::around(p(0.0, 0.0), 1_000.0, 1_000.0);
        assert_eq!(Geohash::cover_bbox(&bb, 0).unwrap(), vec![Geohash::world()]);
        assert_eq!(Geohash::cover_count(&bb, 0).unwrap(), 1);
        assert!(Geohash::cover_bbox(&bb, 65).is_err());
    }

    #[test]
    fn cover_count_grows_with_depth() {
        let bb = BoundingBox::around(p(40.0, 10.0), 50_000.0, 50_000.0);
        let mut last = 0u64;
        for depth in [10u8, 16, 20, 24] {
            let n = Geohash::cover_count(&bb, depth).unwrap();
            assert!(n >= last, "depth {depth}: {n} < {last}");
            last = n;
        }
        assert!(last > 1);
    }

    #[test]
    fn cover_of_a_point_box_is_one_cell() {
        let q = p(51.5, -0.12);
        let bb = BoundingBox::enclosing([q]).unwrap();
        let cells = Geohash::cover_bbox(&bb, 36).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0], Geohash::encode(q, 36).unwrap());
    }

    #[test]
    fn display_prefers_base32() {
        let g = Geohash::from_base32("gbsuv").unwrap();
        assert_eq!(g.to_string(), "gbsuv");
        let g = Geohash::from_bits(0b1101, 4).unwrap();
        assert_eq!(g.to_string(), "0b1101/4");
    }

    proptest! {
        #[test]
        fn prop_encode_bounds_roundtrip(
            lat in -89.9f64..89.9, lon in -179.9f64..179.9, depth in 1u8..=64,
        ) {
            let q = p(lat, lon);
            let g = Geohash::encode(q, depth).unwrap();
            prop_assert!(g.bounds().contains(q));
            // Center re-encodes to the same cell.
            prop_assert_eq!(Geohash::encode(g.center(), depth).unwrap(), g);
        }

        #[test]
        fn prop_truncate_is_ancestor(
            lat in -89.9f64..89.9, lon in -179.9f64..179.9,
            depth in 2u8..=64, shallower in 1u8..=64,
        ) {
            prop_assume!(shallower < depth);
            let g = Geohash::encode(p(lat, lon), depth).unwrap();
            let t = g.truncate(shallower).unwrap();
            prop_assert!(t.contains_hash(&g));
            prop_assert!(t.bounds().contains(g.center()));
        }

        #[test]
        fn prop_covering_contains_all(
            pts in proptest::collection::vec((-89.0f64..89.0, -179.0f64..179.0), 1..12)
        ) {
            let points: Vec<Point> = pts.iter().map(|&(la, lo)| p(la, lo)).collect();
            let g = Geohash::covering(points.iter().copied()).unwrap();
            for q in &points {
                prop_assert!(
                    g.contains_point(*q) || g.depth() == 0,
                    "covering {g:?} must contain {q}"
                );
            }
        }

        #[test]
        fn cell_encoder_matches_encode(
            lat in -90.0f64..=90.0, lon in -180.0f64..=180.0, depth in 0u8..=64,
        ) {
            let q = p(lat, lon);
            let enc = CellEncoder::new(depth).unwrap();
            let reference = Geohash::encode(q, depth).unwrap();
            prop_assert_eq!(enc.encode_bits(q), reference.bits());
            prop_assert_eq!(enc.encode(q), reference);
        }

        #[test]
        fn prop_cell_set_is_sorted_distinct_cells(
            pts in proptest::collection::vec((-89.0f64..89.0, -179.0f64..179.0), 0..20),
            depth in 1u8..=36,
        ) {
            let points: Vec<Point> = pts.iter().map(|&(la, lo)| p(la, lo)).collect();
            let enc = CellEncoder::new(depth).unwrap();
            let cells = enc.cell_set(&points);
            prop_assert!(cells.windows(2).all(|w| w[0] < w[1]));
            let mut reference: Vec<u64> = points
                .iter()
                .map(|&q| Geohash::encode(q, depth).unwrap().bits())
                .collect();
            reference.sort_unstable();
            reference.dedup();
            prop_assert_eq!(cells, reference);
        }

        #[test]
        fn prop_base32_roundtrip(bits: u64, chars in 1usize..=12) {
            let depth = (chars * 5) as u8;
            let bits = if depth == 64 { bits } else { bits & ((1u64 << depth) - 1) };
            let g = Geohash::from_bits(bits, depth).unwrap();
            let s = g.to_base32().unwrap();
            prop_assert_eq!(Geohash::from_base32(&s).unwrap(), g);
        }

        #[test]
        fn prop_nearby_points_share_deep_prefix(
            lat in -60.0f64..60.0, lon in -170.0f64..170.0,
        ) {
            // Two points 10 m apart must share a prefix of at least 10 bits
            // unless they straddle a major cell boundary; covering() handles
            // both cases, we only check consistency here.
            let a = p(lat, lon);
            let b = a.destination(90.0, 10.0);
            let g = Geohash::covering([a, b]).unwrap();
            prop_assert!(g.contains_point(a) || g.depth() == 0);
            prop_assert!(g.contains_point(b) || g.depth() == 0);
        }
    }
}
