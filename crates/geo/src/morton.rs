//! Bit interleaving (Morton encoding) for the Z-order space-filling curve.
//!
//! A geohash is exactly a Morton code over quantized longitude/latitude
//! (Figure 2 of the paper): even bit positions (starting from the most
//! significant bit of the hash) subdivide longitude, odd positions subdivide
//! latitude. Interpreting the resulting bit string as an integer orders the
//! cells along the Z-order curve, which is what the sharding strategy of
//! Section VI-E exploits.

/// Per-byte spread table: entry `b` is the 16-bit value whose bit `2 * i`
/// equals bit `i` of `b` — one lookup replaces the five shift-and-mask
/// rounds of [`spread_masks`] per input byte.
const SPREAD_BYTE: [u16; 256] = {
    let mut table = [0u16; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut v = 0u16;
        let mut i = 0;
        while i < 8 {
            if b & (1 << i) != 0 {
                v |= 1 << (2 * i);
            }
            i += 1;
        }
        table[b] = v;
        b += 1;
    }
    table
};

/// Spreads the lower 32 bits of `x` so that bit `i` of the input lands at bit
/// `2 * i` of the output.
///
/// ```
/// use geodabs_geo::morton::spread;
///
/// assert_eq!(spread(0b11), 0b101);
/// assert_eq!(spread(u32::MAX), 0x5555_5555_5555_5555);
/// ```
pub fn spread(x: u32) -> u64 {
    let b = x.to_le_bytes();
    (SPREAD_BYTE[b[0] as usize] as u64)
        | (SPREAD_BYTE[b[1] as usize] as u64) << 16
        | (SPREAD_BYTE[b[2] as usize] as u64) << 32
        | (SPREAD_BYTE[b[3] as usize] as u64) << 48
}

/// Shift-and-mask implementation of [`spread`], retained as the reference
/// the differential tests and the `crit_kernels` encode benches compare the
/// byte-LUT path against.
pub fn spread_masks(x: u32) -> u64 {
    let mut v = x as u64;
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Inverse of [`spread`]: collects every second bit (starting at bit 0) into
/// a compact 32-bit value.
pub fn compact(v: u64) -> u32 {
    let mut v = v & 0x5555_5555_5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333_3333_3333;
    v = (v | (v >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v >> 4)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v >> 8)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v >> 16)) & 0x0000_0000_FFFF_FFFF;
    v as u32
}

/// Interleaves two 32-bit values into a 64-bit Morton code.
///
/// Bit `i` of `even` lands at output bit `2 * i` and bit `i` of `odd` at
/// `2 * i + 1`. For geohashes, the longitude occupies the *higher* of each
/// bit pair once the code is left-aligned, matching the convention that the
/// first bisection is on the longitude axis.
pub fn interleave(even: u32, odd: u32) -> u64 {
    // Eight byte lookups build the full 64-bit code: each input byte pair
    // yields one 16-bit slice of the output.
    let e = even.to_le_bytes();
    let o = odd.to_le_bytes();
    let mut code = 0u64;
    for i in 0..4 {
        let pair = SPREAD_BYTE[e[i] as usize] as u64 | (SPREAD_BYTE[o[i] as usize] as u64) << 1;
        code |= pair << (16 * i);
    }
    code
}

/// Splits a Morton code back into its even-position and odd-position halves.
///
/// Inverse of [`interleave`].
pub fn deinterleave(code: u64) -> (u32, u32) {
    (compact(code), compact(code >> 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn spread_known_values() {
        assert_eq!(spread(0), 0);
        assert_eq!(spread(1), 1);
        assert_eq!(spread(0b10), 0b100);
        assert_eq!(spread(0b111), 0b10101);
        assert_eq!(spread(u32::MAX), 0x5555_5555_5555_5555);
    }

    #[test]
    fn compact_inverts_spread_on_known_values() {
        for x in [0u32, 1, 2, 3, 0xFF, 0xDEAD_BEEF, u32::MAX] {
            assert_eq!(compact(spread(x)), x);
        }
    }

    #[test]
    fn interleave_known_pattern() {
        // even = 0b11 -> bits 0 and 2; odd = 0b01 -> bit 1.
        assert_eq!(interleave(0b11, 0b01), 0b111);
        assert_eq!(interleave(0, u32::MAX), 0xAAAA_AAAA_AAAA_AAAA);
        assert_eq!(interleave(u32::MAX, 0), 0x5555_5555_5555_5555);
    }

    #[test]
    fn deinterleave_known_pattern() {
        assert_eq!(deinterleave(0b111), (0b11, 0b01));
        assert_eq!(deinterleave(u64::MAX), (u32::MAX, u32::MAX));
    }

    #[test]
    fn zorder_monotone_in_quadrants() {
        // Points in the lower-left quadrant must order before the upper-right
        // quadrant on the Z-curve when the leading bits differ.
        let low = interleave(0x0000_0000, 0x0000_0000);
        let high = interleave(0x8000_0000, 0x8000_0000);
        assert!(low < high);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(even: u32, odd: u32) {
            let code = interleave(even, odd);
            prop_assert_eq!(deinterleave(code), (even, odd));
        }

        #[test]
        fn prop_spread_compact_roundtrip(x: u32) {
            prop_assert_eq!(compact(spread(x)), x);
        }

        #[test]
        fn prop_interleave_is_bitwise_disjoint(even: u32, odd: u32) {
            prop_assert_eq!(spread(even) & (spread(odd) << 1), 0);
            prop_assert_eq!(interleave(even, odd), spread(even) ^ (spread(odd) << 1));
        }

        #[test]
        fn prop_lut_matches_shift_mask_reference(even: u32, odd: u32) {
            prop_assert_eq!(spread(even), spread_masks(even));
            prop_assert_eq!(
                interleave(even, odd),
                spread_masks(even) | (spread_masks(odd) << 1)
            );
        }
    }
}
