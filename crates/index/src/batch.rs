//! Scoped-thread fan-out used by the batch ingest and batch query paths.
//!
//! Fingerprinting (and cell-set extraction) is embarrassingly parallel,
//! and so is answering independent queries against shared read-only
//! engine state. This module provides the one primitive both paths need:
//! an order-preserving parallel map over a slice, built on
//! [`std::thread::scope`] so it borrows freely and never detaches a
//! worker. Mutation of index structures stays out of here by design —
//! posting-list insertion remains single-writer, which is what makes the
//! batch paths bit-identical to their sequential equivalents.

use std::sync::Mutex;

/// The worker-thread count meaning "use every core": the machine's
/// available parallelism, clamped to at least 1 when it cannot be
/// determined. The single source of truth for every "all cores" default
/// in the workspace — batch ingest, batch query, concurrent snapshot
/// encode/decode, the bench thread ladder and the serve connection pool
/// all resolve their defaults here.
///
/// # Examples
///
/// ```
/// assert!(geodabs_index::batch::default_threads() >= 1);
/// ```
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every item of `items` across up to `threads` scoped
/// worker threads, returning the outputs **in input order** — exactly
/// `items.iter().map(f).collect()`, only faster.
///
/// The slice is split into at most `threads` contiguous chunks, one
/// worker per chunk; with `threads == 1` (or a single-element slice) the
/// work still runs on a worker thread but degenerates to the sequential
/// order. Panics in `f` propagate.
///
/// # Panics
///
/// Panics if `threads` is zero.
///
/// # Examples
///
/// ```
/// use geodabs_index::batch::parallel_map;
///
/// let squares = parallel_map(&[1u64, 2, 3, 4, 5], 4, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if items.is_empty() {
        return Vec::new();
    }
    let chunk = items.len().div_ceil(threads).max(1);
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(threads));
    std::thread::scope(|scope| {
        for (chunk_index, slice) in items.chunks(chunk).enumerate() {
            let parts = &parts;
            let f = &f;
            scope.spawn(move || {
                let local: Vec<R> = slice.iter().map(f).collect();
                parts
                    .lock()
                    .expect("worker threads propagate panics via scope")
                    .push((chunk_index, local));
            });
        }
    });
    let mut parts = parts
        .into_inner()
        .expect("worker threads propagate panics via scope");
    // Workers finish in any order; chunk indexes restore the input order
    // deterministically.
    parts.sort_unstable_by_key(|&(chunk_index, _)| chunk_index);
    parts.into_iter().flat_map(|(_, local)| local).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<u32> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3).collect();
        for threads in [1usize, 2, 3, 4, 8, 16, 200] {
            assert_eq!(
                parallel_map(&items, threads, |&x| u64::from(x) * 3),
                expected,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = parallel_map(&[1u32], 0, |&x| x);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            parallel_map(&[1u32, 2, 3], 2, |&x| {
                assert!(x != 2, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
