//! Binary persistence for the single-node index backends.
//!
//! Snapshots use the sectioned `GDAB` v2 container of [`crate::store`]
//! and serialize **derived engine state** — roaring posting bitmaps in
//! their wire form, the `TrajId ↔ dense` interner table and per-set
//! cardinalities — so loading is a direct materialization instead of an
//! O(corpus) rebuild. [`GeodabIndex`] and [`GeohashIndex`] both implement
//! [`Persist`] here; the cluster backend does the same in its own crate
//! over per-node segments.
//!
//! # `GeodabIndex` section layout (backend tag 1)
//!
//! ```text
//! CONF  depth u8, prefix u8, k u32, t u32
//! SLOT  capacity u32, live u32, live × (dense u32, id u32, set_size u32)
//! POST  terms u32, terms × (term u32, posting bitmap wire form)
//! FPRS  count u32, count × (id u32, len u32, len × geodab u32)
//! ```
//!
//! # `GeohashIndex` section layout (backend tag 2)
//!
//! ```text
//! CONF  depth u8
//! SLOT  as above (set_size = number of distinct cells)
//! POST  terms u32, terms × (term u64, posting bitmap wire form)
//! CELL  count u32, count × (id u32, len u32, len × cell u64)
//! ```
//!
//! The original v1 format (raw fingerprint sequences only, postings
//! rebuilt on load) remains fully decodable: [`decode`] switches on the
//! version field, and [`encode_v1`] still writes it for compatibility
//! testing and migration tooling.

use geodabs_core::{Fingerprints, GeodabConfig};
use geodabs_geo::MAX_DEPTH;
use geodabs_roaring::RoaringBitmap;
use geodabs_traj::TrajId;
use std::collections::HashMap;

use crate::engine::PostingLists;
use crate::store::{
    peek_version, BackendKind, Cursor, Persist, SnapshotError, SnapshotReader, SnapshotWriter,
    MAGIC, SEC_CELLS, SEC_CONFIG, SEC_FINGERPRINTS, SEC_POSTINGS, SEC_SLOTS, VERSION_V1,
};
use crate::{GeodabIndex, GeohashIndex};

/// Serializes the index in the current (v2) snapshot format.
///
/// Equivalent to [`Persist::to_snapshot`]; kept as a free function for
/// continuity with the v1 API.
pub fn encode(index: &GeodabIndex) -> Vec<u8> {
    index.to_snapshot()
}

/// Reconstructs an index from either snapshot version: v2 containers are
/// materialized directly from their serialized engine state, v1 blobs are
/// decoded through the legacy rebuild path.
///
/// # Errors
///
/// Returns a [`SnapshotError`] on malformed input; a successful decode is
/// always internally consistent.
pub fn decode(data: &[u8]) -> Result<GeodabIndex, SnapshotError> {
    match peek_version(data)? {
        VERSION_V1 => decode_v1(data),
        crate::store::VERSION => GeodabIndex::from_snapshot(data),
        other => Err(SnapshotError::UnsupportedVersion(other)),
    }
}

// ---------------------------------------------------------------------
// Shared section helpers
// ---------------------------------------------------------------------

/// Caps a `Vec::with_capacity` taken from untrusted input: never reserve
/// more entries than the remaining payload could possibly hold.
fn claimed_capacity(claimed: usize, remaining: usize, entry_size: usize) -> usize {
    claimed.min(remaining / entry_size.max(1))
}

fn write_slots(out: &mut Vec<u8>, capacity: u32, slots: &[(u32, TrajId, u32)]) {
    out.extend_from_slice(&capacity.to_le_bytes());
    out.extend_from_slice(&(slots.len() as u32).to_le_bytes());
    for &(dense, id, set_size) in slots {
        out.extend_from_slice(&dense.to_le_bytes());
        out.extend_from_slice(&id.raw().to_le_bytes());
        out.extend_from_slice(&set_size.to_le_bytes());
    }
}

/// The `(dense, id, set_size)` triples of a SLOT section plus the slot
/// capacity.
type SlotTable = (u32, Vec<(u32, TrajId, u32)>);

fn read_slots(payload: &[u8]) -> Result<SlotTable, SnapshotError> {
    let mut cursor = Cursor::new(payload);
    let capacity = cursor.u32()?;
    let live = cursor.u32()? as usize;
    let mut slots = Vec::with_capacity(claimed_capacity(live, cursor.remaining(), 12));
    for _ in 0..live {
        let dense = cursor.u32()?;
        let id = TrajId::new(cursor.u32()?);
        let set_size = cursor.u32()?;
        slots.push((dense, id, set_size));
    }
    cursor.expect_end()?;
    Ok((capacity, slots))
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

/// A fixed-width little-endian value a snapshot record can carry — the
/// term/sequence element types of the backends (`u32` geodabs, `u64`
/// geohash cells). Sealed: the on-disk format admits exactly these
/// widths.
pub trait SectionValue: Copy + sealed::Sealed {
    /// Byte width on the wire.
    const WIDTH: usize;

    /// Appends the little-endian encoding to `out`.
    fn write(self, out: &mut Vec<u8>);

    /// Reads one value.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of input.
    fn read(cursor: &mut Cursor<'_>) -> Result<Self, SnapshotError>;
}

impl SectionValue for u32 {
    const WIDTH: usize = 4;

    fn write(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read(cursor: &mut Cursor<'_>) -> Result<u32, SnapshotError> {
        Ok(cursor.u32()?)
    }
}

impl SectionValue for u64 {
    const WIDTH: usize = 8;

    fn write(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read(cursor: &mut Cursor<'_>) -> Result<u64, SnapshotError> {
        Ok(cursor.u64()?)
    }
}

/// Writes the `(id, ordered sequence)` record family shared by the
/// geodab FPRS section, the geohash CELL section and the cluster
/// manifest: a `u32` record count, then per record the id, the sequence
/// length and the values, all little-endian. Ids must be strictly
/// ascending.
pub fn write_sequences<V: SectionValue>(out: &mut Vec<u8>, records: &[(TrajId, &[V])]) {
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for &(id, seq) in records {
        out.extend_from_slice(&id.raw().to_le_bytes());
        out.extend_from_slice(&(seq.len() as u32).to_le_bytes());
        for &value in seq {
            value.write(out);
        }
    }
}

/// Reads the record family [`write_sequences`] produces, verifying the
/// strictly-ascending id order.
///
/// # Errors
///
/// [`SnapshotError::Truncated`] / [`SnapshotError::Corrupt`] on
/// malformed input.
pub fn read_sequences<V: SectionValue>(
    payload: &[u8],
) -> Result<Vec<(TrajId, Vec<V>)>, SnapshotError> {
    let mut cursor = Cursor::new(payload);
    let count = cursor.u32()? as usize;
    let mut records = Vec::with_capacity(claimed_capacity(count, cursor.remaining(), 8));
    let mut last: Option<u32> = None;
    for _ in 0..count {
        let id = cursor.u32()?;
        if last.is_some_and(|prev| prev >= id) {
            return Err(SnapshotError::Corrupt("record ids not strictly ascending"));
        }
        last = Some(id);
        let len = cursor.u32()? as usize;
        // Divide instead of multiplying: `len * WIDTH` could overflow
        // `usize` on 32-bit targets and let a crafted length through.
        if cursor.remaining() / V::WIDTH < len {
            return Err(SnapshotError::Truncated);
        }
        let mut seq = Vec::with_capacity(len);
        for _ in 0..len {
            seq.push(V::read(&mut cursor)?);
        }
        records.push((TrajId::new(id), seq));
    }
    cursor.expect_end()?;
    Ok(records)
}

/// Writes a term → posting-bitmap dictionary: a `u32` term count, then
/// per term its value and the posting list in roaring wire form. Terms
/// must be strictly ascending (the deterministic-encode order).
pub fn write_postings<V: SectionValue>(out: &mut Vec<u8>, postings: &[(V, &RoaringBitmap)]) {
    out.extend_from_slice(&(postings.len() as u32).to_le_bytes());
    for &(term, list) in postings {
        term.write(out);
        list.serialize_into(out);
    }
}

/// Reads a dictionary [`write_postings`] produced, from a cursor (the
/// cluster node segments embed one mid-payload), verifying the
/// strictly-ascending term order.
///
/// # Errors
///
/// [`SnapshotError::Truncated`] / [`SnapshotError::Corrupt`] on
/// malformed input.
pub fn read_postings<V: SectionValue + Ord>(
    cursor: &mut Cursor<'_>,
) -> Result<Vec<(V, RoaringBitmap)>, SnapshotError> {
    let term_count = cursor.u32()? as usize;
    let mut postings = Vec::with_capacity(claimed_capacity(
        term_count,
        cursor.remaining(),
        V::WIDTH + 4,
    ));
    let mut last: Option<V> = None;
    for _ in 0..term_count {
        let term = V::read(cursor)?;
        if last.is_some_and(|prev| prev >= term) {
            return Err(SnapshotError::Corrupt(
                "posting terms not strictly ascending",
            ));
        }
        last = Some(term);
        postings.push((term, cursor.bitmap()?));
    }
    Ok(postings)
}

// ---------------------------------------------------------------------
// GeodabIndex (backend tag 1)
// ---------------------------------------------------------------------

impl Persist for GeodabIndex {
    fn to_snapshot(&self) -> Vec<u8> {
        let cfg = self.config();
        let mut writer = SnapshotWriter::new(BackendKind::Geodab);

        let mut conf = Vec::with_capacity(10);
        conf.push(cfg.normalization_depth());
        conf.push(cfg.prefix_bits());
        conf.extend_from_slice(&(cfg.k() as u32).to_le_bytes());
        conf.extend_from_slice(&(cfg.t() as u32).to_le_bytes());
        writer.section(SEC_CONFIG, conf);

        let slots = self.engine().snapshot_slots();
        let mut slot_bytes = Vec::with_capacity(8 + 12 * slots.len());
        write_slots(
            &mut slot_bytes,
            self.engine().interner().capacity() as u32,
            &slots,
        );
        writer.section(SEC_SLOTS, slot_bytes);

        let mut post = Vec::new();
        write_postings(&mut post, &self.engine().postings_sorted());
        writer.section(SEC_POSTINGS, post);

        let mut records: Vec<(TrajId, &[u32])> = self
            .iter_fingerprints()
            .map(|(id, fp)| (id, fp.ordered()))
            .collect();
        records.sort_unstable_by_key(|&(id, _)| id);
        let mut fprs = Vec::new();
        write_sequences(&mut fprs, &records);
        writer.section(SEC_FINGERPRINTS, fprs);

        writer.finish()
    }

    fn from_snapshot(data: &[u8]) -> Result<GeodabIndex, SnapshotError> {
        let reader = SnapshotReader::parse(data)?;
        reader.expect_backend(BackendKind::Geodab)?;

        let mut conf = Cursor::new(reader.section(SEC_CONFIG)?);
        let depth = conf.u8()?;
        let prefix = conf.u8()?;
        let k = conf.u32()? as usize;
        let t = conf.u32()? as usize;
        conf.expect_end()?;
        let config =
            GeodabConfig::new(depth, k, t, prefix).map_err(SnapshotError::InvalidConfig)?;

        let (capacity, slots) = read_slots(reader.section(SEC_SLOTS)?)?;

        let mut post = Cursor::new(reader.section(SEC_POSTINGS)?);
        let postings = read_postings::<u32>(&mut post)?;
        post.expect_end()?;

        let records = read_sequences::<u32>(reader.section(SEC_FINGERPRINTS)?)?;
        if records.len() != slots.len() {
            return Err(SnapshotError::Corrupt(
                "fingerprint records and live slots disagree",
            ));
        }
        let mut fingerprints: HashMap<TrajId, Fingerprints> = HashMap::with_capacity(records.len());
        for (id, ordered) in records {
            fingerprints.insert(id, Fingerprints::from_ordered(ordered));
        }
        for &(_, id, set_size) in &slots {
            let Some(fp) = fingerprints.get(&id) else {
                return Err(SnapshotError::Corrupt("live slot without fingerprints"));
            };
            if fp.distinct_len() != set_size as u64 {
                return Err(SnapshotError::Corrupt(
                    "set cardinality disagrees with fingerprints",
                ));
            }
        }

        let engine = PostingLists::from_snapshot_parts(capacity, &slots, postings)
            .map_err(SnapshotError::Corrupt)?;
        Ok(GeodabIndex::from_engine_parts(config, engine, fingerprints))
    }
}

// ---------------------------------------------------------------------
// GeohashIndex (backend tag 2)
// ---------------------------------------------------------------------

impl Persist for GeohashIndex {
    fn to_snapshot(&self) -> Vec<u8> {
        let mut writer = SnapshotWriter::new(BackendKind::Geohash);
        writer.section(SEC_CONFIG, vec![self.depth()]);

        let slots = self.engine().snapshot_slots();
        let mut slot_bytes = Vec::with_capacity(8 + 12 * slots.len());
        write_slots(
            &mut slot_bytes,
            self.engine().interner().capacity() as u32,
            &slots,
        );
        writer.section(SEC_SLOTS, slot_bytes);

        let mut post = Vec::new();
        write_postings(&mut post, &self.engine().postings_sorted());
        writer.section(SEC_POSTINGS, post);

        let mut records: Vec<(TrajId, &[u64])> = self.iter_cells().collect();
        records.sort_unstable_by_key(|&(id, _)| id);
        let mut cells = Vec::new();
        write_sequences(&mut cells, &records);
        writer.section(SEC_CELLS, cells);

        writer.finish()
    }

    fn from_snapshot(data: &[u8]) -> Result<GeohashIndex, SnapshotError> {
        let reader = SnapshotReader::parse(data)?;
        reader.expect_backend(BackendKind::Geohash)?;

        let mut conf = Cursor::new(reader.section(SEC_CONFIG)?);
        let depth = conf.u8()?;
        conf.expect_end()?;
        if depth == 0 || depth > MAX_DEPTH {
            return Err(SnapshotError::Corrupt("cell depth out of range"));
        }

        let (capacity, slots) = read_slots(reader.section(SEC_SLOTS)?)?;

        let mut post = Cursor::new(reader.section(SEC_POSTINGS)?);
        let postings = read_postings::<u64>(&mut post)?;
        post.expect_end()?;

        let records = read_sequences::<u64>(reader.section(SEC_CELLS)?)?;
        if records.len() != slots.len() {
            return Err(SnapshotError::Corrupt(
                "cell records and live slots disagree",
            ));
        }
        let mut cells: HashMap<TrajId, Vec<u64>> = HashMap::with_capacity(records.len());
        for (id, seq) in records {
            if !seq.windows(2).all(|w| w[0] < w[1]) {
                return Err(SnapshotError::Corrupt("cell set not strictly sorted"));
            }
            cells.insert(id, seq);
        }
        for &(_, id, set_size) in &slots {
            let Some(seq) = cells.get(&id) else {
                return Err(SnapshotError::Corrupt("live slot without a cell set"));
            };
            if seq.len() != set_size as usize {
                return Err(SnapshotError::Corrupt(
                    "set cardinality disagrees with cell set",
                ));
            }
        }

        let engine = PostingLists::from_snapshot_parts(capacity, &slots, postings)
            .map_err(SnapshotError::Corrupt)?;
        Ok(GeohashIndex::from_engine_parts(depth, engine, cells))
    }
}

// ---------------------------------------------------------------------
// Legacy v1 format
// ---------------------------------------------------------------------

/// Serializes the index in the legacy v1 format: configuration plus raw
/// fingerprint sequences, with all engine state rebuilt on load. Kept so
/// migration tooling and compatibility tests can still produce v1 blobs;
/// new snapshots should use [`encode`] / [`Persist::to_snapshot`].
pub fn encode_v1(index: &GeodabIndex) -> Vec<u8> {
    let cfg = index.config();
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION_V1.to_le_bytes());
    buf.push(cfg.normalization_depth());
    buf.push(cfg.prefix_bits());
    buf.extend_from_slice(&(cfg.k() as u32).to_le_bytes());
    buf.extend_from_slice(&(cfg.t() as u32).to_le_bytes());
    // Deterministic output: sort by id.
    let mut entries: Vec<(TrajId, &Fingerprints)> = index.iter_fingerprints().collect();
    entries.sort_by_key(|&(id, _)| id);
    buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (id, fp) in entries {
        buf.extend_from_slice(&id.raw().to_le_bytes());
        buf.extend_from_slice(&(fp.ordered().len() as u32).to_le_bytes());
        for &g in fp.ordered() {
            buf.extend_from_slice(&g.to_le_bytes());
        }
    }
    buf
}

/// The v1 rebuild path: replay every stored fingerprint sequence through
/// [`GeodabIndex::insert_fingerprints`].
fn decode_v1(data: &[u8]) -> Result<GeodabIndex, SnapshotError> {
    // The version switch in `decode` already verified magic + version.
    let mut reader = Cursor::new(&data[6..]);
    let depth = reader.u8()?;
    let prefix = reader.u8()?;
    let k = reader.u32()? as usize;
    let t = reader.u32()? as usize;
    let config = GeodabConfig::new(depth, k, t, prefix).map_err(SnapshotError::InvalidConfig)?;
    let count = reader.u64()?;
    let mut index = GeodabIndex::new(config);
    for _ in 0..count {
        let id = TrajId::new(reader.u32()?);
        let len = reader.u32()? as usize;
        // Divide instead of multiplying: `len * 4` could overflow `usize`
        // on 32-bit targets and let a crafted length through.
        if reader.remaining() / 4 < len {
            return Err(SnapshotError::Truncated);
        }
        let mut ordered = Vec::with_capacity(len);
        for _ in 0..len {
            ordered.push(reader.u32()?);
        }
        index.insert_fingerprints(id, Fingerprints::from_ordered(ordered));
    }
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SearchOptions, TrajectoryIndex};
    use geodabs_geo::Point;
    use geodabs_traj::Trajectory;

    fn path(offset: f64) -> Trajectory {
        let start = Point::new(51.5074, -0.1278).unwrap();
        (0..200)
            .map(|i| start.destination(90.0, offset + i as f64 * 14.0))
            .collect()
    }

    fn sample_index() -> GeodabIndex {
        let mut idx = GeodabIndex::new(GeodabConfig::default());
        idx.insert(TrajId::new(0), &path(0.0));
        idx.insert(TrajId::new(1), &path(0.0).reversed());
        idx.insert(TrajId::new(5), &path(10_000.0));
        idx
    }

    fn sample_geohash() -> GeohashIndex {
        let mut idx = GeohashIndex::new(36);
        idx.insert(TrajId::new(0), &path(0.0));
        idx.insert(TrajId::new(1), &path(0.0).reversed());
        idx.insert(TrajId::new(5), &path(10_000.0));
        idx
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = sample_index();
        let bytes = encode(&original);
        let decoded = decode(&bytes).expect("roundtrip");
        assert_eq!(decoded.len(), original.len());
        assert_eq!(decoded.term_count(), original.term_count());
        assert_eq!(*decoded.config(), *original.config());
        for (id, fp) in original.iter_fingerprints() {
            assert_eq!(decoded.fingerprints(id), Some(fp));
        }
    }

    #[test]
    fn decoded_index_answers_queries_identically() {
        let original = sample_index();
        let decoded = decode(&encode(&original)).expect("roundtrip");
        let query = path(0.0);
        assert_eq!(
            original.search(&query, &SearchOptions::default()),
            decoded.search(&query, &SearchOptions::default())
        );
    }

    #[test]
    fn v1_blobs_still_decode() {
        let original = sample_index();
        let v1 = encode_v1(&original);
        assert_eq!(v1[4], 1, "legacy writer stamps version 1");
        let decoded = decode(&v1).expect("v1 decode");
        assert_eq!(decoded.len(), original.len());
        assert_eq!(decoded.term_count(), original.term_count());
        let query = path(0.0);
        assert_eq!(
            original.search(&query, &SearchOptions::default()),
            decoded.search(&query, &SearchOptions::default())
        );
        // Re-encoding a v1-loaded index produces the same v2 bytes as the
        // original: both paths land on identical engine state.
        assert_eq!(encode(&decoded), encode(&original));
    }

    #[test]
    fn geohash_roundtrip_preserves_everything() {
        let original = sample_geohash();
        let decoded = GeohashIndex::from_snapshot(&original.to_snapshot()).expect("roundtrip");
        assert_eq!(decoded.len(), original.len());
        assert_eq!(decoded.term_count(), original.term_count());
        assert_eq!(decoded.depth(), original.depth());
        for query in [path(0.0), path(0.0).reversed(), path(10_000.0)] {
            assert_eq!(
                original.search(&query, &SearchOptions::default()),
                decoded.search(&query, &SearchOptions::default())
            );
        }
    }

    #[test]
    fn wrong_backend_is_rejected() {
        let geodab = sample_index().to_snapshot();
        assert!(matches!(
            GeohashIndex::from_snapshot(&geodab),
            Err(SnapshotError::WrongBackend { .. })
        ));
        let geohash = sample_geohash().to_snapshot();
        assert!(matches!(
            GeodabIndex::from_snapshot(&geohash),
            Err(SnapshotError::WrongBackend { .. })
        ));
    }

    #[test]
    fn encoding_is_deterministic() {
        let idx = sample_index();
        assert_eq!(encode(&idx), encode(&idx));
        let gh = sample_geohash();
        assert_eq!(gh.to_snapshot(), gh.to_snapshot());
    }

    #[test]
    fn empty_indexes_roundtrip() {
        let idx = GeodabIndex::new(GeodabConfig::default());
        let decoded = decode(&encode(&idx)).expect("roundtrip");
        assert_eq!(decoded.len(), 0);
        assert_eq!(decoded.term_count(), 0);
        let gh = GeohashIndex::new(36);
        let decoded = GeohashIndex::from_snapshot(&gh.to_snapshot()).expect("roundtrip");
        assert_eq!(decoded.len(), 0);
        assert_eq!(decoded.term_count(), 0);
    }

    #[test]
    fn roundtrip_after_removals_keeps_vacant_slots_reusable() {
        let mut idx = sample_index();
        idx.remove(TrajId::new(1));
        let mut decoded = decode(&encode(&idx)).expect("roundtrip");
        assert_eq!(decoded.len(), 2);
        // The vacant slot is usable again after the load.
        decoded.insert(TrajId::new(9), &path(500.0));
        let fresh_hits = decoded.search(&path(500.0), &SearchOptions::default().limit(1));
        assert_eq!(fresh_hits[0].id, TrajId::new(9));
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(decode(b"NOPE"), Err(SnapshotError::BadMagic)));
        assert!(matches!(decode(b""), Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = encode(&sample_index());
        bytes[4] = 0xFF;
        bytes[5] = 0xFF;
        assert!(matches!(
            decode(&bytes),
            Err(SnapshotError::UnsupportedVersion(0xFFFF))
        ));
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        for bytes in [encode(&sample_index()), encode_v1(&sample_index())] {
            for cut in [5usize, 7, 10, 15, bytes.len() / 2, bytes.len() - 1] {
                let err = decode(&bytes[..cut]).expect_err("must fail");
                assert!(
                    matches!(err, SnapshotError::Truncated | SnapshotError::BadMagic),
                    "cut at {cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn payload_corruption_is_caught_by_checksums() {
        let bytes = encode(&sample_index());
        // Flip one bit somewhere inside the last section's payload.
        let offset = bytes.len() - 20;
        let mut corrupted = bytes.clone();
        corrupted[offset] ^= 0x10;
        assert!(matches!(
            decode(&corrupted),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn corrupted_config_is_rejected() {
        let mut v1 = encode_v1(&sample_index());
        v1[6] = 0; // normalization depth 0
        assert!(matches!(decode(&v1), Err(SnapshotError::InvalidConfig(_))));
    }

    #[test]
    fn snapshot_error_display() {
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        assert!(SnapshotError::Truncated.to_string().contains("truncated"));
        assert!(SnapshotError::UnsupportedVersion(9)
            .to_string()
            .contains('9'));
        assert!(SnapshotError::Corrupt("x").to_string().contains('x'));
    }
}
