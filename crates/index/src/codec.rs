//! Compact binary persistence for [`GeodabIndex`].
//!
//! The on-disk format stores the configuration plus, per trajectory, its
//! ordered fingerprint sequence; the query engine's derived state —
//! posting bitmaps, the `TrajId ↔ dense` interning table and per-set
//! cardinalities (see [`crate::engine`]) — is rebuilt on load. Layout,
//! all little-endian:
//!
//! ```text
//! magic   b"GDAB"                     4 bytes
//! version u16                         2 bytes
//! config  depth u8, prefix u8, k u32, t u32
//! count   u64                         number of trajectories
//! entry*  id u32, len u32, geodab u32 * len
//! ```

use geodabs_core::{Fingerprints, GeodabConfig, GeodabError};
use geodabs_traj::TrajId;
use std::error::Error;
use std::fmt;

use crate::GeodabIndex;

const MAGIC: &[u8; 4] = b"GDAB";
const VERSION: u16 = 1;

/// Errors decoding a serialized index.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The input does not start with the `GDAB` magic.
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion(u16),
    /// The input ended in the middle of a record.
    Truncated,
    /// The stored configuration fails validation.
    InvalidConfig(GeodabError),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "input is not a geodab index (bad magic)"),
            CodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported geodab index format version {v}")
            }
            CodecError::Truncated => write!(f, "truncated geodab index data"),
            CodecError::InvalidConfig(e) => write!(f, "invalid stored configuration: {e}"),
        }
    }
}

impl Error for CodecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CodecError::InvalidConfig(e) => Some(e),
            _ => None,
        }
    }
}

/// Serializes the index to its compact binary form.
pub fn encode(index: &GeodabIndex) -> Vec<u8> {
    let cfg = index.config();
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.push(cfg.normalization_depth());
    buf.push(cfg.prefix_bits());
    buf.extend_from_slice(&(cfg.k() as u32).to_le_bytes());
    buf.extend_from_slice(&(cfg.t() as u32).to_le_bytes());
    // Deterministic output: sort by id.
    let mut entries: Vec<(TrajId, &Fingerprints)> = index.iter_fingerprints().collect();
    entries.sort_by_key(|&(id, _)| id);
    buf.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (id, fp) in entries {
        buf.extend_from_slice(&id.raw().to_le_bytes());
        buf.extend_from_slice(&(fp.ordered().len() as u32).to_le_bytes());
        for &g in fp.ordered() {
            buf.extend_from_slice(&g.to_le_bytes());
        }
    }
    buf
}

/// Little-endian cursor over the encoded byte stream; every read is
/// bounds-checked so truncated input surfaces as [`CodecError::Truncated`].
struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.data.len() < n {
            return Err(CodecError::Truncated);
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn get_u16_le(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn get_u32_le(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn get_u64_le(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Reconstructs an index from its binary form.
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed input; the index is rebuilt
/// (postings and bitmaps re-derived), so a successful decode is always
/// internally consistent.
pub fn decode(data: &[u8]) -> Result<GeodabIndex, CodecError> {
    let mut reader = Reader { data };
    if reader.remaining() < 4 || reader.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = reader.get_u16_le()?;
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let depth = reader.get_u8()?;
    let prefix = reader.get_u8()?;
    let k = reader.get_u32_le()? as usize;
    let t = reader.get_u32_le()? as usize;
    let config = GeodabConfig::new(depth, k, t, prefix).map_err(CodecError::InvalidConfig)?;
    let count = reader.get_u64_le()?;
    let mut index = GeodabIndex::new(config);
    for _ in 0..count {
        let id = TrajId::new(reader.get_u32_le()?);
        let len = reader.get_u32_le()? as usize;
        // Divide instead of multiplying: `len * 4` could overflow `usize`
        // on 32-bit targets and let a crafted length through.
        if reader.remaining() / 4 < len {
            return Err(CodecError::Truncated);
        }
        let mut ordered = Vec::with_capacity(len);
        for _ in 0..len {
            ordered.push(reader.get_u32_le()?);
        }
        index.insert_fingerprints(id, Fingerprints::from_ordered(ordered));
    }
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SearchOptions, TrajectoryIndex};
    use geodabs_geo::Point;
    use geodabs_traj::Trajectory;

    fn sample_index() -> GeodabIndex {
        let start = Point::new(51.5074, -0.1278).unwrap();
        let path = |offset: f64| -> Trajectory {
            (0..200)
                .map(|i| start.destination(90.0, offset + i as f64 * 14.0))
                .collect()
        };
        let mut idx = GeodabIndex::new(GeodabConfig::default());
        idx.insert(TrajId::new(0), &path(0.0));
        idx.insert(TrajId::new(1), &path(0.0).reversed());
        idx.insert(TrajId::new(5), &path(10_000.0));
        idx
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = sample_index();
        let bytes = encode(&original);
        let decoded = decode(&bytes).expect("roundtrip");
        assert_eq!(decoded.len(), original.len());
        assert_eq!(decoded.term_count(), original.term_count());
        assert_eq!(*decoded.config(), *original.config());
        for (id, fp) in original.iter_fingerprints() {
            assert_eq!(decoded.fingerprints(id), Some(fp));
        }
    }

    #[test]
    fn decoded_index_answers_queries_identically() {
        let original = sample_index();
        let decoded = decode(&encode(&original)).expect("roundtrip");
        let start = Point::new(51.5074, -0.1278).unwrap();
        let query: Trajectory = (0..200)
            .map(|i| start.destination(90.0, i as f64 * 14.0))
            .collect();
        assert_eq!(
            original.search(&query, &SearchOptions::default()),
            decoded.search(&query, &SearchOptions::default())
        );
    }

    #[test]
    fn encoding_is_deterministic() {
        let idx = sample_index();
        assert_eq!(encode(&idx), encode(&idx));
    }

    #[test]
    fn empty_index_roundtrips() {
        let idx = GeodabIndex::new(GeodabConfig::default());
        let decoded = decode(&encode(&idx)).expect("roundtrip");
        assert_eq!(decoded.len(), 0);
        assert_eq!(decoded.term_count(), 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(decode(b"NOPE").err(), Some(CodecError::BadMagic));
        assert_eq!(decode(b"").err(), Some(CodecError::BadMagic));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = encode(&sample_index()).to_vec();
        bytes[4] = 0xFF;
        bytes[5] = 0xFF;
        assert_eq!(
            decode(&bytes).err(),
            Some(CodecError::UnsupportedVersion(0xFFFF))
        );
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let bytes = encode(&sample_index());
        for cut in [5usize, 7, 10, 15, bytes.len() / 2, bytes.len() - 1] {
            let err = decode(&bytes[..cut]).expect_err("must fail");
            assert!(
                matches!(err, CodecError::Truncated | CodecError::BadMagic),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn corrupted_config_is_rejected() {
        let mut bytes = encode(&sample_index()).to_vec();
        bytes[6] = 0; // normalization depth 0
        assert!(matches!(
            decode(&bytes).err(),
            Some(CodecError::InvalidConfig(_))
        ));
    }

    #[test]
    fn codec_error_display() {
        assert!(CodecError::BadMagic.to_string().contains("magic"));
        assert!(CodecError::Truncated.to_string().contains("truncated"));
        assert!(CodecError::UnsupportedVersion(9).to_string().contains('9'));
    }
}
