use geodabs_core::{Fingerprinter, Fingerprints, GeodabConfig};
use geodabs_traj::{Normalizer, TrajId, Trajectory};
use std::collections::HashMap;

use crate::engine::PostingLists;
use crate::result::finalize;
use crate::{SearchOptions, SearchResult, TrajectoryIndex};

/// The paper's inverted index: terms are geodab fingerprints, posting
/// lists are roaring bitmaps of interned trajectory ids, and ranked
/// retrieval runs on the exact pruned top-k engine of
/// [`crate::engine`] (Section IV-A).
///
/// # Examples
///
/// ```
/// use geodabs_core::GeodabConfig;
/// use geodabs_geo::Point;
/// use geodabs_index::{GeodabIndex, SearchOptions, TrajectoryIndex};
/// use geodabs_traj::{TrajId, Trajectory};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let start = Point::new(51.5074, -0.1278)?;
/// let path: Trajectory =
///     (0..40).map(|i| start.destination(90.0, i as f64 * 90.0)).collect();
///
/// let mut index = GeodabIndex::new(GeodabConfig::default());
/// index.insert(TrajId::new(0), &path);
/// index.insert(TrajId::new(1), &path.reversed());
///
/// // Top-1 ranked retrieval under a distance threshold.
/// let hits = index.search(&path, &SearchOptions::default().max_distance(0.5).limit(1));
/// assert_eq!(hits[0].id, TrajId::new(0));
/// assert_eq!(hits[0].distance, 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GeodabIndex {
    fingerprinter: Fingerprinter,
    engine: PostingLists<u32>,
    fingerprints: HashMap<TrajId, Fingerprints>,
}

impl GeodabIndex {
    /// Creates an empty index with the given fingerprinting configuration.
    pub fn new(config: GeodabConfig) -> GeodabIndex {
        GeodabIndex {
            fingerprinter: Fingerprinter::new(config),
            engine: PostingLists::new(),
            fingerprints: HashMap::new(),
        }
    }

    /// Assembles an index from persisted engine state — the snapshot
    /// loader's direct-materialization path. The codec validates the
    /// parts against each other before calling this.
    pub(crate) fn from_engine_parts(
        config: GeodabConfig,
        engine: PostingLists<u32>,
        fingerprints: HashMap<TrajId, Fingerprints>,
    ) -> GeodabIndex {
        GeodabIndex {
            fingerprinter: Fingerprinter::new(config),
            engine,
            fingerprints,
        }
    }

    /// The query engine's posting state, for the snapshot codec.
    pub(crate) fn engine(&self) -> &PostingLists<u32> {
        &self.engine
    }

    /// The fingerprinting configuration in use.
    pub fn config(&self) -> &GeodabConfig {
        self.fingerprinter.config()
    }

    /// Number of distinct terms (geodabs) in the dictionary.
    pub fn term_count(&self) -> usize {
        self.engine.term_count()
    }

    /// The stored fingerprints of an indexed trajectory.
    pub fn fingerprints(&self, id: TrajId) -> Option<&Fingerprints> {
        self.fingerprints.get(&id)
    }

    /// Fingerprints a query trajectory with the index's pipeline
    /// (normalization + winnowing), e.g. for motif discovery against
    /// stored trajectories.
    pub fn fingerprint_query(&self, query: &Trajectory) -> Fingerprints {
        self.fingerprinter.normalize_and_fingerprint(query)
    }

    /// Indexes a trajectory normalized by the caller-provided normalizer
    /// instead of the default geohash grid — e.g. a
    /// [`geodabs_traj::MapMatchNormalizer`] for the paper's Section V-B
    /// pipeline. Queries against such an index must use
    /// [`GeodabIndex::search_with_normalizer`] with the same normalizer.
    pub fn insert_with_normalizer<N: Normalizer + ?Sized>(
        &mut self,
        normalizer: &N,
        id: TrajId,
        trajectory: &Trajectory,
    ) {
        let fp = self.fingerprinter.fingerprint_with(normalizer, trajectory);
        self.insert_fingerprints(id, fp);
    }

    /// Ranked retrieval with a caller-provided normalizer; see
    /// [`GeodabIndex::insert_with_normalizer`].
    pub fn search_with_normalizer<N: Normalizer + ?Sized>(
        &self,
        normalizer: &N,
        query: &Trajectory,
        options: &SearchOptions,
    ) -> Vec<SearchResult> {
        let fp = self.fingerprinter.fingerprint_with(normalizer, query);
        self.search_fingerprints(&fp, options)
    }

    /// Indexes a batch of trajectories, fingerprinting them across
    /// `threads` scoped worker threads; posting-list insertion stays
    /// single-writer, applied in input order. Produces exactly the index a
    /// sequential [`TrajectoryIndex::insert`] loop over `items` would —
    /// same fingerprints, same postings, same search results.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn insert_batch_threads(&mut self, items: &[(TrajId, &Trajectory)], threads: usize) {
        let fingerprinter = self.fingerprinter;
        let fps = crate::batch::parallel_map(items, threads, |&(id, trajectory)| {
            (id, fingerprinter.normalize_and_fingerprint(trajectory))
        });
        for (id, fp) in fps {
            self.insert_fingerprints(id, fp);
        }
    }

    /// Indexes pre-computed fingerprints under the given id, bypassing
    /// normalization and winnowing. Used by the binary codec on load and
    /// useful whenever fingerprints are computed elsewhere (e.g. on the
    /// client, as the sharding layer does). Re-inserting an existing id
    /// replaces its previous fingerprints.
    pub fn insert_fingerprints(&mut self, id: TrajId, fp: Fingerprints) {
        self.remove(id);
        self.engine.insert(id, fp.set().iter());
        self.fingerprints.insert(id, fp);
    }

    /// Iterates over `(id, fingerprints)` of every indexed trajectory in
    /// unspecified order.
    pub fn iter_fingerprints(&self) -> impl Iterator<Item = (TrajId, &Fingerprints)> {
        self.fingerprints.iter().map(|(&id, fp)| (id, fp))
    }

    /// Ranked retrieval starting from pre-computed query fingerprints,
    /// answered by the pruned top-k engine: overlap counting over roaring
    /// posting lists, rarest query term first, with candidates that cannot
    /// reach the current top-k threshold skipped. Exactly equivalent to
    /// [`GeodabIndex::search_fingerprints_naive`], only faster.
    pub fn search_fingerprints(
        &self,
        query_fp: &Fingerprints,
        options: &SearchOptions,
    ) -> Vec<SearchResult> {
        self.engine.search(query_fp.set().iter(), options)
    }

    /// The reference ranker the engine is proven against: materialize the
    /// full candidate set, compute each bitmap Jaccard distance, sort
    /// everything, then cut. Kept public for equivalence tests and the
    /// `crit_query_engine` benchmark; use
    /// [`GeodabIndex::search_fingerprints`] everywhere else.
    pub fn search_fingerprints_naive(
        &self,
        query_fp: &Fingerprints,
        options: &SearchOptions,
    ) -> Vec<SearchResult> {
        let hits = self
            .engine
            .candidate_ids(query_fp.set().iter())
            .into_iter()
            .map(|id| SearchResult {
                id,
                distance: query_fp.jaccard_distance(&self.fingerprints[&id]),
            })
            .collect();
        finalize(hits, options)
    }
}

impl TrajectoryIndex for GeodabIndex {
    fn insert(&mut self, id: TrajId, trajectory: &Trajectory) {
        let fp = self.fingerprinter.normalize_and_fingerprint(trajectory);
        self.insert_fingerprints(id, fp);
    }

    fn remove(&mut self, id: TrajId) -> bool {
        let Some(fp) = self.fingerprints.remove(&id) else {
            return false;
        };
        self.engine.remove(id, fp.set().iter());
        true
    }

    fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        self.search_fingerprints(&self.fingerprint_query(query), options)
    }

    fn len(&self) -> usize {
        self.fingerprints.len()
    }

    fn ids(&self) -> impl Iterator<Item = TrajId> + '_ {
        self.fingerprints.keys().copied()
    }

    fn insert_batch<'a, I>(&mut self, items: I)
    where
        I: IntoIterator<Item = (TrajId, &'a Trajectory)>,
    {
        let items: Vec<(TrajId, &Trajectory)> = items.into_iter().collect();
        GeodabIndex::insert_batch_threads(self, &items, crate::batch::default_threads());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_geo::Point;

    fn start() -> Point {
        Point::new(51.5074, -0.1278).unwrap()
    }

    fn eastward(n: usize, offset_m: f64) -> Trajectory {
        (0..n)
            .map(|i| start().destination(90.0, offset_m + i as f64 * 90.0))
            .collect()
    }

    fn jittered(t: &Trajectory, bearing: f64, meters: f64) -> Trajectory {
        t.iter().map(|p| p.destination(bearing, meters)).collect()
    }

    fn sample_index() -> GeodabIndex {
        let mut idx = GeodabIndex::new(GeodabConfig::default());
        idx.insert(TrajId::new(0), &eastward(40, 0.0)); // the target
        idx.insert(TrajId::new(1), &eastward(40, 0.0).reversed()); // return path
        idx.insert(TrajId::new(2), &eastward(40, 20_000.0)); // elsewhere
        idx.insert(TrajId::new(3), &jittered(&eastward(40, 0.0), 200.0, 9.0)); // sibling
        idx
    }

    #[test]
    fn insert_and_len() {
        let idx = sample_index();
        assert_eq!(idx.len(), 4);
        assert!(!idx.is_empty());
        assert!(idx.term_count() > 0);
        assert!(idx.fingerprints(TrajId::new(0)).is_some());
        assert!(idx.fingerprints(TrajId::new(9)).is_none());
    }

    #[test]
    fn search_ranks_same_direction_first() {
        let idx = sample_index();
        let query = jittered(&eastward(40, 0.0), 45.0, 7.0);
        let hits = idx.search(&query, &SearchOptions::default());
        assert!(!hits.is_empty());
        // Forward twin and sibling before anything else; reverse and
        // far-away trajectories must not precede them.
        assert!(hits[0].id == TrajId::new(0) || hits[0].id == TrajId::new(3));
        assert!(hits.windows(2).all(|w| w[0].distance <= w[1].distance));
    }

    #[test]
    fn far_away_trajectory_is_not_a_candidate() {
        let idx = sample_index();
        let query = eastward(40, 0.0);
        let candidates = idx
            .engine()
            .candidate_ids(idx.fingerprint_query(&query).set().iter());
        assert!(!candidates.contains(&TrajId::new(2)));
        assert!(candidates.windows(2).all(|w| w[0] < w[1]), "ascending ids");
    }

    #[test]
    fn pruned_engine_matches_naive_ranker() {
        let idx = sample_index();
        for query in [
            eastward(40, 0.0),
            eastward(40, 0.0).reversed(),
            jittered(&eastward(40, 0.0), 45.0, 7.0),
            eastward(40, 20_000.0),
        ] {
            let fp = idx.fingerprint_query(&query);
            for options in [
                SearchOptions::default(),
                SearchOptions::default().limit(1),
                SearchOptions::default().limit(2).max_distance(0.5),
                SearchOptions::default().max_distance(0.0),
            ] {
                assert_eq!(
                    idx.search_fingerprints(&fp, &options),
                    idx.search_fingerprints_naive(&fp, &options),
                    "options {options:?}"
                );
            }
        }
    }

    #[test]
    fn reverse_direction_scores_far() {
        let idx = sample_index();
        let hits = idx.search(&eastward(40, 0.0), &SearchOptions::default());
        let reverse = hits.iter().find(|h| h.id == TrajId::new(1));
        if let Some(r) = reverse {
            assert!(r.distance > 0.9, "reverse at {}", r.distance);
        }
        // Either way, the forward twin is ranked strictly better.
        assert_eq!(hits[0].id, TrajId::new(0));
        assert!(hits[0].distance < 0.1);
    }

    #[test]
    fn threshold_and_limit_apply() {
        let idx = sample_index();
        let query = eastward(40, 0.0);
        let all = idx.search(&query, &SearchOptions::default());
        let tight = idx.search(&query, &SearchOptions::default().max_distance(0.2));
        assert!(tight.len() <= all.len());
        assert!(tight.iter().all(|h| h.distance <= 0.2));
        let limited = idx.search(&query, &SearchOptions::default().limit(1));
        assert_eq!(limited.len(), 1);
        assert_eq!(limited[0].id, all[0].id);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = GeodabIndex::new(GeodabConfig::default());
        assert!(idx.is_empty());
        assert!(idx
            .search(&eastward(40, 0.0), &SearchOptions::default())
            .is_empty());
    }

    #[test]
    fn short_query_produces_no_candidates() {
        let idx = sample_index();
        let hits = idx.search(&eastward(3, 0.0), &SearchOptions::default());
        assert!(hits.is_empty());
    }

    #[test]
    fn reinserting_same_id_does_not_duplicate_postings() {
        let mut idx = GeodabIndex::new(GeodabConfig::default());
        let t = eastward(40, 0.0);
        idx.insert(TrajId::new(0), &t);
        idx.insert(TrajId::new(0), &t);
        assert_eq!(idx.len(), 1);
        let hits = idx.search(&t, &SearchOptions::default());
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn exact_duplicate_has_zero_distance() {
        let idx = sample_index();
        let hits = idx.search(&eastward(40, 0.0), &SearchOptions::default());
        assert_eq!(hits[0].id, TrajId::new(0));
        assert_eq!(hits[0].distance, 0.0);
    }
}
