//! Hill-climbing configuration search (the paper's stated future work).
//!
//! "Automating the discovery of the appropriate parameters is a difficult
//! task, because the number of possible combinations is very large and
//! each configuration requires building and querying an index. A
//! hill-climbing strategy could probably be used to address this problem,
//! and this might be part of our future work." (Section VI-A2)
//!
//! [`hill_climb`] implements that strategy: starting from a seed
//! [`GeodabConfig`], it greedily moves to the best-scoring neighbor in
//! the (normalization depth, k, t) space, where the score of a
//! configuration is the mean R-precision of a geodab index built with it
//! over a labelled sample of queries.

use geodabs_core::GeodabConfig;
use geodabs_traj::{TrajId, Trajectory};
use std::collections::{HashMap, HashSet};

use crate::eval::{precision_at, ranked_ids};
use crate::{GeodabIndex, SearchOptions, TrajectoryIndex};

/// A labelled tuning sample: a corpus plus queries with ground truth.
#[derive(Debug, Clone)]
pub struct TuningSample {
    corpus: Vec<(TrajId, Trajectory)>,
    queries: Vec<(Trajectory, HashSet<TrajId>)>,
}

impl TuningSample {
    /// Builds a sample from a corpus and labelled queries.
    ///
    /// # Panics
    ///
    /// Panics if the corpus or the query set is empty.
    pub fn new(
        corpus: Vec<(TrajId, Trajectory)>,
        queries: Vec<(Trajectory, HashSet<TrajId>)>,
    ) -> TuningSample {
        assert!(!corpus.is_empty(), "tuning needs a non-empty corpus");
        assert!(!queries.is_empty(), "tuning needs labelled queries");
        TuningSample { corpus, queries }
    }

    /// Mean R-precision of a geodab index built with `config` over the
    /// sample — the objective function of the search.
    pub fn score(&self, config: GeodabConfig) -> f64 {
        let mut index = GeodabIndex::new(config);
        for (id, t) in &self.corpus {
            index.insert(*id, t);
        }
        let mut total = 0.0;
        for (query, relevant) in &self.queries {
            let hits = index.search(query, &SearchOptions::default());
            total += precision_at(&ranked_ids(&hits), relevant, relevant.len());
        }
        total / self.queries.len() as f64
    }
}

/// The outcome of a hill-climbing run.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningResult {
    /// The best configuration found.
    pub config: GeodabConfig,
    /// Its score (mean R-precision over the sample).
    pub score: f64,
    /// Number of configurations evaluated (index builds).
    pub evaluations: usize,
    /// The `(config, score)` trace of accepted moves, starting with the
    /// seed.
    pub trace: Vec<(GeodabConfig, f64)>,
}

/// Greedy hill climbing from `start`: at each step, evaluate all valid
/// neighbors (depth ± 2 bits, k ± 1, t ± 2) and move to the best if it
/// improves the score, stopping at a local optimum or after `max_steps`
/// moves. Evaluations are memoized, so the cost is bounded by the number
/// of *distinct* configurations visited.
pub fn hill_climb(sample: &TuningSample, start: GeodabConfig, max_steps: usize) -> TuningResult {
    let mut cache: HashMap<(u8, usize, usize, u8), f64> = HashMap::new();
    let mut evaluations = 0usize;
    let mut eval = |cfg: GeodabConfig, evals: &mut usize| -> f64 {
        let key = (
            cfg.normalization_depth(),
            cfg.k(),
            cfg.t(),
            cfg.prefix_bits(),
        );
        if let Some(&s) = cache.get(&key) {
            return s;
        }
        *evals += 1;
        let s = sample.score(cfg);
        cache.insert(key, s);
        s
    };

    let mut current = start;
    let mut current_score = eval(current, &mut evaluations);
    let mut trace = vec![(current, current_score)];
    for _ in 0..max_steps {
        let mut best_neighbor: Option<(GeodabConfig, f64)> = None;
        for neighbor in neighbors(&current) {
            let s = eval(neighbor, &mut evaluations);
            if best_neighbor.map(|(_, bs)| s > bs).unwrap_or(true) {
                best_neighbor = Some((neighbor, s));
            }
        }
        match best_neighbor {
            Some((cfg, s)) if s > current_score => {
                current = cfg;
                current_score = s;
                trace.push((cfg, s));
            }
            _ => break, // local optimum
        }
    }
    TuningResult {
        config: current,
        score: current_score,
        evaluations,
        trace,
    }
}

/// The valid one-step moves in (depth, k, t) space. The prefix width is
/// held fixed: it is a sharding-geometry decision, not a quality knob
/// (see the `ablation_prefix_width` bench).
fn neighbors(cfg: &GeodabConfig) -> Vec<GeodabConfig> {
    let mut out = Vec::new();
    let depth = cfg.normalization_depth();
    let (k, t) = (cfg.k(), cfg.t());
    let candidates = [
        (depth.saturating_sub(2), k, t),
        (depth.saturating_add(2), k, t),
        (depth, k.saturating_sub(1), t),
        (depth, k + 1, t),
        (depth, k, t.saturating_sub(2)),
        (depth, k, t + 2),
    ];
    for (d, nk, nt) in candidates {
        if !(20..=48).contains(&d) {
            continue;
        }
        if let Ok(c) = GeodabConfig::new(d, nk, nt, cfg.prefix_bits()) {
            if c != *cfg {
                out.push(c);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_geo::Point;

    fn start_point() -> Point {
        Point::new(51.5074, -0.1278).unwrap()
    }

    /// Dense eastward path with deterministic zigzag noise.
    fn noisy_path(offset_m: f64, phase: u64, n: usize) -> Trajectory {
        (0..n)
            .map(|i| {
                let base = start_point().destination(90.0, offset_m + i as f64 * 14.0);
                let lateral = if (i as u64 + phase).is_multiple_of(2) {
                    12.0
                } else {
                    -12.0
                };
                base.destination(0.0, lateral)
            })
            .collect()
    }

    fn sample() -> TuningSample {
        // 4 routes x 3 siblings; queries labelled with their siblings.
        let mut corpus = Vec::new();
        let mut queries = Vec::new();
        for route in 0..4u32 {
            let offset = route as f64 * 3_000.0;
            let mut relevant = HashSet::new();
            for sib in 0..3u32 {
                let id = TrajId::new(route * 3 + sib);
                corpus.push((id, noisy_path(offset, u64::from(sib), 250)));
                relevant.insert(id);
            }
            queries.push((noisy_path(offset, 7, 250), relevant));
        }
        TuningSample::new(corpus, queries)
    }

    #[test]
    fn score_is_high_for_the_default_config() {
        let s = sample();
        let score = s.score(GeodabConfig::default());
        assert!(score > 0.7, "default config scores {score:.2}");
    }

    #[test]
    fn hill_climb_never_degrades_the_seed() {
        let s = sample();
        let seed = GeodabConfig::default();
        let seed_score = s.score(seed);
        let result = hill_climb(&s, seed, 4);
        assert!(result.score >= seed_score);
        assert_eq!(result.trace.first().map(|&(c, _)| c), Some(seed));
        assert_eq!(result.trace.last().map(|&(c, _)| c), Some(result.config));
        // The trace is strictly improving after the seed.
        assert!(result.trace.windows(2).all(|w| w[1].1 > w[0].1));
    }

    #[test]
    fn hill_climb_recovers_from_a_bad_seed() {
        let s = sample();
        // 48-bit normalization is far too deep for 20 m-scale noise.
        let bad = GeodabConfig::builder()
            .normalization_depth(48)
            .build()
            .unwrap();
        let bad_score = s.score(bad);
        let result = hill_climb(&s, bad, 10);
        assert!(
            result.score > bad_score,
            "no improvement from {bad_score:.2}"
        );
        assert!(
            result.config.normalization_depth() < 48,
            "climb should shallow the grid, got {}",
            result.config.normalization_depth()
        );
    }

    #[test]
    fn evaluations_are_memoized() {
        let s = sample();
        let result = hill_climb(&s, GeodabConfig::default(), 3);
        // At most seed + 6 neighbors per accepted step, without repeats.
        assert!(
            result.evaluations <= 1 + 6 * (result.trace.len() + 1),
            "{} evaluations for {} moves",
            result.evaluations,
            result.trace.len()
        );
    }

    #[test]
    fn neighbors_respect_validity() {
        for cfg in neighbors(&GeodabConfig::default()) {
            assert!(cfg.k() >= 2);
            assert!(cfg.t() >= cfg.k());
            assert!((20..=48).contains(&cfg.normalization_depth()));
        }
        // k cannot drop below 2.
        let tight = GeodabConfig::new(36, 2, 2, 16).unwrap();
        assert!(neighbors(&tight)
            .iter()
            .all(|c| c.k() >= 2 && c.t() >= c.k()));
    }

    #[test]
    #[should_panic(expected = "non-empty corpus")]
    fn empty_corpus_panics() {
        let _ = TuningSample::new(vec![], vec![(Trajectory::default(), HashSet::new())]);
    }
}
