use geodabs_traj::TrajId;

/// One ranked retrieval hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// The matching trajectory.
    pub id: TrajId,
    /// Its distance to the query (Jaccard distance over term sets, in
    /// `[0, 1]`); smaller is more similar.
    pub distance: f64,
}

/// Parameters of a ranked search, composed with chainable setters:
///
/// ```
/// use geodabs_index::SearchOptions;
///
/// let options = SearchOptions::default().max_distance(0.4).limit(10);
/// assert_eq!(options.max_distance, 0.4);
/// assert_eq!(options.limit, Some(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchOptions {
    /// The `Δmax` of the paper's problem statement: results farther than
    /// this are dropped. The default (1.0) keeps every candidate that
    /// shares at least one term with the query.
    pub max_distance: f64,
    /// Keep at most this many results (`None` = unbounded).
    pub limit: Option<usize>,
}

impl Default for SearchOptions {
    fn default() -> SearchOptions {
        SearchOptions {
            max_distance: 1.0,
            limit: None,
        }
    }
}

impl SearchOptions {
    /// Sets the distance threshold `Δmax`; results farther than this are
    /// dropped.
    #[must_use]
    pub fn max_distance(mut self, max_distance: f64) -> SearchOptions {
        self.max_distance = max_distance;
        self
    }

    /// Caps the number of results returned.
    #[must_use]
    pub fn limit(mut self, limit: usize) -> SearchOptions {
        self.limit = Some(limit);
        self
    }
}

/// Sorts hits by ascending distance, breaking ties by id, then applies the
/// threshold and limit — the collect-all reference semantics that
/// [`crate::engine::TopK`] reproduces in bounded memory. Kept as the
/// finalization of the naive ranker so equivalence tests compare the
/// pruned engine against an independent implementation.
pub(crate) fn finalize(mut hits: Vec<SearchResult>, options: &SearchOptions) -> Vec<SearchResult> {
    hits.retain(|h| h.distance <= options.max_distance);
    hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
    if let Some(limit) = options.limit {
        hits.truncate(limit);
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(id: u32, d: f64) -> SearchResult {
        SearchResult {
            id: TrajId::new(id),
            distance: d,
        }
    }

    #[test]
    fn finalize_sorts_by_distance_then_id() {
        let out = finalize(
            vec![hit(3, 0.5), hit(1, 0.2), hit(2, 0.2)],
            &SearchOptions::default(),
        );
        assert_eq!(
            out.iter().map(|h| h.id.raw()).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn finalize_applies_threshold_and_limit() {
        let hits = vec![hit(1, 0.1), hit(2, 0.9), hit(3, 0.3)];
        let out = finalize(hits.clone(), &SearchOptions::default().max_distance(0.5));
        assert_eq!(out.len(), 2);
        let out = finalize(hits, &SearchOptions::default().limit(1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id.raw(), 1);
    }

    #[test]
    fn default_options_keep_everything() {
        let o = SearchOptions::default();
        assert_eq!(o.max_distance, 1.0);
        assert!(o.limit.is_none());
    }

    #[test]
    fn setters_chain_and_combine() {
        // The gap the builders close: threshold *and* limit together.
        let hits = vec![hit(1, 0.1), hit(2, 0.2), hit(3, 0.9)];
        let out = finalize(hits, &SearchOptions::default().max_distance(0.5).limit(1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id.raw(), 1);
    }
}
