//! The top-k query engine shared by every index backend.
//!
//! The paper's retrieval loop (Section IV-A) gathers candidates from an
//! inverted index and ranks them by Jaccard distance. This module is the
//! machinery that makes that loop run at traffic scale:
//!
//! * [`IdInterner`] — a `TrajId ↔ u32` interning table assigning *dense*
//!   slot numbers, so posting lists can be [`RoaringBitmap`]s of small
//!   contiguous integers instead of `Vec<TrajId>`,
//! * [`PostingLists`] — roaring posting lists over interned ids with exact
//!   **term-at-a-time overlap counting**: instead of intersecting bitmap
//!   pairs per candidate, one pass over the query's posting lists counts
//!   `|A ∩ B|` for every candidate simultaneously, and
//!   `δ = 1 − overlap / (|A| + |B| − overlap)` falls out in O(1) per
//!   candidate,
//! * [`TopK`] — a bounded heap that keeps the best `limit` hits under the
//!   `(distance, id)` total order while honoring `max_distance`.
//!
//! Query terms are processed **rarest-first** (shortest posting list
//! first). A candidate first encountered at term `i` of `m` can reach an
//! overlap of at most `m − i`, hence a Jaccard distance of at least
//! `1 − (m − i) / |A|`; once that bound exceeds the pruning threshold —
//! `Δmax`, tightened to the k-th best *guaranteed* distance when a result
//! limit is set — new candidates can no longer qualify and the scan flips
//! to an increment-only mode that visits just the postings of already
//! admitted candidates (via [`RoaringBitmap::intersection_for_each`]). The
//! pruned engine is **exact**: it returns precisely the ranking a full
//! scan would (same ids, same distances, ties broken by id), which
//! `crates/index/tests/engine_equivalence.rs` asserts property-based.
//!
//! # Examples
//!
//! ```
//! use geodabs_index::engine::PostingLists;
//! use geodabs_index::SearchOptions;
//! use geodabs_traj::TrajId;
//!
//! let mut lists: PostingLists<u32> = PostingLists::new();
//! lists.insert(TrajId::new(7), [1, 2, 3]);
//! lists.insert(TrajId::new(9), [2, 3, 4]);
//! lists.insert(TrajId::new(4), [40, 41, 42]);
//!
//! // Query {1, 2, 3}: T7 matches exactly, T9 overlaps on {2, 3}.
//! let hits = lists.search([1u32, 2, 3], &SearchOptions::default().limit(2));
//! assert_eq!(hits.len(), 2);
//! assert_eq!(hits[0].id, TrajId::new(7));
//! assert_eq!(hits[0].distance, 0.0);
//! assert_eq!(hits[1].id, TrajId::new(9));
//! assert_eq!(hits[1].distance, 0.5); // 1 − 2/4
//! ```

use geodabs_roaring::RoaringBitmap;
use geodabs_traj::TrajId;
use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{SearchOptions, SearchResult};

// Process-wide scan telemetry: relaxed monotonic counters every search
// bumps, cheap enough to stay unconditional. The serve layer folds them
// into its metrics registry at scrape time; the engine itself has no
// registry dependency.
static SEARCHES: AtomicU64 = AtomicU64::new(0);
static CANDIDATES_SCANNED: AtomicU64 = AtomicU64::new(0);
static CANDIDATES_ADMITTED: AtomicU64 = AtomicU64::new(0);
static PRUNE_CUTOFFS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the engine's process-wide scan counters
/// (see [`telemetry`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineTelemetry {
    /// Searches run since process start.
    pub searches: u64,
    /// Distinct candidates touched across all searches.
    pub candidates_scanned: u64,
    /// Hits admitted into final rankings across all searches.
    pub candidates_admitted: u64,
    /// Searches whose admission pruning cut off new candidates early.
    pub prune_cutoffs: u64,
}

/// Reads the engine's cumulative scan counters. Process-wide and
/// monotonic: every backend sharing this process accumulates into the
/// same totals.
pub fn telemetry() -> EngineTelemetry {
    EngineTelemetry {
        searches: SEARCHES.load(Ordering::Relaxed),
        candidates_scanned: CANDIDATES_SCANNED.load(Ordering::Relaxed),
        candidates_admitted: CANDIDATES_ADMITTED.load(Ordering::Relaxed),
        prune_cutoffs: PRUNE_CUTOFFS.load(Ordering::Relaxed),
    }
}

/// A `TrajId ↔ u32` interning table with slot reuse.
///
/// Posting lists store *dense* slot numbers so that roaring bitmaps stay
/// compact; removing a trajectory frees its slot for the next insertion,
/// keeping the dense space as tight as the live set.
#[derive(Debug, Clone, Default)]
pub struct IdInterner {
    dense_of: HashMap<TrajId, u32>,
    traj_of: Vec<TrajId>,
    free: Vec<u32>,
}

impl IdInterner {
    /// Creates an empty table.
    pub fn new() -> IdInterner {
        IdInterner::default()
    }

    /// Number of interned (live) ids.
    pub fn len(&self) -> usize {
        self.dense_of.len()
    }

    /// Whether no id is interned.
    pub fn is_empty(&self) -> bool {
        self.dense_of.is_empty()
    }

    /// Number of dense slots ever allocated (live + reusable); every dense
    /// id handed out so far is `< capacity()`.
    pub fn capacity(&self) -> usize {
        self.traj_of.len()
    }

    /// The dense slot of `id`, interning it if new. Freed slots are reused
    /// before the table grows.
    pub fn intern(&mut self, id: TrajId) -> u32 {
        if let Some(&dense) = self.dense_of.get(&id) {
            return dense;
        }
        let dense = match self.free.pop() {
            Some(slot) => {
                self.traj_of[slot as usize] = id;
                slot
            }
            None => {
                let slot = self.traj_of.len() as u32;
                self.traj_of.push(id);
                slot
            }
        };
        self.dense_of.insert(id, dense);
        dense
    }

    /// The dense slot of `id`, if interned.
    pub fn dense(&self, id: TrajId) -> Option<u32> {
        self.dense_of.get(&id).copied()
    }

    /// The trajectory id occupying a dense slot.
    ///
    /// # Panics
    ///
    /// Panics if `dense` was never allocated; a freed (vacant) slot
    /// returns its stale id, so only resolve slots known to be live —
    /// e.g. values read from posting bitmaps, which are scrubbed on
    /// release.
    pub fn resolve(&self, dense: u32) -> TrajId {
        self.traj_of[dense as usize]
    }

    /// Frees the slot of `id` for reuse; returns the freed dense slot.
    pub fn release(&mut self, id: TrajId) -> Option<u32> {
        let dense = self.dense_of.remove(&id)?;
        self.free.push(dense);
        Some(dense)
    }

    /// The live `(dense, id)` pairs, ascending by dense slot — the
    /// serializable view of the table the snapshot layer persists.
    pub fn live_slots(&self) -> Vec<(u32, TrajId)> {
        let mut slots: Vec<(u32, TrajId)> = self
            .dense_of
            .iter()
            .map(|(&id, &dense)| (dense, id))
            .collect();
        slots.sort_unstable_by_key(|&(dense, _)| dense);
        slots
    }

    /// Rebuilds a table from its slot capacity and live `(dense, id)`
    /// pairs (as produced by [`IdInterner::live_slots`]): vacant slots
    /// become reusable, live slots resolve exactly as before.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range or non-ascending dense slots and duplicate
    /// trajectory ids — the direct-materialization path must never build
    /// a table [`IdInterner::resolve`] could misbehave on.
    pub fn from_live_slots(
        capacity: u32,
        live: &[(u32, TrajId)],
    ) -> Result<IdInterner, &'static str> {
        if live.len() > capacity as usize {
            return Err("more live slots than capacity");
        }
        let mut traj_of = vec![TrajId::new(0); capacity as usize];
        let mut dense_of = HashMap::with_capacity(live.len());
        let mut last: Option<u32> = None;
        for &(dense, id) in live {
            if dense >= capacity {
                return Err("dense slot out of range");
            }
            if last.is_some_and(|prev| prev >= dense) {
                return Err("dense slots not strictly ascending");
            }
            last = Some(dense);
            traj_of[dense as usize] = id;
            if dense_of.insert(id, dense).is_some() {
                return Err("duplicate trajectory id");
            }
        }
        // Vacant slots are reusable; hand the lowest out first.
        let free: Vec<u32> = (0..capacity)
            .rev()
            .filter(|slot| {
                live.binary_search_by_key(slot, |&(dense, _)| dense)
                    .is_err()
            })
            .collect();
        Ok(IdInterner {
            dense_of,
            traj_of,
            free,
        })
    }
}

/// One entry of a [`TopK`] heap, ordered by `(distance, id)` so the heap's
/// maximum is the worst kept hit.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry(SearchResult);

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &HeapEntry) -> std::cmp::Ordering {
        self.0
            .distance
            .total_cmp(&other.0.distance)
            .then(self.0.id.cmp(&other.0.id))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &HeapEntry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded top-k collector with the exact semantics of the collect-all
/// path: keep hits with `distance ≤ max_distance`, order by ascending
/// `(distance, id)`, and retain at most `limit` of them — but in
/// `O(n log k)` with `O(k)` memory instead of sorting every hit.
///
/// ```
/// use geodabs_index::engine::TopK;
/// use geodabs_index::{SearchOptions, SearchResult};
/// use geodabs_traj::TrajId;
///
/// let mut topk = TopK::new(&SearchOptions::default().limit(2));
/// for (id, d) in [(1, 0.9), (2, 0.1), (3, 0.5), (4, 0.2)] {
///     topk.push(SearchResult { id: TrajId::new(id), distance: d });
/// }
/// let best: Vec<u32> = topk.into_sorted().iter().map(|h| h.id.raw()).collect();
/// assert_eq!(best, vec![2, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    limit: Option<usize>,
    max_distance: f64,
    heap: BinaryHeap<HeapEntry>,
    unbounded: Vec<SearchResult>,
}

impl TopK {
    /// A collector honoring the limit and threshold of `options`.
    pub fn new(options: &SearchOptions) -> TopK {
        TopK {
            limit: options.limit,
            max_distance: options.max_distance,
            heap: BinaryHeap::new(),
            unbounded: Vec::new(),
        }
    }

    /// Offers a hit; it is kept only while it ranks among the best `limit`
    /// seen so far and passes the distance threshold.
    // The negated comparison is deliberate: an unordered (NaN) threshold
    // must keep nothing, matching `retain(|h| h.distance <= max_distance)`.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn push(&mut self, hit: SearchResult) {
        if !(hit.distance <= self.max_distance) {
            return;
        }
        let Some(limit) = self.limit else {
            self.unbounded.push(hit);
            return;
        };
        if limit == 0 {
            return;
        }
        let entry = HeapEntry(hit);
        if self.heap.len() < limit {
            self.heap.push(entry);
        } else if entry < *self.heap.peek().expect("heap is non-empty at capacity") {
            self.heap.pop();
            self.heap.push(entry);
        }
    }

    /// The current pruning threshold: a candidate must score strictly
    /// better than this to change the result set. Equal to `max_distance`
    /// until the collector holds `limit` hits, then the k-th best distance
    /// (which only tightens).
    pub fn threshold(&self) -> f64 {
        match self.limit {
            Some(limit) if self.heap.len() >= limit.max(1) => self
                .heap
                .peek()
                .map_or(self.max_distance, |worst| worst.0.distance),
            _ => self.max_distance,
        }
    }

    /// Number of hits currently held.
    pub fn len(&self) -> usize {
        self.heap.len() + self.unbounded.len()
    }

    /// Whether no hit has been kept.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finishes the collection: the kept hits, ascending by
    /// `(distance, id)`.
    pub fn into_sorted(self) -> Vec<SearchResult> {
        let mut hits = self.unbounded;
        hits.extend(self.heap.into_iter().map(|e| e.0));
        hits.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        if let Some(limit) = self.limit {
            hits.truncate(limit);
        }
        hits
    }
}

/// Roaring posting lists over interned trajectory ids, with the pruned
/// exact top-k ranking described in the [module docs](self).
///
/// The term type `T` is generic so the same engine serves the geodab index
/// (`u32` fingerprints), the geohash baseline (`u64` cells) and any future
/// vocabulary. The engine stores only term *sets* and their sizes; callers
/// keep whatever richer per-trajectory payload they need (ordered
/// fingerprints, cell vectors, …) and replay the same term set into
/// [`PostingLists::remove`].
#[derive(Debug, Clone)]
pub struct PostingLists<T> {
    interner: IdInterner,
    postings: HashMap<T, RoaringBitmap>,
    /// `set_sizes[dense]` is `|B|`, the number of distinct terms of the
    /// trajectory in that slot (stale for vacant slots).
    set_sizes: Vec<u32>,
}

impl<T: Copy + Eq + Hash + Ord> PostingLists<T> {
    /// Creates empty posting lists.
    pub fn new() -> PostingLists<T> {
        PostingLists {
            interner: IdInterner::new(),
            postings: HashMap::new(),
            set_sizes: Vec::new(),
        }
    }

    /// Number of indexed trajectories.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// Whether nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// Number of distinct terms in the dictionary.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// The interning table, e.g. to translate dense posting values.
    pub fn interner(&self) -> &IdInterner {
        &self.interner
    }

    /// The posting bitmap of a term, if any trajectory contains it.
    pub fn posting(&self, term: T) -> Option<&RoaringBitmap> {
        self.postings.get(&term)
    }

    /// Indexes `id` under every term of `terms` (which must be distinct
    /// and must not already be indexed — remove first to replace).
    pub fn insert(&mut self, id: TrajId, terms: impl IntoIterator<Item = T>) {
        debug_assert!(
            self.interner.dense(id).is_none(),
            "insert of an id that is already indexed; remove it first"
        );
        let dense = self.interner.intern(id);
        if self.set_sizes.len() <= dense as usize {
            self.set_sizes.resize(dense as usize + 1, 0);
        }
        let mut distinct = 0u32;
        for term in terms {
            let newly = self.postings.entry(term).or_default().insert(dense);
            debug_assert!(newly, "terms of one trajectory must be distinct");
            distinct += 1;
        }
        self.set_sizes[dense as usize] = distinct;
    }

    /// Removes `id`, scrubbing its dense slot from the posting list of
    /// every term in `terms` (the same set it was inserted under); returns
    /// whether the id was indexed.
    pub fn remove(&mut self, id: TrajId, terms: impl IntoIterator<Item = T>) -> bool {
        let Some(dense) = self.interner.release(id) else {
            return false;
        };
        for term in terms {
            if let Some(list) = self.postings.get_mut(&term) {
                list.remove(dense);
                if list.is_empty() {
                    self.postings.remove(&term);
                }
            }
        }
        self.set_sizes[dense as usize] = 0;
        true
    }

    /// Whether `id` is indexed.
    pub fn contains(&self, id: TrajId) -> bool {
        self.interner.dense(id).is_some()
    }

    /// The dense candidate set of a query: every slot sharing at least one
    /// term with `terms`, as one bitmap union of the posting lists.
    pub fn candidates_bitmap(&self, terms: impl IntoIterator<Item = T>) -> RoaringBitmap {
        let mut union = RoaringBitmap::new();
        for term in terms {
            if let Some(list) = self.postings.get(&term) {
                union |= list;
            }
        }
        union
    }

    /// Distinct ids sharing at least one term with the query, ascending —
    /// straight off the posting bitmaps and the interning table, with no
    /// hash-set round-trip.
    pub fn candidate_ids(&self, terms: impl IntoIterator<Item = T>) -> Vec<TrajId> {
        let mut ids: Vec<TrajId> = self
            .candidates_bitmap(terms)
            .iter()
            .map(|dense| self.interner.resolve(dense))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// The serializable view of the engine's slot state: every live
    /// `(dense, id, set_size)` triple, ascending by dense slot. Together
    /// with [`PostingLists::postings_sorted`] and the slot capacity this
    /// is the full derived state the snapshot layer persists.
    pub fn snapshot_slots(&self) -> Vec<(u32, TrajId, u32)> {
        self.interner
            .live_slots()
            .into_iter()
            .map(|(dense, id)| (dense, id, self.set_sizes[dense as usize]))
            .collect()
    }

    /// Every posting list, ascending by term — the deterministic
    /// serialization order of the snapshot layer.
    pub fn postings_sorted(&self) -> Vec<(T, &RoaringBitmap)> {
        let mut postings: Vec<(T, &RoaringBitmap)> = self
            .postings
            .iter()
            .map(|(&term, list)| (term, list))
            .collect();
        postings.sort_unstable_by_key(|&(term, _)| term);
        postings
    }

    /// Materializes an engine directly from persisted derived state —
    /// the inverse of [`PostingLists::snapshot_slots`] +
    /// [`PostingLists::postings_sorted`] — without replaying a single
    /// insert.
    ///
    /// # Errors
    ///
    /// Rejects structurally inconsistent parts (slots out of range or out
    /// of order, duplicate ids or terms, empty posting lists, postings
    /// referencing vacant slots): a successful load must never panic or
    /// resolve a stale slot at query time.
    pub fn from_snapshot_parts(
        capacity: u32,
        slots: &[(u32, TrajId, u32)],
        posting_lists: Vec<(T, RoaringBitmap)>,
    ) -> Result<PostingLists<T>, &'static str> {
        let live: Vec<(u32, TrajId)> = slots.iter().map(|&(dense, id, _)| (dense, id)).collect();
        let interner = IdInterner::from_live_slots(capacity, &live)?;
        let mut set_sizes = vec![0u32; capacity as usize];
        for &(dense, _, size) in slots {
            set_sizes[dense as usize] = size;
        }
        let live_bitmap: RoaringBitmap = live.iter().map(|&(dense, _)| dense).collect();
        let mut postings: HashMap<T, RoaringBitmap> = HashMap::with_capacity(posting_lists.len());
        for (term, list) in posting_lists {
            if list.is_empty() {
                return Err("empty posting list");
            }
            // Early-exit subset check: bails on the first posting entry
            // that is not a live slot instead of counting the overlap.
            if !list.is_subset(&live_bitmap) {
                return Err("posting references a vacant slot");
            }
            if postings.insert(term, list).is_some() {
                return Err("duplicate posting term");
            }
        }
        Ok(PostingLists {
            interner,
            postings,
            set_sizes,
        })
    }

    /// Exact pruned top-k ranking of the candidates of `query_terms`
    /// (which must be distinct; order is irrelevant).
    ///
    /// Returns precisely what a full candidate scan would: hits ordered by
    /// ascending `(distance, id)`, cut at `options.max_distance` and
    /// `options.limit`. See the [module docs](self) for the algorithm.
    ///
    /// ```
    /// use geodabs_index::engine::PostingLists;
    /// use geodabs_index::SearchOptions;
    /// use geodabs_traj::TrajId;
    ///
    /// let mut lists: PostingLists<u32> = PostingLists::new();
    /// lists.insert(TrajId::new(0), [10, 11, 12]);
    /// lists.insert(TrajId::new(1), [12, 13, 14]);
    ///
    /// // Δmax = 0.5 drops the one-term overlap; the exact twin stays.
    /// let hits = lists.search([10u32, 11, 12], &SearchOptions::default().max_distance(0.5));
    /// assert_eq!(hits.len(), 1);
    /// assert_eq!(hits[0].id, TrajId::new(0));
    /// ```
    pub fn search(
        &self,
        query_terms: impl IntoIterator<Item = T>,
        options: &SearchOptions,
    ) -> Vec<SearchResult> {
        // Partition the query into posting-bearing terms (the only ones
        // that can contribute overlap) while counting |A| over all terms.
        let mut qa = 0u64;
        let mut lists: Vec<&RoaringBitmap> = Vec::new();
        for term in query_terms {
            qa += 1;
            if let Some(list) = self.postings.get(&term) {
                lists.push(list);
            }
        }
        if qa == 0 || lists.is_empty() || options.limit == Some(0) {
            return Vec::new();
        }
        // Rarest-first: the cheapest lists both seed the fewest candidates
        // and push the "remaining terms" upper bound down fastest.
        lists.sort_unstable_by_key(|list| list.len());
        let m = lists.len();

        let posting_entries: u64 = lists.iter().map(|list| list.len()).sum();
        let mut overlap = OverlapCounts::sized_for(self.interner.capacity(), posting_entries);
        let mut touched: Vec<u32> = Vec::new();
        let mut admitted: RoaringBitmap = RoaringBitmap::new();
        let mut admit_new = true;
        let mut threshold = options.max_distance;
        // Tightening the threshold scans every candidate, so do it at
        // exponentially spaced list boundaries: O(candidates · log m)
        // total instead of O(candidates · m). A stale threshold only
        // admits more, never less — exactness is unaffected.
        let mut next_tighten = 1usize;

        for (i, list) in lists.iter().enumerate() {
            if admit_new {
                // A candidate first seen now can still match at most the
                // remaining m − i terms, so its distance is at least
                // 1 − (m − i)/|A| — prune admission once that floor
                // exceeds the threshold.
                let best_new = 1.0 - (m - i) as f64 / qa as f64;
                if best_new > threshold {
                    admit_new = false;
                } else if let Some(limit) = options.limit {
                    if i >= next_tighten && touched.len() > limit {
                        next_tighten = i * 2;
                        let kth = self.kth_guaranteed_distance(&touched, &overlap, qa, limit);
                        if kth < threshold {
                            threshold = kth;
                        }
                        if best_new > threshold {
                            admit_new = false;
                        }
                    }
                }
                if !admit_new {
                    // Freeze the candidate set once; later lists are
                    // scanned through their intersection with it. No
                    // candidates at all means no overlap left to count.
                    admitted = touched.iter().copied().collect();
                    if admitted.is_empty() {
                        break;
                    }
                }
            }
            if admit_new {
                // Non-allocating visitor: bitmap containers batch-decode
                // words straight into the dense accumulator.
                list.for_each(|dense| {
                    if overlap.bump(dense) == 1 {
                        touched.push(dense);
                    }
                });
            } else {
                // Galloping array∩array and word-ANDed bitmap∩bitmap under
                // the hood — no per-chunk buffer, no per-id binary search.
                list.intersection_for_each(&admitted, |dense| {
                    overlap.bump(dense);
                });
            }
        }

        // Exact counts in hand, every score is O(1); the bounded heap
        // keeps the best `limit` under the (distance, id) order.
        let mut topk = TopK::new(options);
        for &dense in &touched {
            let ov = overlap.get(dense) as u64;
            let b = self.set_sizes[dense as usize] as u64;
            let union = qa + b - ov;
            topk.push(SearchResult {
                id: self.interner.resolve(dense),
                distance: 1.0 - ov as f64 / union as f64,
            });
        }
        let hits = topk.into_sorted();
        SEARCHES.fetch_add(1, Ordering::Relaxed);
        CANDIDATES_SCANNED.fetch_add(touched.len() as u64, Ordering::Relaxed);
        CANDIDATES_ADMITTED.fetch_add(hits.len() as u64, Ordering::Relaxed);
        if !admit_new {
            PRUNE_CUTOFFS.fetch_add(1, Ordering::Relaxed);
        }
        hits
    }

    /// The `k`-th smallest *guaranteed* distance among the current
    /// candidates: each candidate with overlap-so-far `c` will finish at
    /// distance at most `1 − c/(|A| + |B| − c)` (overlap only grows), so
    /// at least `k` candidates are guaranteed to beat the returned value —
    /// a valid, strictly-tightening admission threshold.
    fn kth_guaranteed_distance(
        &self,
        touched: &[u32],
        overlap: &OverlapCounts,
        qa: u64,
        k: usize,
    ) -> f64 {
        debug_assert!(k >= 1 && touched.len() > k);
        let mut guaranteed: Vec<f64> = touched
            .iter()
            .map(|&dense| {
                let c = overlap.get(dense) as u64;
                let b = self.set_sizes[dense as usize] as u64;
                1.0 - c as f64 / (qa + b - c) as f64
            })
            .collect();
        let (_, kth, _) = guaranteed.select_nth_unstable_by(k - 1, f64::total_cmp);
        *kth
    }
}

/// Per-query overlap accumulator. Dense queries (posting entries within a
/// constant factor of the corpus) use a flat array for branch-free
/// counting; selective queries use a hash map so per-query work stays
/// proportional to the candidates actually touched instead of Ω(corpus)
/// from zeroing a corpus-sized array.
enum OverlapCounts {
    Dense(Vec<u32>),
    Sparse(HashMap<u32, u32>),
}

impl OverlapCounts {
    /// Picks a representation: `posting_entries` bounds the number of
    /// candidates a query can touch, `capacity` is the corpus slot count.
    fn sized_for(capacity: usize, posting_entries: u64) -> OverlapCounts {
        if posting_entries.saturating_mul(4) >= capacity as u64 {
            OverlapCounts::Dense(vec![0u32; capacity])
        } else {
            OverlapCounts::Sparse(HashMap::with_capacity(posting_entries as usize))
        }
    }

    /// Increments the count of a dense slot; returns the new count (1 on
    /// first touch).
    fn bump(&mut self, dense: u32) -> u32 {
        match self {
            OverlapCounts::Dense(counts) => {
                let c = &mut counts[dense as usize];
                *c += 1;
                *c
            }
            OverlapCounts::Sparse(counts) => {
                let c = counts.entry(dense).or_insert(0);
                *c += 1;
                *c
            }
        }
    }

    /// The current count of a dense slot.
    fn get(&self, dense: u32) -> u32 {
        match self {
            OverlapCounts::Dense(counts) => counts[dense as usize],
            OverlapCounts::Sparse(counts) => counts.get(&dense).copied().unwrap_or(0),
        }
    }
}

impl<T: Copy + Eq + Hash + Ord> Default for PostingLists<T> {
    fn default() -> PostingLists<T> {
        PostingLists::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u32) -> TrajId {
        TrajId::new(raw)
    }

    fn hit(raw: u32, distance: f64) -> SearchResult {
        SearchResult {
            id: id(raw),
            distance,
        }
    }

    #[test]
    fn interner_assigns_dense_slots_and_reuses_freed_ones() {
        let mut it = IdInterner::new();
        assert_eq!(it.intern(id(100)), 0);
        assert_eq!(it.intern(id(7)), 1);
        assert_eq!(it.intern(id(100)), 0, "re-interning is idempotent");
        assert_eq!(it.len(), 2);
        assert_eq!(it.resolve(1), id(7));
        assert_eq!(it.release(id(100)), Some(0));
        assert_eq!(it.release(id(100)), None);
        assert_eq!(it.intern(id(55)), 0, "freed slot is reused");
        assert_eq!(it.capacity(), 2);
        assert_eq!(it.dense(id(7)), Some(1));
        assert_eq!(it.dense(id(100)), None);
    }

    #[test]
    fn topk_keeps_best_under_distance_then_id_order() {
        let mut topk = TopK::new(&SearchOptions::default().limit(2));
        topk.push(hit(5, 0.3));
        topk.push(hit(9, 0.3)); // tie: larger id loses once 2 better exist
        topk.push(hit(1, 0.3));
        topk.push(hit(2, 0.8));
        let out = topk.into_sorted();
        assert_eq!(out, vec![hit(1, 0.3), hit(5, 0.3)]);
    }

    #[test]
    fn topk_honors_max_distance_and_zero_limit() {
        let mut topk = TopK::new(&SearchOptions::default().max_distance(0.5));
        topk.push(hit(1, 0.5)); // boundary kept
        topk.push(hit(2, 0.500001));
        assert_eq!(topk.into_sorted(), vec![hit(1, 0.5)]);

        let mut none = TopK::new(&SearchOptions::default().limit(0));
        none.push(hit(1, 0.0));
        assert!(none.is_empty());
        assert!(none.into_sorted().is_empty());
    }

    #[test]
    fn topk_threshold_tightens_once_full() {
        let mut topk = TopK::new(&SearchOptions::default().limit(2));
        assert_eq!(topk.threshold(), 1.0);
        topk.push(hit(1, 0.2));
        assert_eq!(topk.threshold(), 1.0, "not full yet");
        topk.push(hit(2, 0.4));
        assert_eq!(topk.threshold(), 0.4);
        topk.push(hit(3, 0.1));
        assert_eq!(topk.threshold(), 0.2);
        assert_eq!(topk.len(), 2);
    }

    fn sample() -> PostingLists<u32> {
        let mut lists = PostingLists::new();
        lists.insert(id(0), [1, 2, 3, 4]);
        lists.insert(id(1), [3, 4, 5]);
        lists.insert(id(2), [100, 101]);
        lists
    }

    #[test]
    fn search_scores_by_overlap_counting() {
        let lists = sample();
        let hits = lists.search([1u32, 2, 3, 4], &SearchOptions::default());
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], hit(0, 0.0));
        // overlap {3,4} of |A|=4, |B|=3 → 1 − 2/5.
        assert_eq!(hits[1], hit(1, 1.0 - 2.0 / 5.0));
    }

    #[test]
    fn search_counts_unknown_query_terms_in_qa() {
        let lists = sample();
        // Terms 8 and 9 are not in the dictionary but still enlarge |A|.
        let hits = lists.search([3u32, 4, 8, 9], &SearchOptions::default());
        // id 1: overlap {3,4}, |A|=4, |B|=3 → 1 − 2/5.
        assert_eq!(hits[0], hit(1, 1.0 - 2.0 / 5.0));
        // id 0: overlap {3,4}, |A|=4, |B|=4 → 1 − 2/6.
        assert_eq!(hits[1], hit(0, 1.0 - 2.0 / 6.0));
    }

    #[test]
    fn search_empty_cases() {
        let lists = sample();
        assert!(lists
            .search(std::iter::empty::<u32>(), &SearchOptions::default())
            .is_empty());
        assert!(lists.search([999u32], &SearchOptions::default()).is_empty());
        let empty: PostingLists<u32> = PostingLists::new();
        assert!(empty
            .search([1u32, 2], &SearchOptions::default())
            .is_empty());
    }

    #[test]
    fn remove_scrubs_postings_and_candidates() {
        let mut lists = sample();
        assert!(lists.remove(id(0), [1, 2, 3, 4]));
        assert!(!lists.remove(id(0), [1, 2, 3, 4]));
        assert_eq!(lists.candidate_ids([1u32, 2, 3, 4]), vec![id(1)]);
        assert_eq!(lists.len(), 2);
        // Terms only id 0 carried are gone from the dictionary.
        assert!(lists.posting(1).is_none());
        assert!(lists.posting(3).is_some());
    }

    #[test]
    fn candidate_ids_are_sorted_by_traj_id_despite_dense_order() {
        let mut lists = PostingLists::new();
        // Insert out of TrajId order so dense order ≠ id order.
        lists.insert(id(50), [1, 2]);
        lists.insert(id(3), [2, 3]);
        lists.insert(id(20), [1, 3]);
        assert_eq!(
            lists.candidate_ids([1u32, 2, 3]),
            vec![id(3), id(20), id(50)]
        );
    }

    #[test]
    fn generic_u64_terms_work() {
        let mut lists: PostingLists<u64> = PostingLists::new();
        lists.insert(id(1), [u64::MAX, 1 << 40]);
        lists.insert(id(2), [1 << 40]);
        let hits = lists.search([u64::MAX, 1 << 40], &SearchOptions::default());
        assert_eq!(hits[0].id, id(1));
        assert_eq!(hits[0].distance, 0.0);
        assert_eq!(hits[1], hit(2, 0.5));
    }

    #[test]
    fn limit_prunes_but_stays_exact() {
        // Many candidates sharing a common term, one sharing every term:
        // with limit 1, admission must stop early yet the exact best hit
        // still wins.
        let mut lists = PostingLists::new();
        lists.insert(id(0), [1, 2, 3, 4, 5, 6, 7, 8]);
        for i in 1..200u32 {
            lists.insert(id(i), [1, 1000 + i, 2000 + i]);
        }
        let all = lists.search(1u32..=8, &SearchOptions::default());
        let top = lists.search(1u32..=8, &SearchOptions::default().limit(1));
        assert_eq!(top.len(), 1);
        assert_eq!(top[0], all[0]);
        assert_eq!(top[0], hit(0, 0.0));
    }

    #[test]
    fn selective_query_on_large_corpus_uses_sparse_counts_exactly() {
        // 2 000 indexed trajectories, query touching only 3 of them: the
        // accumulator must take the sparse path (posting entries ≪
        // capacity) and still score exactly.
        let mut lists = PostingLists::new();
        for i in 0..2_000u32 {
            lists.insert(id(i), [100_000 + 3 * i, 100_001 + 3 * i, 100_002 + 3 * i]);
        }
        lists.insert(id(9_000), [1, 2, 3]);
        lists.insert(id(9_001), [2, 3, 4]);
        lists.insert(id(9_002), [3, 4, 5]);
        let hits = lists.search([1u32, 2, 3], &SearchOptions::default().limit(10));
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0], hit(9_000, 0.0));
        assert_eq!(hits[1], hit(9_001, 0.5));
        assert_eq!(hits[2], hit(9_002, 1.0 - 1.0 / 5.0));
    }

    #[test]
    fn interner_live_slots_roundtrip_including_vacancies() {
        let mut it = IdInterner::new();
        it.intern(id(100));
        it.intern(id(7));
        it.intern(id(55));
        it.release(id(7));
        let live = it.live_slots();
        assert_eq!(live, vec![(0, id(100)), (2, id(55))]);
        let mut rebuilt = IdInterner::from_live_slots(it.capacity() as u32, &live).unwrap();
        assert_eq!(rebuilt.len(), 2);
        assert_eq!(rebuilt.capacity(), 3);
        assert_eq!(rebuilt.dense(id(100)), Some(0));
        assert_eq!(rebuilt.dense(id(55)), Some(2));
        assert_eq!(rebuilt.dense(id(7)), None);
        // The vacant slot is handed out again before the table grows.
        assert_eq!(rebuilt.intern(id(9)), 1);
    }

    #[test]
    fn from_live_slots_rejects_malformed_tables() {
        assert!(IdInterner::from_live_slots(1, &[(0, id(1)), (1, id(2))]).is_err());
        assert!(IdInterner::from_live_slots(4, &[(5, id(1))]).is_err());
        assert!(IdInterner::from_live_slots(4, &[(1, id(1)), (0, id(2))]).is_err());
        assert!(IdInterner::from_live_slots(4, &[(0, id(1)), (1, id(1))]).is_err());
        assert!(IdInterner::from_live_slots(0, &[]).is_ok());
    }

    #[test]
    fn snapshot_parts_roundtrip_the_engine_exactly() {
        let mut lists = sample();
        lists.remove(id(1), [3, 4, 5]);
        let capacity = lists.interner().capacity() as u32;
        let slots = lists.snapshot_slots();
        let postings: Vec<(u32, RoaringBitmap)> = lists
            .postings_sorted()
            .into_iter()
            .map(|(term, list)| (term, list.clone()))
            .collect();
        let rebuilt = PostingLists::from_snapshot_parts(capacity, &slots, postings).unwrap();
        assert_eq!(rebuilt.len(), lists.len());
        assert_eq!(rebuilt.term_count(), lists.term_count());
        for query in [vec![1u32, 2, 3, 4], vec![100, 101], vec![9]] {
            for options in [SearchOptions::default(), SearchOptions::default().limit(1)] {
                assert_eq!(
                    rebuilt.search(query.iter().copied(), &options),
                    lists.search(query.iter().copied(), &options)
                );
            }
        }
    }

    #[test]
    fn snapshot_parts_reject_inconsistent_state() {
        let slots = [(0u32, id(1), 2u32)];
        // Empty posting list.
        assert!(
            PostingLists::from_snapshot_parts(1, &slots, vec![(5u32, RoaringBitmap::new())])
                .is_err()
        );
        // Posting referencing a vacant slot.
        let stray: RoaringBitmap = [3u32].into_iter().collect();
        assert!(PostingLists::from_snapshot_parts(4, &slots, vec![(5u32, stray)]).is_err());
        // Duplicate term.
        let a: RoaringBitmap = [0u32].into_iter().collect();
        assert!(
            PostingLists::from_snapshot_parts(1, &slots, vec![(5u32, a.clone()), (5u32, a)])
                .is_err()
        );
    }

    #[test]
    fn max_distance_prunes_but_stays_exact() {
        let mut lists = PostingLists::new();
        lists.insert(id(0), [1, 2, 3, 4]);
        lists.insert(id(1), [1, 900, 901, 902]);
        let tight = lists.search([1u32, 2, 3, 4], &SearchOptions::default().max_distance(0.3));
        assert_eq!(tight, vec![hit(0, 0.0)]);
    }
}
