//! Retrieval-effectiveness measures: precision, recall, PR curves, ROC
//! curves and AUC (Sections V-C and VI-D of the paper; Figures 8, 12, 13).
//!
//! All functions take a *ranked* result list (best first) and the set of
//! relevant ids. ROC/AUC additionally need the corpus size, since true
//! negatives are everything never retrieved.

use geodabs_traj::TrajId;
use std::collections::HashSet;

use crate::SearchResult;

/// A point of a precision/recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Fraction of relevant items retrieved so far.
    pub recall: f64,
    /// Fraction of retrieved items that are relevant so far.
    pub precision: f64,
}

/// A point of a receiver-operating-characteristic curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// `1 − specificity = fp / (fp + tn)`.
    pub false_positive_rate: f64,
    /// Sensitivity (= recall) `tp / (tp + fn)`.
    pub true_positive_rate: f64,
}

/// Extracts the ranked ids of a result list.
pub fn ranked_ids(results: &[SearchResult]) -> Vec<TrajId> {
    results.iter().map(|r| r.id).collect()
}

/// Precision at cutoff `k` (`P@k`). Returns 1.0 for `k == 0`.
pub fn precision_at(ranked: &[TrajId], relevant: &HashSet<TrajId>, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let k = k.min(ranked.len());
    if k == 0 {
        return 0.0;
    }
    let tp = ranked[..k]
        .iter()
        .filter(|id| relevant.contains(id))
        .count();
    tp as f64 / k as f64
}

/// Recall at cutoff `k` (`R@k`). Returns 1.0 if there is nothing relevant.
pub fn recall_at(ranked: &[TrajId], relevant: &HashSet<TrajId>, k: usize) -> f64 {
    if relevant.is_empty() {
        return 1.0;
    }
    let k = k.min(ranked.len());
    let tp = ranked[..k]
        .iter()
        .filter(|id| relevant.contains(id))
        .count();
    tp as f64 / relevant.len() as f64
}

/// The precision/recall curve: one point per rank prefix `1..=n`.
pub fn pr_curve(ranked: &[TrajId], relevant: &HashSet<TrajId>) -> Vec<PrPoint> {
    let mut out = Vec::with_capacity(ranked.len());
    let mut tp = 0usize;
    for (i, id) in ranked.iter().enumerate() {
        if relevant.contains(id) {
            tp += 1;
        }
        out.push(PrPoint {
            recall: if relevant.is_empty() {
                1.0
            } else {
                tp as f64 / relevant.len() as f64
            },
            precision: tp as f64 / (i + 1) as f64,
        });
    }
    out
}

/// Averages several PR curves onto a fixed recall grid (11-point
/// interpolated average, the standard way to aggregate per-query curves
/// into one plot like Figures 8 and 12).
///
/// Interpolated precision at recall `r` is the max precision at any
/// recall ≥ `r` (zero when the query never reaches `r`).
pub fn average_pr_curve(curves: &[Vec<PrPoint>], grid_points: usize) -> Vec<PrPoint> {
    assert!(grid_points >= 2, "need at least two grid points");
    let mut out = Vec::with_capacity(grid_points);
    for g in 0..grid_points {
        let r = g as f64 / (grid_points - 1) as f64;
        let mut sum = 0.0;
        for curve in curves {
            let p = curve
                .iter()
                .filter(|pt| pt.recall >= r - 1e-12)
                .map(|pt| pt.precision)
                .fold(0.0f64, f64::max);
            sum += p;
        }
        out.push(PrPoint {
            recall: r,
            precision: if curves.is_empty() {
                0.0
            } else {
                sum / curves.len() as f64
            },
        });
    }
    out
}

/// The ROC curve over the ranked list: one point per rank prefix, plus the
/// origin. Items never retrieved count as negatives-at-rest, so the curve
/// ends at `(fp_seen / negatives, recall_reached)` rather than (1, 1) when
/// the ranked list does not exhaust the corpus.
pub fn roc_curve(
    ranked: &[TrajId],
    relevant: &HashSet<TrajId>,
    corpus_size: usize,
) -> Vec<RocPoint> {
    let negatives = corpus_size.saturating_sub(relevant.len());
    let mut out = Vec::with_capacity(ranked.len() + 1);
    out.push(RocPoint {
        false_positive_rate: 0.0,
        true_positive_rate: 0.0,
    });
    let (mut tp, mut fp) = (0usize, 0usize);
    for id in ranked {
        if relevant.contains(id) {
            tp += 1;
        } else {
            fp += 1;
        }
        out.push(RocPoint {
            false_positive_rate: if negatives == 0 {
                0.0
            } else {
                fp as f64 / negatives as f64
            },
            true_positive_rate: if relevant.is_empty() {
                1.0
            } else {
                tp as f64 / relevant.len() as f64
            },
        });
    }
    out
}

/// Area under the ROC curve, equal to the probability that a random
/// relevant item ranks above a random irrelevant one (Mann–Whitney).
///
/// Items missing from the ranked list are treated as tied at the bottom:
/// a retrieved relevant beats every unretrieved irrelevant, and
/// unretrieved relevant/irrelevant pairs contribute ½.
pub fn auc(ranked: &[TrajId], relevant: &HashSet<TrajId>, corpus_size: usize) -> f64 {
    let rel_total = relevant.len();
    let irr_total = corpus_size.saturating_sub(rel_total);
    if rel_total == 0 || irr_total == 0 {
        return 1.0;
    }
    let ranked_set: HashSet<TrajId> = ranked.iter().copied().collect();
    let rel_in_list = ranked.iter().filter(|id| relevant.contains(id)).count();
    let irr_in_list = ranked.len() - rel_in_list;
    debug_assert_eq!(ranked_set.len(), ranked.len(), "ranked list must be unique");
    let rel_out = rel_total - rel_in_list;
    let irr_out = irr_total - irr_in_list;
    // Pairs won by relevant items inside the list.
    let mut wins = 0.0f64;
    let mut irr_seen = 0usize;
    for id in ranked {
        if relevant.contains(id) {
            let irr_after_in_list = irr_in_list - irr_seen;
            wins += (irr_after_in_list + irr_out) as f64;
        } else {
            irr_seen += 1;
        }
    }
    // Unretrieved relevant vs unretrieved irrelevant: ties.
    wins += 0.5 * rel_out as f64 * irr_out as f64;
    wins / (rel_total as f64 * irr_total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<TrajId> {
        v.iter().map(|&i| TrajId::new(i)).collect()
    }

    fn rel(v: &[u32]) -> HashSet<TrajId> {
        v.iter().map(|&i| TrajId::new(i)).collect()
    }

    #[test]
    fn precision_and_recall_at_k() {
        let ranked = ids(&[1, 9, 2, 8]);
        let relevant = rel(&[1, 2, 3]);
        assert_eq!(precision_at(&ranked, &relevant, 1), 1.0);
        assert_eq!(precision_at(&ranked, &relevant, 2), 0.5);
        assert!((precision_at(&ranked, &relevant, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(recall_at(&ranked, &relevant, 1), 1.0 / 3.0);
        assert_eq!(recall_at(&ranked, &relevant, 4), 2.0 / 3.0);
        // k beyond the list clamps.
        assert_eq!(recall_at(&ranked, &relevant, 100), 2.0 / 3.0);
        assert_eq!(precision_at(&ranked, &relevant, 0), 1.0);
    }

    #[test]
    fn pr_curve_perfect_ranking() {
        let ranked = ids(&[1, 2, 9, 8]);
        let relevant = rel(&[1, 2]);
        let curve = pr_curve(&ranked, &relevant);
        assert_eq!(curve.len(), 4);
        assert_eq!(
            curve[0],
            PrPoint {
                recall: 0.5,
                precision: 1.0
            }
        );
        assert_eq!(
            curve[1],
            PrPoint {
                recall: 1.0,
                precision: 1.0
            }
        );
        assert_eq!(curve[3].precision, 0.5);
        assert_eq!(curve[3].recall, 1.0);
    }

    #[test]
    fn pr_curve_interleaved_directions_plateaus_at_half() {
        // The geohash failure mode of Figure 12: relevant and irrelevant
        // alternate perfectly, so precision hovers at 0.5.
        let ranked = ids(&[1, 11, 2, 12, 3, 13, 4, 14]);
        let relevant = rel(&[1, 2, 3, 4]);
        let curve = pr_curve(&ranked, &relevant);
        let last = curve.last().unwrap();
        assert_eq!(last.recall, 1.0);
        assert_eq!(last.precision, 0.5);
    }

    #[test]
    fn average_pr_curve_grid_and_interpolation() {
        let a = pr_curve(&ids(&[1, 9]), &rel(&[1]));
        let b = pr_curve(&ids(&[9, 1]), &rel(&[1]));
        let avg = average_pr_curve(&[a, b], 11);
        assert_eq!(avg.len(), 11);
        assert_eq!(avg[0].recall, 0.0);
        assert_eq!(avg[10].recall, 1.0);
        // Query a has interpolated precision 1.0 at recall 1, query b 0.5.
        assert!((avg[10].precision - 0.75).abs() < 1e-12);
        // Monotone recall grid.
        assert!(avg.windows(2).all(|w| w[0].recall < w[1].recall));
    }

    #[test]
    fn average_pr_curve_empty_input() {
        let avg = average_pr_curve(&[], 5);
        assert_eq!(avg.len(), 5);
        assert!(avg.iter().all(|p| p.precision == 0.0));
    }

    #[test]
    fn roc_curve_monotone_and_anchored() {
        let ranked = ids(&[1, 9, 2, 8]);
        let relevant = rel(&[1, 2]);
        let roc = roc_curve(&ranked, &relevant, 10);
        assert_eq!(roc[0].false_positive_rate, 0.0);
        assert_eq!(roc[0].true_positive_rate, 0.0);
        assert!(roc.windows(2).all(|w| {
            w[0].false_positive_rate <= w[1].false_positive_rate
                && w[0].true_positive_rate <= w[1].true_positive_rate
        }));
        let last = roc.last().unwrap();
        assert_eq!(last.true_positive_rate, 1.0);
        assert!((last.false_positive_rate - 2.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let relevant = rel(&[1, 2]);
        // Perfect: both relevant retrieved first, corpus of 10.
        assert_eq!(auc(&ids(&[1, 2]), &relevant, 10), 1.0);
        // Anti-perfect: the 8 irrelevant all retrieved before.
        let mut bad: Vec<u32> = (10..18).collect();
        bad.extend([1, 2]);
        assert_eq!(auc(&ids(&bad), &relevant, 10), 0.0);
    }

    #[test]
    fn auc_unretrieved_ties_are_half() {
        // Nothing retrieved: AUC must be 0.5 (pure chance).
        let relevant = rel(&[1, 2]);
        assert_eq!(auc(&[], &relevant, 10), 0.5);
    }

    #[test]
    fn auc_partial_retrieval() {
        // One relevant retrieved first, one relevant never retrieved,
        // corpus 4 (2 relevant + 2 irrelevant), nothing else retrieved.
        let relevant = rel(&[1, 2]);
        let a = auc(&ids(&[1]), &relevant, 4);
        // Pairs: (1 beats both irrelevants) = 2 wins; (2 ties both) = 1.
        // AUC = (2 + 1) / 4 = 0.75.
        assert!((a - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_cases() {
        assert_eq!(auc(&ids(&[1]), &rel(&[]), 10), 1.0);
        assert_eq!(auc(&ids(&[1]), &rel(&[1]), 1), 1.0);
    }

    #[test]
    fn auc_matches_roc_trapezoid_when_list_is_complete() {
        // When the ranked list covers the whole corpus, the Mann–Whitney
        // AUC equals the trapezoidal area under the ROC curve.
        let ranked = ids(&[1, 9, 2, 8, 3, 7]);
        let relevant = rel(&[1, 2, 3]);
        let roc = roc_curve(&ranked, &relevant, 6);
        let mut area = 0.0;
        for w in roc.windows(2) {
            let dx = w[1].false_positive_rate - w[0].false_positive_rate;
            area += dx * (w[0].true_positive_rate + w[1].true_positive_rate) / 2.0;
        }
        let a = auc(&ranked, &relevant, 6);
        assert!((a - area).abs() < 1e-12, "{a} vs {area}");
    }

    #[test]
    fn ranked_ids_extracts_in_order() {
        let results = vec![
            SearchResult {
                id: TrajId::new(3),
                distance: 0.1,
            },
            SearchResult {
                id: TrajId::new(1),
                distance: 0.2,
            },
        ];
        assert_eq!(ranked_ids(&results), ids(&[3, 1]));
    }
}
