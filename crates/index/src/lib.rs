//! Inverted trajectory indexes and retrieval evaluation.
//!
//! This crate assembles the paper's retrieval pipeline (Sections III-A and
//! IV-A): trajectories are normalized, fingerprinted and posted into an
//! inverted index whose terms are geodabs; queries are answered by the
//! exact pruned top-k engine of the [`engine`] module — roaring posting
//! lists over interned ids, term-at-a-time overlap counting processed
//! rarest-first, upper-bound pruning against the current top-k threshold,
//! and a bounded result heap.
//!
//! Two index families are provided:
//!
//! * [`GeodabIndex`] — the paper's contribution,
//! * [`GeohashIndex`] — the baseline using plain geohash cells as terms,
//!   which cannot discriminate direction (Figure 12's 0.5-precision
//!   plateau); it runs on the same engine with `u64` cell terms,
//!
//! plus the [`eval`] module computing precision/recall curves, ROC curves
//! and AUC — the measures of Figures 8, 12 and 13.
//!
//! # Examples
//!
//! ```
//! use geodabs_core::GeodabConfig;
//! use geodabs_geo::Point;
//! use geodabs_index::{GeodabIndex, SearchOptions, TrajectoryIndex};
//! use geodabs_traj::{TrajId, Trajectory};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let start = Point::new(51.5074, -0.1278)?;
//! let path: Trajectory = (0..40).map(|i| start.destination(90.0, i as f64 * 90.0)).collect();
//! let noisy: Trajectory = path.iter().map(|p| p.destination(10.0, 6.0)).collect();
//!
//! let mut index = GeodabIndex::new(GeodabConfig::default());
//! index.insert(TrajId::new(0), &path);
//! index.insert(TrajId::new(1), &path.reversed());
//!
//! let hits = index.search(&noisy, &SearchOptions::default());
//! // The same-direction trajectory ranks first.
//! assert_eq!(hits[0].id, TrajId::new(0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod boolean;
pub mod codec;
pub mod engine;
pub mod eval;
mod geodab_index;
mod geohash_index;
mod result;
pub mod store;
pub mod tuning;

pub use boolean::{MatchLevel, PositionalIndex};
pub use engine::{telemetry as engine_telemetry, EngineTelemetry};
pub use geodab_index::GeodabIndex;
pub use geohash_index::GeohashIndex;
pub use result::{SearchOptions, SearchResult};

use geodabs_traj::{TrajId, Trajectory};

/// Common interface of the trajectory indexes, so evaluation, cluster
/// fan-out and future backends can be generic over the index family.
pub trait TrajectoryIndex {
    /// Indexes a trajectory under the given id (raw, un-normalized input;
    /// the index applies its own normalization). Re-inserting an existing
    /// id replaces its previous contents.
    fn insert(&mut self, id: TrajId, trajectory: &Trajectory);

    /// Removes a trajectory and all its postings; returns whether the id
    /// was present. A removed id can be re-inserted later.
    fn remove(&mut self, id: TrajId) -> bool;

    /// Ranked retrieval: trajectories similar to `query`, ordered by
    /// ascending distance (ties by id), subject to `options`.
    fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult>;

    /// Number of indexed trajectories.
    fn len(&self) -> usize;

    /// The ids of every indexed trajectory, in unspecified order.
    fn ids(&self) -> impl Iterator<Item = TrajId> + '_;

    /// Indexes a batch of trajectories. The default implementation inserts
    /// sequentially; every workspace backend overrides it to fingerprint
    /// the batch across scoped worker threads (posting-list insertion
    /// stays single-writer), producing exactly the index a sequential
    /// insert loop would.
    fn insert_batch<'a, I>(&mut self, items: I)
    where
        I: IntoIterator<Item = (TrajId, &'a Trajectory)>,
        Self: Sized,
    {
        for (id, trajectory) in items {
            self.insert(id, trajectory);
        }
    }

    /// Ranked retrieval for a batch of queries, answered in parallel over
    /// the shared read-only engine state with one worker per available
    /// core ([`batch::default_threads`]). Returns exactly
    /// `queries.iter().map(|q| self.search(q, options)).collect()` — the
    /// per-query rankings in query order, each bit-identical to a
    /// standalone [`TrajectoryIndex::search`] call.
    fn search_batch(
        &self,
        queries: &[Trajectory],
        options: &SearchOptions,
    ) -> Vec<Vec<SearchResult>>
    where
        Self: Sized + Sync,
    {
        self.search_batch_threads(queries, options, batch::default_threads())
    }

    /// [`TrajectoryIndex::search_batch`] with an explicit worker-thread
    /// count, for benchmarking thread scaling and for callers managing
    /// their own core budget.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    fn search_batch_threads(
        &self,
        queries: &[Trajectory],
        options: &SearchOptions,
        threads: usize,
    ) -> Vec<Vec<SearchResult>>
    where
        Self: Sized + Sync,
    {
        batch::parallel_map(queries, threads, |query| self.search(query, options))
    }

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
