//! The workspace-wide snapshot container: a versioned, checksummed,
//! sectioned binary format (`GDAB` v2) shared by every index backend.
//!
//! A snapshot is a sequence of independently checksummed *sections*, each
//! holding one piece of serialized **derived engine state** (posting
//! bitmaps in their [roaring wire form](geodabs_roaring::RoaringBitmap::serialize_into),
//! interner tables, per-set cardinalities), so loading is a direct
//! materialization instead of an O(corpus) rebuild. Layout, all
//! little-endian:
//!
//! ```text
//! magic    b"GDAB"                                  4 bytes
//! version  u16 = 2                                  2 bytes
//! backend  u8   (1 = geodab, 2 = geohash, 3 = cluster)
//! count    u32                                      number of sections
//! section* id u32, len u64, crc32 u32, payload
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload; [`SnapshotReader::parse`]
//! verifies every section before any backend code touches a byte, so
//! bit-rot surfaces as [`SnapshotError::ChecksumMismatch`] rather than a
//! quietly wrong index. Version 1 (the original `GeodabIndex`-only codec
//! storing raw fingerprint sequences) remains decodable through
//! [`crate::codec::decode`], which switches on the version field.
//!
//! The [`Persist`] trait is the one entry point: every backend —
//! [`crate::GeodabIndex`], [`crate::GeohashIndex`] and the cluster index —
//! implements `to_snapshot`/`from_snapshot` over this container, and gets
//! file-level `save_to`/`load_from` for free.

use geodabs_core::GeodabError;
use std::error::Error;
use std::fmt;
use std::path::Path;

/// The file magic shared by every snapshot version.
pub const MAGIC: &[u8; 4] = b"GDAB";

/// The sectioned container format this module reads and writes.
pub const VERSION: u16 = 2;

/// The legacy single-blob `GeodabIndex` format (raw fingerprint
/// sequences, engine state rebuilt on load).
pub const VERSION_V1: u16 = 1;

/// Which index backend a snapshot holds, stored in the container header
/// so a load into the wrong type fails with
/// [`SnapshotError::WrongBackend`] instead of a section-soup error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// A [`crate::GeodabIndex`] snapshot.
    Geodab,
    /// A [`crate::GeohashIndex`] snapshot.
    Geohash,
    /// A cluster snapshot: router manifest plus per-node segments.
    Cluster,
    /// A single shard node's standalone snapshot: the node-local slice
    /// of a cluster, bootable by a shard server on its own.
    Node,
}

impl BackendKind {
    /// The header tag byte.
    pub fn tag(self) -> u8 {
        match self {
            BackendKind::Geodab => 1,
            BackendKind::Geohash => 2,
            BackendKind::Cluster => 3,
            BackendKind::Node => 4,
        }
    }

    /// Parses a header tag byte.
    pub fn from_tag(tag: u8) -> Option<BackendKind> {
        match tag {
            1 => Some(BackendKind::Geodab),
            2 => Some(BackendKind::Geohash),
            3 => Some(BackendKind::Cluster),
            4 => Some(BackendKind::Node),
            _ => None,
        }
    }

    /// The backend's stable name (used by the CLI).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Geodab => "geodab",
            BackendKind::Geohash => "geohash",
            BackendKind::Cluster => "cluster",
            BackendKind::Node => "node",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds a section id from a four-character code.
pub const fn section_id(name: &[u8; 4]) -> u32 {
    u32::from_le_bytes(*name)
}

/// Backend configuration (`GeodabConfig` or cell depth).
pub const SEC_CONFIG: u32 = section_id(b"CONF");
/// Interner table: live `(dense, id)` slots plus capacity.
pub const SEC_SLOTS: u32 = section_id(b"SLOT");
/// Posting lists: term dictionary with roaring bitmaps of dense slots.
pub const SEC_POSTINGS: u32 = section_id(b"POST");
/// Ordered fingerprint sequences per trajectory.
pub const SEC_FINGERPRINTS: u32 = section_id(b"FPRS");
/// Distinct cell sets per trajectory (geohash backend).
pub const SEC_CELLS: u32 = section_id(b"CELL");
/// The coordinator's indexed-id set (cluster backend).
pub const SEC_IDSET: u32 = section_id(b"IDST");
/// The durability watermark: the write-ahead-log sequence number (u64)
/// this snapshot covers. Optional — plain snapshots omit it, and old
/// snapshots without it read as watermark `None`. See [`watermark`].
pub const SEC_WATERMARK: u32 = section_id(b"WMRK");

/// The section id of cluster node `i`'s segment. Node indexes are bounded
/// well below the offset, so these never collide with the ASCII
/// four-character codes above.
pub fn node_section_id(node: usize) -> u32 {
    debug_assert!(node <= MAX_NODE_SECTIONS, "node index out of range");
    section_id(b"NOD\0") + node as u32
}

/// The largest node index [`node_section_id`] accepts.
pub const MAX_NODE_SECTIONS: usize = 0x00FF_FFFF;

/// A printable rendering of a section id: the four-character code when it
/// is one, a node label for node segments, hex otherwise.
pub fn section_name(id: u32) -> String {
    let base = section_id(b"NOD\0");
    if (base..=base + MAX_NODE_SECTIONS as u32).contains(&id) {
        return format!("NODE{}", id - base);
    }
    let bytes = id.to_le_bytes();
    if bytes.iter().all(|b| b.is_ascii_graphic()) {
        String::from_utf8_lossy(&bytes).into_owned()
    } else {
        format!("{id:#010x}")
    }
}

/// Errors produced by the bounds-checked [`Cursor`] alone — the part of
/// the decoding machinery shared between the snapshot layer and the
/// `geodabs-serve` wire protocol, which embed cursor reads in different
/// outer error types. Converts into [`SnapshotError`] with `?`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadError {
    /// The input ended in the middle of a record.
    Truncated,
    /// A payload is structurally invalid.
    Corrupt(&'static str),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Truncated => write!(f, "truncated input"),
            ReadError::Corrupt(what) => write!(f, "corrupt input: {what}"),
        }
    }
}

impl Error for ReadError {}

impl From<ReadError> for SnapshotError {
    fn from(e: ReadError) -> SnapshotError {
        match e {
            ReadError::Truncated => SnapshotError::Truncated,
            ReadError::Corrupt(what) => SnapshotError::Corrupt(what),
        }
    }
}

impl From<geodabs_roaring::WireError> for ReadError {
    fn from(e: geodabs_roaring::WireError) -> ReadError {
        match e {
            geodabs_roaring::WireError::Truncated => ReadError::Truncated,
            geodabs_roaring::WireError::Corrupt(what) => ReadError::Corrupt(what),
        }
    }
}

/// Errors reading a snapshot (or writing one to disk).
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
    /// The input does not start with the `GDAB` magic.
    BadMagic,
    /// The format version is not one this library understands.
    UnsupportedVersion(u16),
    /// The input ended in the middle of a record.
    Truncated,
    /// A section's payload does not match its stored CRC-32.
    ChecksumMismatch {
        /// The corrupted section.
        section: u32,
    },
    /// The snapshot holds a different backend than the one loading it.
    WrongBackend {
        /// The backend of the loading type.
        expected: BackendKind,
        /// The tag byte found in the header.
        found: u8,
    },
    /// The backend tag byte is not one this library knows (loads that
    /// accept *any* backend report this instead of
    /// [`SnapshotError::WrongBackend`]).
    UnknownBackend(u8),
    /// A required section is absent.
    MissingSection(u32),
    /// The same section id appears twice.
    DuplicateSection(u32),
    /// A section payload is structurally invalid.
    Corrupt(&'static str),
    /// The stored configuration fails validation.
    InvalidConfig(GeodabError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "input is not a geodabs snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            SnapshotError::Truncated => write!(f, "truncated snapshot data"),
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {}", section_name(*section))
            }
            SnapshotError::WrongBackend { expected, found } => {
                match BackendKind::from_tag(*found) {
                    Some(found) => write!(f, "snapshot holds a {found} index, expected {expected}"),
                    None => write!(f, "unknown backend tag {found}, expected {expected}"),
                }
            }
            SnapshotError::UnknownBackend(tag) => write!(f, "unknown backend tag {tag}"),
            SnapshotError::MissingSection(id) => {
                write!(f, "snapshot is missing section {}", section_name(*id))
            }
            SnapshotError::DuplicateSection(id) => {
                write!(f, "snapshot repeats section {}", section_name(*id))
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::InvalidConfig(e) => write!(f, "invalid stored configuration: {e}"),
        }
    }
}

impl Error for SnapshotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::InvalidConfig(e) => Some(e),
            _ => None,
        }
    }
}

impl From<geodabs_roaring::WireError> for SnapshotError {
    fn from(e: geodabs_roaring::WireError) -> SnapshotError {
        match e {
            geodabs_roaring::WireError::Truncated => SnapshotError::Truncated,
            geodabs_roaring::WireError::Corrupt(what) => SnapshotError::Corrupt(what),
        }
    }
}

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The IEEE CRC-32 of `data` (the polynomial zip, PNG and ethernet use).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &byte in data {
        c = CRC_TABLE[((c ^ byte as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Little-endian cursor over a byte stream; every read is bounds-checked
/// so truncated input surfaces as [`ReadError::Truncated`] instead of a
/// panic. Shared by the snapshot layer and the `geodabs-serve` wire
/// protocol — errors convert into [`SnapshotError`] (and the serve
/// crate's wire error) with `?`.
pub struct Cursor<'a> {
    data: &'a [u8],
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `data`.
    pub fn new(data: &'a [u8]) -> Cursor<'a> {
        Cursor { data }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len()
    }

    /// Consumes and returns the next `n` bytes.
    ///
    /// # Errors
    ///
    /// [`ReadError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ReadError> {
        if self.data.len() < n {
            return Err(ReadError::Truncated);
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`ReadError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, ReadError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`ReadError::Truncated`] when fewer than 2 bytes remain.
    pub fn u16(&mut self) -> Result<u16, ReadError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`ReadError::Truncated`] when fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, ReadError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`ReadError::Truncated`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, ReadError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian IEEE-754 `f64`.
    ///
    /// # Errors
    ///
    /// [`ReadError::Truncated`] when fewer than 8 bytes remain.
    pub fn f64(&mut self) -> Result<f64, ReadError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a roaring bitmap in its wire form.
    ///
    /// # Errors
    ///
    /// Propagates the bitmap decoder's truncation/corruption errors.
    pub fn bitmap(&mut self) -> Result<geodabs_roaring::RoaringBitmap, ReadError> {
        let (bitmap, used) = geodabs_roaring::RoaringBitmap::deserialize_from(self.data)?;
        self.data = &self.data[used..];
        Ok(bitmap)
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`ReadError::Corrupt`] when trailing bytes remain.
    pub fn expect_end(&self) -> Result<(), ReadError> {
        if self.data.is_empty() {
            Ok(())
        } else {
            Err(ReadError::Corrupt("trailing bytes after section payload"))
        }
    }
}

/// Accumulates sections and serializes the `GDAB` v2 container.
///
/// ```
/// use geodabs_index::store::{BackendKind, SnapshotReader, SnapshotWriter, SEC_CONFIG};
///
/// let mut writer = SnapshotWriter::new(BackendKind::Geodab);
/// writer.section(SEC_CONFIG, vec![1, 2, 3]);
/// let bytes = writer.finish();
/// let reader = SnapshotReader::parse(&bytes).unwrap();
/// assert_eq!(reader.section(SEC_CONFIG).unwrap(), &[1, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct SnapshotWriter {
    backend: BackendKind,
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Starts a snapshot for the given backend.
    pub fn new(backend: BackendKind) -> SnapshotWriter {
        SnapshotWriter {
            backend,
            sections: Vec::new(),
        }
    }

    /// Appends a section. Sections are written in insertion order; ids
    /// must be unique (checked on read).
    pub fn section(&mut self, id: u32, payload: Vec<u8>) {
        debug_assert!(
            self.sections.iter().all(|&(existing, _)| existing != id),
            "duplicate section id"
        );
        self.sections.push((id, payload));
    }

    /// Serializes the container: header, then every section with its
    /// length and CRC-32.
    pub fn finish(self) -> Vec<u8> {
        let total: usize = self.sections.iter().map(|(_, p)| 16 + p.len()).sum();
        let mut out = Vec::with_capacity(11 + total);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(self.backend.tag());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (id, payload) in &self.sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }
}

/// Reads the snapshot version from a byte stream without parsing the
/// body — how [`crate::codec::decode`] switches between the v1 and v2
/// paths.
///
/// # Errors
///
/// [`SnapshotError::BadMagic`] / [`SnapshotError::Truncated`] on inputs
/// too foreign to carry a version at all.
pub fn peek_version(data: &[u8]) -> Result<u16, SnapshotError> {
    if data.len() < 4 {
        return Err(SnapshotError::BadMagic);
    }
    if &data[..4] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut cursor = Cursor::new(&data[4..]);
    Ok(cursor.u16()?)
}

/// Reads a snapshot's durability watermark: the WAL sequence number the
/// snapshot covers, recorded by the compaction path in an optional
/// [`SEC_WATERMARK`] section. Snapshots without one — every v1
/// snapshot, and any v2 snapshot not produced by compaction — read as
/// `None`: replay then starts from the beginning of the log.
///
/// # Errors
///
/// Malformed containers, or a watermark section that is not exactly
/// eight bytes.
pub fn watermark(data: &[u8]) -> Result<Option<u64>, SnapshotError> {
    if peek_version(data)? == VERSION_V1 {
        return Ok(None);
    }
    let reader = SnapshotReader::parse(data)?;
    match reader.optional_section(SEC_WATERMARK) {
        None => Ok(None),
        Some(payload) => {
            let mut cursor = Cursor::new(payload);
            let seq = cursor.u64()?;
            cursor.expect_end()?;
            Ok(Some(seq))
        }
    }
}

/// Returns `data` with its durability watermark set to `seq`, replacing
/// any previous [`SEC_WATERMARK`] section. Every other section is
/// carried over byte-for-byte, so the stamped snapshot loads through
/// the same decoders (which ignore sections they do not know).
///
/// # Errors
///
/// Malformed containers (v1 snapshots cannot carry a watermark and are
/// rejected as [`SnapshotError::UnsupportedVersion`]).
pub fn with_watermark(data: &[u8], seq: u64) -> Result<Vec<u8>, SnapshotError> {
    let reader = SnapshotReader::parse(data)?;
    let backend = reader
        .backend()
        .ok_or(SnapshotError::UnknownBackend(reader.backend_tag()))?;
    let mut writer = SnapshotWriter::new(backend);
    for &(id, payload) in reader.sections() {
        if id != SEC_WATERMARK {
            writer.section(id, payload.to_vec());
        }
    }
    writer.section(SEC_WATERMARK, seq.to_le_bytes().to_vec());
    Ok(writer.finish())
}

/// A parsed v2 container: header fields plus the section table, every
/// payload already checksum-verified.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    backend_tag: u8,
    sections: Vec<(u32, &'a [u8])>,
    /// Section id → index into `sections`, so duplicate detection during
    /// parse and every lookup stay O(1) — cluster loads do one lookup
    /// per node, and a crafted section count must not buy quadratic CPU.
    by_id: std::collections::HashMap<u32, usize>,
}

impl<'a> SnapshotReader<'a> {
    /// Parses and verifies a v2 container: magic, version, section table
    /// and every section's CRC-32.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] a malformed container can produce; never
    /// panics on arbitrary input.
    pub fn parse(data: &'a [u8]) -> Result<SnapshotReader<'a>, SnapshotError> {
        let version = peek_version(data)?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let mut cursor = Cursor::new(&data[6..]);
        let backend_tag = cursor.u8()?;
        let count = cursor.u32()? as usize;
        let mut sections: Vec<(u32, &[u8])> = Vec::new();
        let mut by_id = std::collections::HashMap::new();
        for _ in 0..count {
            let id = cursor.u32()?;
            let len = cursor.u64()?;
            let stored_crc = cursor.u32()?;
            if cursor.remaining() < len as usize {
                return Err(SnapshotError::Truncated);
            }
            let payload = cursor.take(len as usize)?;
            if crc32(payload) != stored_crc {
                return Err(SnapshotError::ChecksumMismatch { section: id });
            }
            if by_id.insert(id, sections.len()).is_some() {
                return Err(SnapshotError::DuplicateSection(id));
            }
            sections.push((id, payload));
        }
        if cursor.remaining() != 0 {
            return Err(SnapshotError::Corrupt("trailing bytes after last section"));
        }
        Ok(SnapshotReader {
            backend_tag,
            sections,
            by_id,
        })
    }

    /// The raw backend tag byte from the header.
    pub fn backend_tag(&self) -> u8 {
        self.backend_tag
    }

    /// The backend, when the tag is a known one.
    pub fn backend(&self) -> Option<BackendKind> {
        BackendKind::from_tag(self.backend_tag)
    }

    /// Fails unless the snapshot holds the given backend.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::WrongBackend`] naming both sides.
    pub fn expect_backend(&self, expected: BackendKind) -> Result<(), SnapshotError> {
        if self.backend_tag == expected.tag() {
            Ok(())
        } else {
            Err(SnapshotError::WrongBackend {
                expected,
                found: self.backend_tag,
            })
        }
    }

    /// The payload of a required section.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MissingSection`] when absent.
    pub fn section(&self, id: u32) -> Result<&'a [u8], SnapshotError> {
        self.optional_section(id)
            .ok_or(SnapshotError::MissingSection(id))
    }

    /// The payload of a section that may be absent.
    pub fn optional_section(&self, id: u32) -> Option<&'a [u8]> {
        self.by_id.get(&id).map(|&index| self.sections[index].1)
    }

    /// Every section in file order, as `(id, payload)`.
    pub fn sections(&self) -> &[(u32, &'a [u8])] {
        &self.sections
    }
}

/// Snapshot persistence, implemented by every index backend.
///
/// `to_snapshot`/`from_snapshot` round-trip the full engine state through
/// the `GDAB` v2 container; `save_to`/`load_from` add the file I/O. The
/// contract every implementation upholds (and the snapshot test-suites
/// pin): `from_snapshot(to_snapshot(index))` answers every query exactly
/// like `index`, and `from_snapshot` never panics on arbitrary bytes.
pub trait Persist: Sized {
    /// Serializes the index into a self-contained snapshot.
    fn to_snapshot(&self) -> Vec<u8>;

    /// Materializes an index from a snapshot.
    ///
    /// # Errors
    ///
    /// A [`SnapshotError`] on malformed input; a successful load is
    /// always internally consistent.
    fn from_snapshot(data: &[u8]) -> Result<Self, SnapshotError>;

    /// Writes the snapshot to a file, returning the byte count.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failures.
    fn save_to<P: AsRef<Path>>(&self, path: P) -> Result<u64, SnapshotError> {
        let bytes = self.to_snapshot();
        std::fs::write(path, &bytes).map_err(SnapshotError::Io)?;
        Ok(bytes.len() as u64)
    }

    /// Reads a snapshot file back into an index.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failures, any decode error on
    /// malformed contents.
    fn load_from<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path).map_err(SnapshotError::Io)?;
        Self::from_snapshot(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut writer = SnapshotWriter::new(BackendKind::Geodab);
        writer.section(SEC_CONFIG, vec![36, 16, 6, 0, 0, 0]);
        writer.section(SEC_POSTINGS, (0u8..200).collect());
        writer.section(node_section_id(3), Vec::new());
        writer.finish()
    }

    #[test]
    fn writer_reader_roundtrip() {
        let bytes = sample();
        let reader = SnapshotReader::parse(&bytes).expect("valid container");
        assert_eq!(reader.backend(), Some(BackendKind::Geodab));
        assert_eq!(reader.section(SEC_CONFIG).unwrap(), &[36, 16, 6, 0, 0, 0]);
        assert_eq!(reader.section(SEC_POSTINGS).unwrap().len(), 200);
        assert_eq!(reader.section(node_section_id(3)).unwrap().len(), 0);
        assert_eq!(reader.sections().len(), 3);
        assert!(reader.optional_section(SEC_CELLS).is_none());
        assert!(matches!(
            reader.section(SEC_CELLS),
            Err(SnapshotError::MissingSection(_))
        ));
        assert!(reader.expect_backend(BackendKind::Geodab).is_ok());
        assert!(matches!(
            reader.expect_backend(BackendKind::Cluster),
            Err(SnapshotError::WrongBackend { .. })
        ));
    }

    #[test]
    fn watermark_stamping_roundtrips_and_replaces() {
        let bytes = sample();
        assert_eq!(
            watermark(&bytes).unwrap(),
            None,
            "plain snapshots carry none"
        );
        let stamped = with_watermark(&bytes, 42).unwrap();
        assert_eq!(watermark(&stamped).unwrap(), Some(42));
        // Restamping replaces rather than duplicates the section…
        let restamped = with_watermark(&stamped, 99).unwrap();
        assert_eq!(watermark(&restamped).unwrap(), Some(99));
        let reader = SnapshotReader::parse(&restamped).unwrap();
        assert_eq!(reader.sections().len(), 4);
        assert_eq!(section_name(SEC_WATERMARK), "WMRK");
        // …and every original section is carried over byte-for-byte.
        let original = SnapshotReader::parse(&bytes).unwrap();
        for &(id, payload) in original.sections() {
            assert_eq!(reader.section(id).unwrap(), payload);
        }
    }

    #[test]
    fn watermark_tolerates_v1_and_rejects_malformed_sections() {
        let v1 = b"GDAB\x01\x00rest-is-the-legacy-layout".to_vec();
        assert_eq!(watermark(&v1).unwrap(), None, "v1 predates the section");
        assert!(matches!(
            with_watermark(&v1, 1),
            Err(SnapshotError::UnsupportedVersion(1))
        ));
        let mut writer = SnapshotWriter::new(BackendKind::Geodab);
        writer.section(SEC_WATERMARK, vec![1, 2, 3]);
        let bad = writer.finish();
        assert!(
            watermark(&bad).is_err(),
            "watermark must be exactly 8 bytes"
        );
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn payload_bitflips_are_caught_by_the_checksum() {
        let bytes = sample();
        let reader = SnapshotReader::parse(&bytes).unwrap();
        // Find where the POST payload lives and flip a bit inside it.
        let payload = reader.section(SEC_POSTINGS).unwrap();
        let offset = payload.as_ptr() as usize - bytes.as_ptr() as usize + 100;
        drop(reader);
        let mut corrupted = bytes.clone();
        corrupted[offset] ^= 0x40;
        assert!(matches!(
            SnapshotReader::parse(&corrupted),
            Err(SnapshotError::ChecksumMismatch { section }) if section == SEC_POSTINGS
        ));
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let err = SnapshotReader::parse(&bytes[..cut]).expect_err("strict prefix");
            assert!(!err.to_string().is_empty(), "cut at {cut}");
        }
        // Trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            SnapshotReader::parse(&padded),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn versions_and_magic_are_enforced() {
        assert!(matches!(peek_version(b""), Err(SnapshotError::BadMagic)));
        assert!(matches!(
            peek_version(b"NOPE\x02\x00"),
            Err(SnapshotError::BadMagic)
        ));
        assert_eq!(peek_version(b"GDAB\x02\x00").unwrap(), 2);
        assert_eq!(peek_version(b"GDAB\x01\x00").unwrap(), 1);
        assert!(matches!(
            SnapshotReader::parse(b"GDAB\x01\x00rest"),
            Err(SnapshotError::UnsupportedVersion(1))
        ));
        assert!(matches!(
            SnapshotReader::parse(b"GDAB\x63\x00rest"),
            Err(SnapshotError::UnsupportedVersion(0x63))
        ));
    }

    #[test]
    fn duplicate_sections_are_rejected() {
        // Hand-assemble a container repeating SEC_CONFIG.
        let mut writer = SnapshotWriter::new(BackendKind::Geohash);
        writer.section(SEC_CONFIG, vec![1]);
        let mut bytes = writer.finish();
        // Append a copy of the one section and bump the count.
        let section_bytes = bytes[11..].to_vec();
        bytes.extend_from_slice(&section_bytes);
        bytes[7..11].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(
            SnapshotReader::parse(&bytes),
            Err(SnapshotError::DuplicateSection(id)) if id == SEC_CONFIG
        ));
    }

    #[test]
    fn cursor_reads_are_bounds_checked() {
        let mut cursor = Cursor::new(&[1, 2, 3]);
        assert_eq!(cursor.u8().unwrap(), 1);
        assert_eq!(cursor.u16().unwrap(), u16::from_le_bytes([2, 3]));
        assert_eq!(cursor.u8(), Err(ReadError::Truncated));
        assert!(cursor.expect_end().is_ok());
        let mut cursor = Cursor::new(&[0; 20]);
        assert_eq!(cursor.u32().unwrap(), 0);
        assert_eq!(cursor.u64().unwrap(), 0);
        assert_eq!(cursor.f64().unwrap(), 0.0);
        let trailing = Cursor::new(&[0; 2]);
        assert!(trailing.expect_end().is_err());
        // Cursor errors convert into the snapshot error vocabulary.
        assert!(matches!(
            SnapshotError::from(ReadError::Truncated),
            SnapshotError::Truncated
        ));
        assert!(matches!(
            SnapshotError::from(ReadError::Corrupt("x")),
            SnapshotError::Corrupt("x")
        ));
        assert!(!ReadError::Truncated.to_string().is_empty());
        assert!(ReadError::Corrupt("boom").to_string().contains("boom"));
    }

    #[test]
    fn section_names_render() {
        assert_eq!(section_name(SEC_CONFIG), "CONF");
        assert_eq!(section_name(node_section_id(0)), "NODE0");
        assert_eq!(section_name(node_section_id(42)), "NODE42");
        assert_eq!(section_name(1), "0x00000001");
    }

    #[test]
    fn backend_tags_roundtrip() {
        for kind in [
            BackendKind::Geodab,
            BackendKind::Geohash,
            BackendKind::Cluster,
            BackendKind::Node,
        ] {
            assert_eq!(BackendKind::from_tag(kind.tag()), Some(kind));
            assert!(!kind.name().is_empty());
        }
        assert_eq!(BackendKind::from_tag(0), None);
        assert_eq!(BackendKind::from_tag(99), None);
    }
}
