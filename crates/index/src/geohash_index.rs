use geodabs_geo::{BoundingBox, CellEncoder, Geohash, MAX_DEPTH};
use geodabs_traj::{TrajId, Trajectory};
use std::collections::HashMap;

use crate::engine::PostingLists;
use crate::{SearchOptions, SearchResult, TrajectoryIndex};

/// The baseline index of Section VI-D: terms are plain geohash cells of
/// the trajectory's points (as in landmark search engines), ranked by
/// Jaccard distance over cell *sets*.
///
/// Because a set of cells carries no ordering, this index cannot
/// distinguish a trajectory from its return path — the cause of the
/// 0.5-precision plateau in Figure 12 — and it discriminates overlapping
/// trajectories poorly, which Figure 14 shows as query time growing with
/// dataset density.
#[derive(Debug, Clone)]
pub struct GeohashIndex {
    depth: u8,
    engine: PostingLists<u64>,
    cells: HashMap<TrajId, Vec<u64>>,
}

impl GeohashIndex {
    /// Creates an empty index over cells of `depth` bits (the paper's
    /// comparison uses the same 36-bit depth as geodab normalization).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or above 64.
    pub fn new(depth: u8) -> GeohashIndex {
        assert!(
            (1..=MAX_DEPTH).contains(&depth),
            "cell depth must be in 1..=64"
        );
        GeohashIndex {
            depth,
            engine: PostingLists::new(),
            cells: HashMap::new(),
        }
    }

    /// Assembles an index from persisted engine state — the snapshot
    /// loader's direct-materialization path. The codec validates the
    /// parts against each other before calling this.
    pub(crate) fn from_engine_parts(
        depth: u8,
        engine: PostingLists<u64>,
        cells: HashMap<TrajId, Vec<u64>>,
    ) -> GeohashIndex {
        GeohashIndex {
            depth,
            engine,
            cells,
        }
    }

    /// The query engine's posting state, for the snapshot codec.
    pub(crate) fn engine(&self) -> &PostingLists<u64> {
        &self.engine
    }

    /// Iterates over `(id, cells)` of every indexed trajectory in
    /// unspecified order.
    pub fn iter_cells(&self) -> impl Iterator<Item = (TrajId, &[u64])> {
        self.cells.iter().map(|(&id, cells)| (id, cells.as_slice()))
    }

    /// The cell depth in bits.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Number of distinct cells in the dictionary.
    pub fn term_count(&self) -> usize {
        self.engine.term_count()
    }

    /// The distinct, sorted cell set of a trajectory at this index depth.
    pub fn cell_set(&self, trajectory: &Trajectory) -> Vec<u64> {
        cell_set_at(self.depth, trajectory)
    }

    /// Indexes a batch of trajectories, extracting cell sets across
    /// `threads` scoped worker threads; posting-list insertion stays
    /// single-writer, applied in input order. Produces exactly the index a
    /// sequential [`TrajectoryIndex::insert`] loop over `items` would.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn insert_batch_threads(&mut self, items: &[(TrajId, &Trajectory)], threads: usize) {
        let depth = self.depth;
        let cell_sets = crate::batch::parallel_map(items, threads, |&(id, trajectory)| {
            (id, cell_set_at(depth, trajectory))
        });
        for (id, cells) in cell_sets {
            self.remove(id);
            self.engine.insert(id, cells.iter().copied());
            self.cells.insert(id, cells);
        }
    }

    /// Region query: distinct ids of trajectories touching any cell
    /// intersecting the box, sorted. This is the classic "bounding
    /// interval" query of spatial indexes (Section I of the paper) — note
    /// how coarse it is compared to fingerprint ranking: it cannot order
    /// the results by similarity to anything.
    pub fn search_region(&self, bbox: &BoundingBox) -> Vec<TrajId> {
        let cells: Vec<u64> = Geohash::cover_bbox(bbox, self.depth)
            .expect("index depth is valid")
            .into_iter()
            .map(|c| c.bits())
            .collect();
        self.candidates(&cells)
    }

    /// Distinct ids of trajectories sharing at least one cell with the
    /// query cell set, ascending — straight off the posting bitmaps, with
    /// no hash-set round-trip.
    pub fn candidates(&self, query_cells: &[u64]) -> Vec<TrajId> {
        self.engine.candidate_ids(query_cells.iter().copied())
    }
}

impl TrajectoryIndex for GeohashIndex {
    fn insert(&mut self, id: TrajId, trajectory: &Trajectory) {
        self.remove(id);
        let cells = self.cell_set(trajectory);
        self.engine.insert(id, cells.iter().copied());
        self.cells.insert(id, cells);
    }

    fn remove(&mut self, id: TrajId) -> bool {
        let Some(cells) = self.cells.remove(&id) else {
            return false;
        };
        self.engine.remove(id, cells.iter().copied());
        true
    }

    fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        let query_cells = self.cell_set(query);
        self.engine.search(query_cells.iter().copied(), options)
    }

    fn len(&self) -> usize {
        self.cells.len()
    }

    fn ids(&self) -> impl Iterator<Item = TrajId> + '_ {
        self.cells.keys().copied()
    }

    fn insert_batch<'a, I>(&mut self, items: I)
    where
        I: IntoIterator<Item = (TrajId, &'a Trajectory)>,
    {
        let items: Vec<(TrajId, &Trajectory)> = items.into_iter().collect();
        GeohashIndex::insert_batch_threads(self, &items, crate::batch::default_threads());
    }
}

/// The distinct, sorted cell set of a trajectory at `depth` bits — free of
/// `&self` so batch workers can run it while the index is mutably held.
fn cell_set_at(depth: u8, trajectory: &Trajectory) -> Vec<u64> {
    CellEncoder::new(depth)
        .expect("depth validated at construction")
        .cell_set(trajectory.points())
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_geo::Point;

    fn start() -> Point {
        Point::new(51.5074, -0.1278).unwrap()
    }

    fn eastward(n: usize, offset_m: f64) -> Trajectory {
        (0..n)
            .map(|i| start().destination(90.0, offset_m + i as f64 * 90.0))
            .collect()
    }

    #[test]
    fn cell_set_is_sorted_and_deduplicated() {
        let idx = GeohashIndex::new(36);
        let t = eastward(40, 0.0);
        let cells = idx.cell_set(&t);
        assert!(!cells.is_empty());
        assert!(cells.windows(2).all(|w| w[0] < w[1]));
        assert!(cells.len() <= t.len());
    }

    #[test]
    fn cannot_discriminate_direction() {
        // The defining weakness: a trajectory and its reverse have the
        // same cell set, hence distance zero.
        let mut idx = GeohashIndex::new(36);
        let t = eastward(40, 0.0);
        idx.insert(TrajId::new(0), &t);
        idx.insert(TrajId::new(1), &t.reversed());
        let hits = idx.search(&t, &SearchOptions::default());
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].distance, hits[1].distance);
        assert_eq!(hits[0].distance, 0.0);
    }

    #[test]
    fn still_separates_disjoint_regions() {
        let mut idx = GeohashIndex::new(36);
        idx.insert(TrajId::new(0), &eastward(40, 0.0));
        idx.insert(TrajId::new(1), &eastward(40, 20_000.0));
        let hits = idx.search(&eastward(40, 0.0), &SearchOptions::default());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, TrajId::new(0));
    }

    #[test]
    fn options_apply() {
        let mut idx = GeohashIndex::new(36);
        for i in 0..5u32 {
            idx.insert(TrajId::new(i), &eastward(40, i as f64 * 200.0));
        }
        let all = idx.search(&eastward(40, 0.0), &SearchOptions::default());
        assert!(
            all.len() > 1,
            "overlapping offsets should all be candidates"
        );
        let one = idx.search(&eastward(40, 0.0), &SearchOptions::default().limit(1));
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].id, all[0].id);
        let tight = idx.search(
            &eastward(40, 0.0),
            &SearchOptions::default().max_distance(0.1),
        );
        assert!(tight.iter().all(|h| h.distance <= 0.1));
    }

    #[test]
    fn region_query_finds_crossing_trajectories() {
        use geodabs_geo::BoundingBox;
        let mut idx = GeohashIndex::new(36);
        let near = eastward(40, 0.0);
        let far = eastward(40, 50_000.0);
        idx.insert(TrajId::new(0), &near);
        idx.insert(TrajId::new(1), &far);
        // A box around the start of the near trajectory.
        let bb = BoundingBox::around(start(), 1_000.0, 1_000.0);
        let hits = idx.search_region(&bb);
        assert_eq!(hits, vec![TrajId::new(0)]);
        // A box in the middle of nowhere finds nothing.
        let empty = BoundingBox::around(start().destination(180.0, 30_000.0), 500.0, 500.0);
        assert!(idx.search_region(&empty).is_empty());
        // A box covering everything finds both.
        let big = BoundingBox::around(start().destination(90.0, 25_000.0), 120_000.0, 20_000.0);
        assert_eq!(idx.search_region(&big).len(), 2);
    }

    #[test]
    fn depth_accessor_and_validation() {
        assert_eq!(GeohashIndex::new(36).depth(), 36);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_depth_panics() {
        let _ = GeohashIndex::new(0);
    }

    #[test]
    fn empty_index_is_empty() {
        let idx = GeohashIndex::new(36);
        assert!(idx.is_empty());
        assert_eq!(idx.term_count(), 0);
        assert!(idx
            .search(&eastward(10, 0.0), &SearchOptions::default())
            .is_empty());
    }

    #[test]
    fn engine_distances_match_brute_force_cell_jaccard() {
        let mut idx = GeohashIndex::new(36);
        let stored: Vec<Trajectory> = (0..6).map(|i| eastward(40, i as f64 * 400.0)).collect();
        for (i, t) in stored.iter().enumerate() {
            idx.insert(TrajId::new(i as u32), t);
        }
        let query = eastward(40, 100.0);
        let qcells = idx.cell_set(&query);
        let hits = idx.search(&query, &SearchOptions::default());
        assert!(!hits.is_empty());
        for h in &hits {
            let bcells = idx.cell_set(&stored[h.id.raw() as usize]);
            let inter = qcells.iter().filter(|c| bcells.contains(c)).count();
            assert!(inter > 0, "hits share at least one cell");
            let union = qcells.len() + bcells.len() - inter;
            assert_eq!(h.distance, 1.0 - inter as f64 / union as f64, "{}", h.id);
        }
    }
}
