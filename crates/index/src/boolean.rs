//! Boolean and positional retrieval over geodab terms (Section III-A1 of
//! the paper).
//!
//! "In its simplest form, an inverted index is usually composed of terms
//! that point to collections of document identifiers […]. Boolean queries
//! can then be used to retrieve all the documents that contain a set of
//! words. Optionally, a posting list can also contain the position of the
//! term in the document. This positional information can then be used to
//! search for sub-sequences in documents."
//!
//! [`PositionalIndex`] implements exactly that over fingerprint sequences:
//! conjunctive (AND) and disjunctive (OR) boolean queries, and positional
//! *phrase* queries matching a consecutive run of geodabs. The paper's
//! point — that phrase search over long sub-sequences is slow compared to
//! fingerprint Jaccard ranking — can be verified directly against
//! [`crate::GeodabIndex`] on the same data.
//!
//! Unlike the ranked indexes, this one keeps explicit `(trajectory,
//! positions)` posting entries rather than the roaring bitmaps of
//! [`crate::engine`]: positions are per-occurrence payloads, which a plain
//! membership bitmap cannot carry.

use geodabs_core::{Fingerprinter, GeodabConfig};
use geodabs_traj::{TrajId, Trajectory};
use std::collections::HashMap;

/// A positional inverted index: every geodab term maps to the list of
/// `(trajectory, positions)` pairs where it was selected by winnowing.
#[derive(Debug, Clone)]
pub struct PositionalIndex {
    fingerprinter: Fingerprinter,
    /// term -> sorted list of (trajectory, sorted positions).
    postings: HashMap<u32, Vec<(TrajId, Vec<u32>)>>,
    /// Stored ordered fingerprint sequences, for verification.
    sequences: HashMap<TrajId, Vec<u32>>,
}

impl PositionalIndex {
    /// Creates an empty positional index.
    pub fn new(config: GeodabConfig) -> PositionalIndex {
        PositionalIndex {
            fingerprinter: Fingerprinter::new(config),
            postings: HashMap::new(),
            sequences: HashMap::new(),
        }
    }

    /// Number of indexed trajectories.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// Indexes a trajectory's ordered fingerprint sequence with positions.
    pub fn insert(&mut self, id: TrajId, trajectory: &Trajectory) {
        let fp = self.fingerprinter.normalize_and_fingerprint(trajectory);
        let sequence: Vec<u32> = fp.ordered().to_vec();
        // Replace any previous posting entries for this id.
        if self.sequences.contains_key(&id) {
            for lists in self.postings.values_mut() {
                lists.retain(|(tid, _)| *tid != id);
            }
        }
        let mut positions_by_term: HashMap<u32, Vec<u32>> = HashMap::new();
        for (pos, &term) in sequence.iter().enumerate() {
            positions_by_term.entry(term).or_default().push(pos as u32);
        }
        for (term, positions) in positions_by_term {
            let list = self.postings.entry(term).or_default();
            let at = list
                .binary_search_by_key(&id, |&(tid, _)| tid)
                .unwrap_or_else(|e| e);
            list.insert(at, (id, positions));
        }
        self.sequences.insert(id, sequence);
    }

    /// The stored fingerprint sequence of a trajectory.
    pub fn sequence(&self, id: TrajId) -> Option<&[u32]> {
        self.sequences.get(&id).map(Vec::as_slice)
    }

    /// Conjunctive boolean query: trajectories containing **all** terms.
    ///
    /// Implemented as a sorted-list intersection starting from the rarest
    /// term, the classic optimization. Returns ids in ascending order;
    /// an empty term set matches nothing.
    pub fn query_and(&self, terms: &[u32]) -> Vec<TrajId> {
        let mut lists: Vec<&Vec<(TrajId, Vec<u32>)>> = Vec::with_capacity(terms.len());
        for t in terms {
            match self.postings.get(t) {
                Some(list) => lists.push(list),
                None => return Vec::new(),
            }
        }
        if lists.is_empty() {
            return Vec::new();
        }
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<TrajId> = lists[0].iter().map(|&(id, _)| id).collect();
        for list in &lists[1..] {
            result.retain(|id| list.binary_search_by_key(id, |&(tid, _)| tid).is_ok());
            if result.is_empty() {
                break;
            }
        }
        result
    }

    /// Disjunctive boolean query: trajectories containing **any** term,
    /// with the number of matching terms (a crude relevance signal),
    /// ordered by descending match count then ascending id.
    pub fn query_or(&self, terms: &[u32]) -> Vec<(TrajId, usize)> {
        let mut counts: HashMap<TrajId, usize> = HashMap::new();
        let mut distinct: Vec<u32> = terms.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        for t in distinct {
            if let Some(list) = self.postings.get(&t) {
                for &(id, _) in list {
                    *counts.entry(id).or_insert(0) += 1;
                }
            }
        }
        let mut out: Vec<(TrajId, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Positional phrase query: trajectories whose fingerprint sequence
    /// contains `phrase` as **consecutive** terms, with the start
    /// positions of each occurrence. This is the sub-sequence search of
    /// Section III-A1 — correct but increasingly expensive as phrases
    /// lengthen, which is the paper's motivation for fingerprint sets.
    pub fn query_phrase(&self, phrase: &[u32]) -> Vec<(TrajId, Vec<u32>)> {
        if phrase.is_empty() {
            return Vec::new();
        }
        // Candidates must contain all terms; then verify adjacency with
        // the positional lists of the first term.
        let candidates = self.query_and(phrase);
        let mut out = Vec::new();
        for id in candidates {
            let first_positions: &Vec<u32> = self
                .postings
                .get(&phrase[0])
                .and_then(|list| {
                    list.binary_search_by_key(&id, |&(tid, _)| tid)
                        .ok()
                        .map(|i| &list[i].1)
                })
                .expect("candidate came from query_and");
            let seq = &self.sequences[&id];
            let mut starts = Vec::new();
            for &start in first_positions {
                let start = start as usize;
                if start + phrase.len() <= seq.len() && seq[start..start + phrase.len()] == *phrase
                {
                    starts.push(start as u32);
                }
            }
            if !starts.is_empty() {
                out.push((id, starts));
            }
        }
        out
    }

    /// Fingerprints a query trajectory with the index's pipeline, e.g. to
    /// turn a sub-trajectory into a phrase.
    pub fn fingerprint_query(&self, query: &Trajectory) -> Vec<u32> {
        self.fingerprinter
            .normalize_and_fingerprint(query)
            .ordered()
            .to_vec()
    }

    /// Sub-trajectory search: fingerprints the query and returns the
    /// trajectories containing its fingerprint sequence.
    ///
    /// Tries the exact consecutive phrase first; when noise breaks exact
    /// adjacency, falls back to conjunctive (all terms, any positions) and
    /// finally to disjunctive matching ranked by shared-term count. The
    /// returned flag says which level matched.
    pub fn search_subtrajectory(&self, query: &Trajectory) -> (MatchLevel, Vec<TrajId>) {
        let phrase = self.fingerprint_query(query);
        if phrase.is_empty() {
            return (MatchLevel::None, Vec::new());
        }
        let exact = self.query_phrase(&phrase);
        if !exact.is_empty() {
            return (
                MatchLevel::Phrase,
                exact.into_iter().map(|(id, _)| id).collect(),
            );
        }
        let all = self.query_and(&phrase);
        if !all.is_empty() {
            return (MatchLevel::AllTerms, all);
        }
        let any = self.query_or(&phrase);
        if any.is_empty() {
            (MatchLevel::None, Vec::new())
        } else {
            (
                MatchLevel::AnyTerm,
                any.into_iter().map(|(id, _)| id).collect(),
            )
        }
    }
}

/// How strictly a sub-trajectory query matched (see
/// [`PositionalIndex::search_subtrajectory`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchLevel {
    /// The full fingerprint sequence appeared consecutively.
    Phrase,
    /// All fingerprints appeared, not necessarily adjacent.
    AllTerms,
    /// At least one fingerprint appeared.
    AnyTerm,
    /// Nothing matched (or the query was too short to fingerprint).
    None,
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_geo::Point;

    fn start() -> Point {
        Point::new(51.5074, -0.1278).unwrap()
    }

    /// Clean eastward cell path (one point per 95 m cell transit).
    fn cell_path(offset_cells: usize, moves: usize) -> Trajectory {
        (0..=moves)
            .map(|i| start().destination(90.0, (offset_cells + i) as f64 * 95.0))
            .collect()
    }

    /// Indexes three trajectories: two overlapping eastward paths and one
    /// far away.
    fn sample() -> (PositionalIndex, TrajId, TrajId, TrajId) {
        let mut idx = PositionalIndex::new(GeodabConfig::default());
        let (a, b, c) = (TrajId::new(0), TrajId::new(1), TrajId::new(2));
        idx.insert(a, &cell_path(0, 60));
        idx.insert(b, &cell_path(20, 60));
        idx.insert(c, &{
            let far = start().destination(0.0, 50_000.0);
            (0..=60)
                .map(|i| far.destination(90.0, i as f64 * 95.0))
                .collect()
        });
        (idx, a, b, c)
    }

    #[test]
    fn insert_and_counts() {
        let (idx, ..) = sample();
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
        assert!(idx.term_count() > 0);
        assert!(idx.sequence(TrajId::new(0)).is_some());
        assert!(idx.sequence(TrajId::new(9)).is_none());
    }

    #[test]
    fn and_query_requires_all_terms() {
        let (idx, a, b, _c) = sample();
        let seq_a = idx.sequence(a).unwrap().to_vec();
        // All of a's terms: only a matches.
        assert_eq!(idx.query_and(&seq_a), vec![a]);
        // A shared term: both overlapping trajectories match.
        let seq_b = idx.sequence(b).unwrap();
        let shared: Vec<u32> = seq_a
            .iter()
            .copied()
            .filter(|t| seq_b.contains(t))
            .take(1)
            .collect();
        assert!(!shared.is_empty(), "overlap must share a fingerprint");
        let hits = idx.query_and(&shared);
        assert!(hits.contains(&a) && hits.contains(&b));
        // Unknown term matches nothing.
        assert!(idx.query_and(&[0xDEAD_BEEF]).is_empty());
        assert!(idx.query_and(&[]).is_empty());
    }

    #[test]
    fn or_query_ranks_by_match_count() {
        let (idx, a, _b, c) = sample();
        let seq_a = idx.sequence(a).unwrap().to_vec();
        let hits = idx.query_or(&seq_a);
        assert_eq!(hits[0].0, a, "a matches all of its own terms");
        assert_eq!(hits[0].1, {
            let mut d = seq_a.clone();
            d.sort_unstable();
            d.dedup();
            d.len()
        });
        // The far-away trajectory shares nothing.
        assert!(hits.iter().all(|&(id, _)| id != c));
        // Counts are non-increasing.
        assert!(hits.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn phrase_query_finds_consecutive_runs() {
        let (idx, a, _b, _c) = sample();
        let seq_a = idx.sequence(a).unwrap().to_vec();
        assert!(seq_a.len() >= 4);
        let phrase = &seq_a[1..4];
        let hits = idx.query_phrase(phrase);
        let (id, starts) = hits
            .iter()
            .find(|(id, _)| *id == a)
            .expect("a contains its own phrase");
        assert_eq!(*id, a);
        assert!(starts.contains(&1));
    }

    #[test]
    fn phrase_query_rejects_non_consecutive() {
        let (idx, a, ..) = sample();
        let seq_a = idx.sequence(a).unwrap().to_vec();
        assert!(seq_a.len() >= 4);
        // Skip one term: the phrase is no longer consecutive.
        let gapped = vec![seq_a[0], seq_a[2], seq_a[3]];
        let hits = idx.query_phrase(&gapped);
        assert!(
            hits.iter().all(|(id, _)| *id != a) || seq_a[0] == seq_a[1],
            "gapped phrase must not match (unless terms repeat)"
        );
        assert!(idx.query_phrase(&[]).is_empty());
    }

    #[test]
    fn shared_stretch_is_phrase_searchable_across_trajectories() {
        let (idx, a, b, _c) = sample();
        // Find a shared run of 2 consecutive terms between a and b.
        let seq_a = idx.sequence(a).unwrap().to_vec();
        let seq_b = idx.sequence(b).unwrap().to_vec();
        let shared_run = seq_a.windows(2).find(|w| seq_b.windows(2).any(|v| v == *w));
        if let Some(run) = shared_run {
            let hits = idx.query_phrase(run);
            let ids: Vec<TrajId> = hits.iter().map(|(id, _)| *id).collect();
            assert!(ids.contains(&a) && ids.contains(&b));
        }
    }

    #[test]
    fn subtrajectory_search_finds_containing_paths() {
        let (idx, a, _b, _c) = sample();
        // A sub-path of trajectory a, long enough to fingerprint.
        let sub = cell_path(10, 30);
        let (level, hits) = idx.search_subtrajectory(&sub);
        assert_ne!(level, MatchLevel::None);
        assert!(hits.contains(&a), "level {level:?}, hits {hits:?}");
    }

    #[test]
    fn subtrajectory_search_degrades_gracefully() {
        let (idx, ..) = sample();
        // A far-away path shares nothing at any level.
        let far = {
            let q = start().destination(180.0, 80_000.0);
            (0..=30)
                .map(|i| q.destination(90.0, i as f64 * 95.0))
                .collect()
        };
        let (level, hits) = idx.search_subtrajectory(&far);
        assert_eq!(level, MatchLevel::None);
        assert!(hits.is_empty());
        // A too-short query cannot fingerprint.
        let (level, hits) = idx.search_subtrajectory(&cell_path(0, 2));
        assert_eq!(level, MatchLevel::None);
        assert!(hits.is_empty());
    }

    #[test]
    fn reinsert_replaces_old_postings() {
        let mut idx = PositionalIndex::new(GeodabConfig::default());
        let id = TrajId::new(7);
        idx.insert(id, &cell_path(0, 40));
        let old_seq = idx.sequence(id).unwrap().to_vec();
        idx.insert(id, &cell_path(100, 40));
        assert_eq!(idx.len(), 1);
        // Old terms no longer retrieve the trajectory.
        let hits = idx.query_and(&old_seq[..1]);
        assert!(hits.is_empty(), "stale postings survived reinsertion");
    }

    #[test]
    fn fingerprint_query_matches_insert_pipeline() {
        let (idx, a, ..) = sample();
        let q = idx.fingerprint_query(&cell_path(0, 60));
        assert_eq!(q.as_slice(), idx.sequence(a).unwrap());
    }
}
