//! Property tests pinning the parallel batch paths to their sequential
//! equivalents, bit for bit:
//!
//! * `insert_batch(items, threads)` must produce exactly the index a
//!   sequential `insert` loop over the same items would — same stored
//!   fingerprints / cell sets, same term dictionary, same rankings — for
//!   any thread count, including batches with repeated ids and
//!   re-inserts over a pre-populated index;
//! * `search_batch_threads` must return exactly
//!   `queries.map(|q| search(q))` in query order for any thread count.

use geodabs_core::GeodabConfig;
use geodabs_geo::Point;
use geodabs_index::{GeodabIndex, GeohashIndex, SearchOptions, TrajectoryIndex};
use geodabs_traj::{TrajId, Trajectory};
use proptest::prelude::*;

/// Builds a deterministic trajectory from integer parameters: a walk of
/// `steps` legs from a jittered start, each leg `leg_m` meters on a
/// heading that drifts by `turn` degrees per step.
fn walk(start_offset_m: u16, heading: u16, turn: i8, leg_m: u8, steps: u8) -> Trajectory {
    let origin = Point::new(51.5074, -0.1278).expect("valid point");
    let start = origin.destination(f64::from(heading % 360), f64::from(start_offset_m));
    let mut heading = f64::from(heading % 360);
    let mut here = start;
    let mut points = vec![here];
    for _ in 0..steps {
        heading = (heading + f64::from(turn) * 0.5).rem_euclid(360.0);
        here = here.destination(heading, f64::from(leg_m) + 30.0);
        points.push(here);
    }
    points.into_iter().collect()
}

type WalkParams = (u16, u16, i8, u8, u8);

fn trajectories(params: &[WalkParams]) -> Vec<Trajectory> {
    params
        .iter()
        .map(|&(o, h, t, l, s)| walk(o, h, t, l, s))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel geodab ingest is bit-identical to a serial insert loop:
    /// identical fingerprint tables, identical term dictionaries and
    /// identical rankings for every stored trajectory used as a query —
    /// across thread counts, with repeated ids in the batch (`id % 7`
    /// forces collisions) and over an index that already held some of
    /// the ids.
    #[test]
    fn geodab_parallel_ingest_equals_serial(
        params in proptest::collection::vec(
            (0u16..5_000, 0u16..360, -40i8..40, 0u8..120, 0u8..80), 1..24),
        threads in 1usize..6,
        prefill in 0usize..4,
    ) {
        let ts = trajectories(&params);
        let items: Vec<(TrajId, &Trajectory)> = ts
            .iter()
            .enumerate()
            .map(|(i, t)| (TrajId::new((i % 7) as u32), t))
            .collect();

        let config = GeodabConfig::default();
        let mut serial = GeodabIndex::new(config);
        let mut parallel = GeodabIndex::new(config);
        // Pre-populate both sides so the batch exercises replace-on-
        // reinsert against existing contents.
        for (id, t) in items.iter().take(prefill) {
            serial.insert(*id, t);
            parallel.insert(*id, t);
        }
        for (id, t) in &items {
            serial.insert(*id, t);
        }
        parallel.insert_batch_threads(&items, threads);

        prop_assert_eq!(parallel.len(), serial.len());
        prop_assert_eq!(parallel.term_count(), serial.term_count());
        for (id, fp) in serial.iter_fingerprints() {
            prop_assert_eq!(parallel.fingerprints(id), Some(fp));
        }
        for (_, t) in &items {
            for options in [
                SearchOptions::default(),
                SearchOptions::default().limit(3),
                SearchOptions::default().max_distance(0.5).limit(2),
            ] {
                prop_assert_eq!(
                    parallel.search(t, &options),
                    serial.search(t, &options)
                );
            }
        }
    }

    /// Same property for the geohash baseline: identical cell postings
    /// (term dictionary) and rankings after parallel ingest.
    #[test]
    fn geohash_parallel_ingest_equals_serial(
        params in proptest::collection::vec(
            (0u16..5_000, 0u16..360, -40i8..40, 0u8..120, 0u8..60), 1..20),
        threads in 1usize..6,
    ) {
        let ts = trajectories(&params);
        let items: Vec<(TrajId, &Trajectory)> = ts
            .iter()
            .enumerate()
            .map(|(i, t)| (TrajId::new((i % 5) as u32), t))
            .collect();

        let mut serial = GeohashIndex::new(36);
        for (id, t) in &items {
            serial.insert(*id, t);
        }
        let mut parallel = GeohashIndex::new(36);
        parallel.insert_batch_threads(&items, threads);

        prop_assert_eq!(parallel.len(), serial.len());
        prop_assert_eq!(parallel.term_count(), serial.term_count());
        for (_, t) in &items {
            prop_assert_eq!(
                parallel.search(t, &SearchOptions::default()),
                serial.search(t, &SearchOptions::default())
            );
        }
    }

    /// `search_batch_threads` is exactly the per-query `search` map, in
    /// query order, for any thread count and options.
    #[test]
    fn search_batch_equals_query_loop(
        corpus in proptest::collection::vec(
            (0u16..3_000, 0u16..360, -40i8..40, 0u8..120, 4u8..60), 1..16),
        queries in proptest::collection::vec(
            (0u16..3_000, 0u16..360, -40i8..40, 0u8..120, 0u8..60), 0..8),
        threads in 1usize..6,
        limit in 0usize..5,
    ) {
        let corpus = trajectories(&corpus);
        let queries = trajectories(&queries);
        let mut index = GeodabIndex::new(GeodabConfig::default());
        for (i, t) in corpus.iter().enumerate() {
            index.insert(TrajId::new(i as u32), t);
        }
        let mut options = SearchOptions::default().max_distance(0.9);
        if limit > 0 {
            options = options.limit(limit);
        }
        let batched = index.search_batch_threads(&queries, &options, threads);
        let looped: Vec<_> = queries.iter().map(|q| index.search(q, &options)).collect();
        prop_assert_eq!(batched, looped);
    }
}
