//! Property-based equivalence of the pruned top-k query engine and the
//! naive full-scan ranker.
//!
//! The engine (term-at-a-time overlap counting, rarest-first, with
//! upper-bound admission pruning and a bounded heap) is an *optimization*,
//! not an approximation: for every workload and every combination of
//! `SearchOptions` it must return exactly the ids and distances of the
//! collect-all-then-sort reference, ties broken by id. These properties
//! drive randomized workloads through both paths and assert bit-identical
//! results.

use geodabs_core::{Fingerprints, GeodabConfig};
use geodabs_index::{GeodabIndex, SearchOptions, SearchResult};
use geodabs_traj::TrajId;
use proptest::prelude::*;

fn index_of(sets: &[Vec<u32>]) -> GeodabIndex {
    let mut idx = GeodabIndex::new(GeodabConfig::default());
    for (i, set) in sets.iter().enumerate() {
        idx.insert_fingerprints(
            TrajId::new(i as u32),
            Fingerprints::from_ordered(set.clone()),
        );
    }
    idx
}

fn assert_identical(pruned: &[SearchResult], naive: &[SearchResult]) -> Result<(), TestCaseError> {
    prop_assert_eq!(pruned.len(), naive.len());
    for (p, n) in pruned.iter().zip(naive) {
        prop_assert_eq!(p.id, n.id);
        // Bit-identical distances: both paths must evaluate the same
        // 1 − |A∩B| / (|A| + |B| − |A∩B|) expression over the same integers.
        prop_assert_eq!(p.distance.to_bits(), n.distance.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Unlimited, unthresholded search: the engine must reproduce the
    /// full ranking.
    #[test]
    fn full_ranking_matches_naive(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..400, 0..50), 0..80),
        query in proptest::collection::vec(0u32..400, 0..50),
    ) {
        let idx = index_of(&sets);
        let fp = Fingerprints::from_ordered(query);
        let options = SearchOptions::default();
        assert_identical(
            &idx.search_fingerprints(&fp, &options),
            &idx.search_fingerprints_naive(&fp, &options),
        )?;
    }

    /// Every combination of limit and threshold, including the degenerate
    /// ones (`limit == 0`, `max_distance == 0.0`), stays exact — this is
    /// where admission pruning and the bounded heap actually engage.
    #[test]
    fn pruned_topk_matches_naive_under_options(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..300, 0..40), 0..60),
        query in proptest::collection::vec(0u32..300, 0..40),
        limit in 0usize..12,
        threshold_pm in 0u32..101,
    ) {
        let idx = index_of(&sets);
        let fp = Fingerprints::from_ordered(query);
        // limit 0 means "no limit"; 1..=11 map to explicit limits 0..=10.
        let mut options = SearchOptions::default()
            .max_distance(threshold_pm as f64 / 100.0);
        if limit > 0 {
            options = options.limit(limit - 1);
        }
        assert_identical(
            &idx.search_fingerprints(&fp, &options),
            &idx.search_fingerprints_naive(&fp, &options),
        )?;
    }

    /// Skewed workloads — one hot term shared by everything plus long
    /// unique tails — exercise the rarest-first ordering and the flip to
    /// increment-only scanning.
    #[test]
    fn skewed_postings_stay_exact(
        tails in proptest::collection::vec(
            proptest::collection::vec(100u32..10_000, 0..25), 1..50),
        limit in 1usize..6,
    ) {
        let sets: Vec<Vec<u32>> = tails
            .iter()
            .map(|tail| {
                let mut s = vec![7u32]; // the hot term
                s.extend_from_slice(tail);
                s
            })
            .collect();
        let idx = index_of(&sets);
        // The query shares the hot term with every trajectory and the
        // tail of the first one.
        let fp = Fingerprints::from_ordered(sets[0].clone());
        let options = SearchOptions::default().limit(limit);
        assert_identical(
            &idx.search_fingerprints(&fp, &options),
            &idx.search_fingerprints_naive(&fp, &options),
        )?;
    }

    /// Removals and re-insertions (which recycle interned dense slots)
    /// must not disturb equivalence.
    #[test]
    fn equivalence_survives_removals_and_reinserts(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..200, 1..20), 4..40),
        remove_stride in 2usize..5,
        query in proptest::collection::vec(0u32..200, 1..20),
    ) {
        use geodabs_index::TrajectoryIndex;
        let mut idx = index_of(&sets);
        for i in (0..sets.len()).step_by(remove_stride) {
            idx.remove(TrajId::new(i as u32));
        }
        // Re-insert half of the removed ids with fresh sets.
        for i in (0..sets.len()).step_by(remove_stride * 2) {
            let recycled: Vec<u32> = sets[i].iter().map(|t| t + 1).collect();
            idx.insert_fingerprints(
                TrajId::new(i as u32),
                Fingerprints::from_ordered(recycled),
            );
        }
        let fp = Fingerprints::from_ordered(query);
        for options in [
            SearchOptions::default(),
            SearchOptions::default().limit(3),
            SearchOptions::default().limit(2).max_distance(0.6),
        ] {
            assert_identical(
                &idx.search_fingerprints(&fp, &options),
                &idx.search_fingerprints_naive(&fp, &options),
            )?;
        }
    }
}
