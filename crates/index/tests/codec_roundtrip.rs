//! Property tests pinning the snapshot formats: `load ∘ save ≡ id` on
//! search results for both single-node backends, legacy v1 blobs still
//! decoding, and malformed input (truncation, bit flips, checksum damage)
//! surfacing as a [`SnapshotError`] — never a panic or a silently-wrong
//! index.

use geodabs_core::{Fingerprints, GeodabConfig};
use geodabs_index::codec::{decode, encode, encode_v1};
use geodabs_index::store::{Persist, SnapshotError};
use geodabs_index::{GeodabIndex, GeohashIndex, SearchOptions, TrajectoryIndex};
use geodabs_traj::TrajId;
use proptest::prelude::*;

/// Builds an index holding the given raw fingerprint sequences (ids get
/// a stride so they are non-dense, as after deletions).
fn index_of(sets: &[Vec<u32>]) -> GeodabIndex {
    let mut index = GeodabIndex::new(GeodabConfig::default());
    for (i, ordered) in sets.iter().enumerate() {
        index.insert_fingerprints(
            TrajId::new((i * 3 + 1) as u32),
            Fingerprints::from_ordered(ordered.clone()),
        );
    }
    index
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round trip preserves every fingerprint sequence (ordered view
    /// included — the part a set-based bug would drop), the config and
    /// the rankings — including after removals, which leave vacant
    /// interner slots behind.
    #[test]
    fn load_save_is_identity(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..100_000, 0..40), 0..20),
        query in proptest::collection::vec(0u32..100_000, 0..40),
        remove_stride in 2usize..5,
    ) {
        let mut original = index_of(&sets);
        for i in (0..sets.len()).step_by(remove_stride) {
            original.remove(TrajId::new((i * 3 + 1) as u32));
        }
        let decoded = decode(&encode(&original)).expect("roundtrip");
        prop_assert_eq!(decoded.len(), original.len());
        prop_assert_eq!(decoded.term_count(), original.term_count());
        prop_assert_eq!(decoded.config(), original.config());
        for (id, fp) in original.iter_fingerprints() {
            prop_assert_eq!(decoded.fingerprints(id), Some(fp));
        }
        // Same bytes out again: encoding is deterministic.
        prop_assert_eq!(encode(&decoded), encode(&original));
        // And the decoded index ranks identically.
        let query = Fingerprints::from_ordered(query);
        for options in [
            SearchOptions::default(),
            SearchOptions::default().limit(3).max_distance(0.8),
        ] {
            prop_assert_eq!(
                decoded.search_fingerprints(&query, &options),
                original.search_fingerprints(&query, &options)
            );
        }
    }

    /// Legacy v1 blobs decode into exactly the index the v2 path
    /// produces: same contents, same rankings, same re-encoded bytes.
    #[test]
    fn v1_blobs_still_decode(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..100_000, 0..30), 0..12),
        query in proptest::collection::vec(0u32..100_000, 0..30),
    ) {
        let original = index_of(&sets);
        let from_v1 = decode(&encode_v1(&original)).expect("v1 decode");
        prop_assert_eq!(from_v1.len(), original.len());
        prop_assert_eq!(from_v1.term_count(), original.term_count());
        prop_assert_eq!(encode(&from_v1), encode(&original));
        let query = Fingerprints::from_ordered(query);
        prop_assert_eq!(
            from_v1.search_fingerprints(&query, &SearchOptions::default()),
            original.search_fingerprints(&query, &SearchOptions::default())
        );
    }

    /// Every strict prefix of a valid encoding (either version) fails to
    /// decode with a structured error — no panic, no partial index.
    #[test]
    fn truncation_always_errors(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..50_000, 0..20), 0..8),
        cut_seed in 0usize..10_000,
        legacy in any::<bool>(),
    ) {
        let index = index_of(&sets);
        let bytes = if legacy { encode_v1(&index) } else { encode(&index) };
        let cut = cut_seed % bytes.len();
        let err = decode(&bytes[..cut]).expect_err("truncated input must fail");
        prop_assert!(
            matches!(err, SnapshotError::Truncated | SnapshotError::BadMagic),
            "cut at {}: {:?}", cut, err
        );
    }

    /// Corrupting the magic is always rejected as `BadMagic`.
    #[test]
    fn bad_magic_always_errors(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..50_000, 0..10), 0..4),
        byte in 0usize..4,
        xor in 1u8..=255,
    ) {
        let mut bytes = encode(&index_of(&sets));
        bytes[byte] ^= xor;
        prop_assert!(matches!(decode(&bytes), Err(SnapshotError::BadMagic)));
    }

    /// Arbitrary bit flips anywhere in a v2 stream never panic — and a
    /// flip inside any section payload is always caught by its CRC-32
    /// (flips in the header or section table surface as other structured
    /// errors).
    #[test]
    fn random_corruption_never_panics(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..50_000, 0..10), 1..6),
        offset_seed in 0usize..10_000,
        xor in 1u8..=255,
    ) {
        let bytes = encode(&index_of(&sets));
        let offset = offset_seed % bytes.len();
        let mut corrupted = bytes;
        corrupted[offset] ^= xor;
        let err = decode(&corrupted).expect_err("a v2 bit flip is always detected");
        prop_assert!(!err.to_string().is_empty());
    }

    /// Bit flips in legacy v1 streams never panic either: they decode to
    /// a well-formed (if different) index or fail with a codec error —
    /// v1 has no checksums, which is part of why v2 exists.
    #[test]
    fn v1_corruption_never_panics(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..50_000, 0..10), 1..6),
        offset_seed in 0usize..10_000,
        xor in 1u8..=255,
    ) {
        let mut bytes = encode_v1(&index_of(&sets));
        let offset = offset_seed % bytes.len();
        bytes[offset] ^= xor;
        match decode(&bytes) {
            Ok(index) => prop_assert!(index.len() <= sets.len()),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// The geohash backend round-trips exactly too, over synthetic cell
    /// sets exercised through the public trajectory API.
    #[test]
    fn geohash_load_save_is_identity(
        paths in proptest::collection::vec((0usize..40, 0u8..3), 1..10),
        depth in 20u8..40,
    ) {
        use geodabs_geo::Point;
        use geodabs_traj::Trajectory;
        let start = Point::new(51.5074, -0.1278).unwrap();
        let mut index = GeohashIndex::new(depth);
        let trajectories: Vec<Trajectory> = paths
            .iter()
            .map(|&(len, dir)| {
                (0..len + 2)
                    .map(|i| start.destination(dir as f64 * 90.0, i as f64 * 120.0))
                    .collect()
            })
            .collect();
        for (i, t) in trajectories.iter().enumerate() {
            index.insert(TrajId::new(i as u32), t);
        }
        // A removal leaves a vacant slot behind.
        index.remove(TrajId::new(0));
        let decoded = GeohashIndex::from_snapshot(&index.to_snapshot()).expect("roundtrip");
        prop_assert_eq!(decoded.len(), index.len());
        prop_assert_eq!(decoded.term_count(), index.term_count());
        prop_assert_eq!(decoded.to_snapshot(), index.to_snapshot());
        for t in &trajectories {
            prop_assert_eq!(
                decoded.search(t, &SearchOptions::default()),
                index.search(t, &SearchOptions::default())
            );
        }
    }

    /// Bit flips in a geohash snapshot never panic.
    #[test]
    fn geohash_corruption_never_panics(
        offset_seed in 0usize..10_000,
        xor in 1u8..=255,
    ) {
        use geodabs_geo::Point;
        use geodabs_traj::Trajectory;
        let start = Point::new(51.5074, -0.1278).unwrap();
        let t: Trajectory = (0..30).map(|i| start.destination(90.0, i as f64 * 120.0)).collect();
        let mut index = GeohashIndex::new(36);
        index.insert(TrajId::new(3), &t);
        let mut bytes = index.to_snapshot();
        let offset = offset_seed % bytes.len();
        bytes[offset] ^= xor;
        let err = GeohashIndex::from_snapshot(&bytes).expect_err("always detected");
        prop_assert!(!err.to_string().is_empty());
    }
}

/// Fixed adversarial cases that random corruption is unlikely to hit.
#[test]
fn crafted_v1_length_prefixes_are_rejected() {
    let mut index = GeodabIndex::new(GeodabConfig::default());
    index.insert_fingerprints(TrajId::new(0), Fingerprints::from_ordered(vec![1, 2, 3]));
    let bytes = encode_v1(&index);
    // The per-entry fingerprint count sits right after the entry id;
    // inflate it so it claims far more payload than the stream holds.
    let count_offset = 4 + 2 + 10 + 8 + 4;
    let mut crafted = bytes.clone();
    crafted[count_offset..count_offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(decode(&crafted), Err(SnapshotError::Truncated)));

    // An entry-count header promising more records than exist.
    let mut crafted = bytes;
    let count_offset = 4 + 2 + 10;
    crafted[count_offset..count_offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(decode(&crafted), Err(SnapshotError::Truncated)));
}

#[test]
fn empty_input_and_foreign_files_are_rejected() {
    assert!(matches!(decode(b""), Err(SnapshotError::BadMagic)));
    assert!(matches!(decode(b"GDA"), Err(SnapshotError::BadMagic)));
    assert!(matches!(
        decode(b"PK\x03\x04zipfile"),
        Err(SnapshotError::BadMagic)
    ));
    // Valid magic, then nothing: truncated header.
    assert!(matches!(decode(b"GDAB"), Err(SnapshotError::Truncated)));
}

#[test]
fn file_roundtrip_through_save_and_load() {
    let dir = std::env::temp_dir().join("geodabs-codec-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("roundtrip.gdab");
    let index = index_of(&[vec![1, 2, 3], vec![2, 3, 4]]);
    let written = index.save_to(&path).expect("save");
    assert_eq!(written, std::fs::metadata(&path).expect("stat").len());
    let loaded = GeodabIndex::load_from(&path).expect("load");
    assert_eq!(loaded.len(), index.len());
    assert!(matches!(
        GeodabIndex::load_from(dir.join("does-not-exist.gdab")),
        Err(SnapshotError::Io(_))
    ));
}
