//! Property tests pinning the binary persistence format before future
//! versions extend it: `decode ∘ encode ≡ id` over random corpora, and
//! malformed input (truncation, bad magic, header corruption) must
//! surface as a [`CodecError`], never a panic or a silently-wrong index.

use geodabs_core::{Fingerprints, GeodabConfig};
use geodabs_index::codec::{decode, encode, CodecError};
use geodabs_index::{GeodabIndex, SearchOptions, TrajectoryIndex};
use geodabs_traj::TrajId;
use proptest::prelude::*;

/// Builds an index holding the given raw fingerprint sequences (ids get
/// a stride so they are non-dense, as after deletions).
fn index_of(sets: &[Vec<u32>]) -> GeodabIndex {
    let mut index = GeodabIndex::new(GeodabConfig::default());
    for (i, ordered) in sets.iter().enumerate() {
        index.insert_fingerprints(
            TrajId::new((i * 3 + 1) as u32),
            Fingerprints::from_ordered(ordered.clone()),
        );
    }
    index
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round trip preserves every fingerprint sequence (ordered view
    /// included — the part a set-based bug would drop), the config and
    /// the rankings.
    #[test]
    fn decode_encode_is_identity(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..100_000, 0..40), 0..20),
        query in proptest::collection::vec(0u32..100_000, 0..40),
    ) {
        let original = index_of(&sets);
        let decoded = decode(&encode(&original)).expect("roundtrip");
        prop_assert_eq!(decoded.len(), original.len());
        prop_assert_eq!(decoded.term_count(), original.term_count());
        prop_assert_eq!(decoded.config(), original.config());
        for (id, fp) in original.iter_fingerprints() {
            prop_assert_eq!(decoded.fingerprints(id), Some(fp));
        }
        // Same bytes out again: encoding is deterministic.
        prop_assert_eq!(encode(&decoded), encode(&original));
        // And the decoded index ranks identically.
        let query = Fingerprints::from_ordered(query);
        for options in [
            SearchOptions::default(),
            SearchOptions::default().limit(3).max_distance(0.8),
        ] {
            prop_assert_eq!(
                decoded.search_fingerprints(&query, &options),
                original.search_fingerprints(&query, &options)
            );
        }
    }

    /// Every strict prefix of a valid encoding fails to decode with a
    /// structured error — no panic, no partial index.
    #[test]
    fn truncation_always_errors(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..50_000, 0..20), 0..8),
        cut_seed in 0usize..10_000,
    ) {
        let bytes = encode(&index_of(&sets));
        let cut = cut_seed % bytes.len();
        let err = decode(&bytes[..cut]).expect_err("truncated input must fail");
        prop_assert!(
            matches!(err, CodecError::Truncated | CodecError::BadMagic),
            "cut at {}: {:?}", cut, err
        );
    }

    /// Corrupting the magic is always rejected as `BadMagic`.
    #[test]
    fn bad_magic_always_errors(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..50_000, 0..10), 0..4),
        byte in 0usize..4,
        xor in 1u8..=255,
    ) {
        let mut bytes = encode(&index_of(&sets));
        bytes[byte] ^= xor;
        prop_assert_eq!(decode(&bytes).err(), Some(CodecError::BadMagic));
    }

    /// Arbitrary bit flips anywhere in the stream never panic: they
    /// either decode (the flip hit fingerprint payload, yielding a
    /// different but well-formed index) or fail with a codec error.
    #[test]
    fn random_corruption_never_panics(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..50_000, 0..10), 1..6),
        offset_seed in 0usize..10_000,
        xor in 1u8..=255,
    ) {
        let mut bytes = encode(&index_of(&sets));
        let offset = offset_seed % bytes.len();
        bytes[offset] ^= xor;
        match decode(&bytes) {
            Ok(index) => {
                // Whatever decoded is internally consistent.
                prop_assert!(index.len() <= sets.len());
            }
            Err(e) => {
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}

/// Fixed adversarial cases that random corruption is unlikely to hit.
#[test]
fn crafted_length_prefixes_are_rejected() {
    let mut index = GeodabIndex::new(GeodabConfig::default());
    index.insert_fingerprints(TrajId::new(0), Fingerprints::from_ordered(vec![1, 2, 3]));
    let bytes = encode(&index);
    // The per-entry fingerprint count sits right after the entry id;
    // inflate it so it claims far more payload than the stream holds.
    let count_offset = 4 + 2 + 10 + 8 + 4;
    let mut crafted = bytes.clone();
    crafted[count_offset..count_offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(decode(&crafted).err(), Some(CodecError::Truncated));

    // An entry-count header promising more records than exist.
    let mut crafted = bytes;
    let count_offset = 4 + 2 + 10;
    crafted[count_offset..count_offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(decode(&crafted).err(), Some(CodecError::Truncated));
}

#[test]
fn empty_input_and_foreign_files_are_rejected() {
    assert_eq!(decode(b"").err(), Some(CodecError::BadMagic));
    assert_eq!(decode(b"GDA").err(), Some(CodecError::BadMagic));
    assert_eq!(
        decode(b"PK\x03\x04zipfile").err(),
        Some(CodecError::BadMagic)
    );
    // Valid magic, then nothing: truncated header.
    assert_eq!(decode(b"GDAB").err(), Some(CodecError::Truncated));
}
