//! A synthetic world-scale activity model (Section VI-E of the paper).
//!
//! Figure 15 of the paper plots the number of trajectories per 16-bit
//! geohash over a road network extracted from the full OpenStreetMap dump,
//! observing very dense peaks (the highest around Mexico City) separated
//! by voids (oceans). Since the OSM dump is unavailable offline, this
//! module substitutes a generative model with the same relevant shape:
//!
//! * population centers with **power-law (Zipf) weights** placed in
//!   continental latitude bands — heavy peaks,
//! * most of the longitude/latitude space left empty — oceans/voids,
//! * trajectories scattered around their center with a Gaussian spread.
//!
//! What the downstream experiments need from this distribution is (a) its
//! heavy skew across 16-bit cells and (b) its sparsity over the whole
//! cell space; both are preserved.

use geodabs_geo::{Geohash, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use crate::gauss::Gaussian;

/// Configuration of the world activity model.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// Number of population centers (cities).
    pub cities: usize,
    /// Number of trajectories to distribute over the centers.
    pub trajectories: u64,
    /// Zipf exponent of the city weights (1.0 ≈ classic city-size law).
    pub zipf_exponent: f64,
    /// Gaussian spread of trajectories around their city, in degrees.
    pub city_spread_deg: f64,
    /// Geohash depth of the histogram cells (the paper uses 16 bits).
    pub cell_depth: u8,
}

impl Default for WorldConfig {
    fn default() -> WorldConfig {
        WorldConfig {
            cities: 2_000,
            trajectories: 1_000_000,
            zipf_exponent: 1.07,
            city_spread_deg: 0.6,
            cell_depth: 16,
        }
    }
}

/// Latitude bands hosting the population centers, with sampling weights
/// roughly matching where people live (most mass between 20°N and 60°N).
const LAT_BANDS: &[(f64, f64, f64)] = &[
    // (min_lat, max_lat, weight)
    (-45.0, -10.0, 0.15),
    (-10.0, 20.0, 0.25),
    (20.0, 45.0, 0.40),
    (45.0, 60.0, 0.20),
];

/// The histogram of trajectories per geohash cell produced by the model.
#[derive(Debug, Clone)]
pub struct WorldActivity {
    cell_depth: u8,
    counts: HashMap<u64, u64>,
}

impl WorldActivity {
    /// Generates the activity histogram. Deterministic per seed.
    pub fn generate(cfg: &WorldConfig, seed: u64) -> WorldActivity {
        assert!(cfg.cities > 0, "need at least one city");
        assert!(
            (1..=32).contains(&cfg.cell_depth),
            "cell depth must be 1..=32"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gauss = Gaussian::new();
        // Place the cities.
        let mut cities = Vec::with_capacity(cfg.cities);
        for _ in 0..cfg.cities {
            let band = pick_band(&mut rng);
            let lat = rng.random_range(band.0..band.1);
            let lon = rng.random_range(-180.0..180.0);
            cities.push(Point::clamped(lat, lon));
        }
        // Zipf weights -> cumulative distribution.
        let weights: Vec<f64> = (1..=cfg.cities)
            .map(|rank| 1.0 / (rank as f64).powf(cfg.zipf_exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(cfg.cities);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cumulative.push(acc);
        }
        // Scatter the trajectories.
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..cfg.trajectories {
            let u: f64 = rng.random();
            let city = cumulative.partition_point(|&c| c < u).min(cfg.cities - 1);
            let center = cities[city];
            let lat = center.lat() + gauss.sample(&mut rng, cfg.city_spread_deg);
            let lon = center.lon() + gauss.sample(&mut rng, cfg.city_spread_deg);
            let p = Point::clamped(lat.clamp(-89.9, 89.9), wrap_lon(lon));
            let cell = Geohash::encode(p, cfg.cell_depth)
                .expect("validated depth")
                .bits();
            *counts.entry(cell).or_insert(0) += 1;
        }
        WorldActivity {
            cell_depth: cfg.cell_depth,
            counts,
        }
    }

    /// Depth of the histogram cells, in bits.
    pub fn cell_depth(&self) -> u8 {
        self.cell_depth
    }

    /// Trajectory count per non-empty cell (cell bits -> count).
    pub fn counts(&self) -> &HashMap<u64, u64> {
        &self.counts
    }

    /// The histogram as `(cell, count)` sorted by cell (Z-order), i.e. the
    /// x-axis of Figure 15.
    pub fn sorted_counts(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.counts.iter().map(|(&c, &n)| (c, n)).collect();
        v.sort_unstable();
        v
    }

    /// Total number of trajectories.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Fraction of the cell space that is non-empty; small, because most
    /// of the planet is ocean or uninhabited.
    pub fn occupancy(&self) -> f64 {
        self.counts.len() as f64 / 2f64.powi(i32::from(self.cell_depth))
    }

    /// The count of the busiest cell.
    pub fn peak(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0)
    }
}

fn pick_band(rng: &mut StdRng) -> (f64, f64) {
    let total: f64 = LAT_BANDS.iter().map(|b| b.2).sum();
    let mut u: f64 = rng.random_range(0.0..total);
    for &(lo, hi, w) in LAT_BANDS {
        if u < w {
            return (lo, hi);
        }
        u -= w;
    }
    let last = LAT_BANDS[LAT_BANDS.len() - 1];
    (last.0, last.1)
}

fn wrap_lon(lon: f64) -> f64 {
    let mut l = lon;
    while l > 180.0 {
        l -= 360.0;
    }
    while l < -180.0 {
        l += 360.0;
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WorldActivity {
        WorldActivity::generate(
            &WorldConfig {
                cities: 200,
                trajectories: 50_000,
                ..WorldConfig::default()
            },
            1,
        )
    }

    #[test]
    fn totals_are_conserved() {
        let w = small();
        assert_eq!(w.total(), 50_000);
        assert_eq!(w.cell_depth(), 16);
    }

    #[test]
    fn distribution_is_heavily_skewed() {
        let w = small();
        // The busiest cell dwarfs the average non-empty cell, like the
        // Mexico City peak of Figure 15.
        let avg = w.total() as f64 / w.counts().len() as f64;
        assert!(
            w.peak() as f64 > 10.0 * avg,
            "peak {} vs avg {avg:.1}",
            w.peak()
        );
    }

    #[test]
    fn most_of_the_world_is_empty() {
        let w = small();
        assert!(w.occupancy() < 0.25, "occupancy {}", w.occupancy());
    }

    #[test]
    fn sorted_counts_are_sorted_and_complete() {
        let w = small();
        let sc = w.sorted_counts();
        assert_eq!(sc.len(), w.counts().len());
        assert!(sc.windows(2).all(|p| p[0].0 < p[1].0));
        assert_eq!(sc.iter().map(|&(_, n)| n).sum::<u64>(), w.total());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = WorldConfig {
            cities: 50,
            trajectories: 5_000,
            ..WorldConfig::default()
        };
        let a = WorldActivity::generate(&cfg, 3);
        let b = WorldActivity::generate(&cfg, 3);
        assert_eq!(a.sorted_counts(), b.sorted_counts());
        let c = WorldActivity::generate(&cfg, 4);
        assert_ne!(a.sorted_counts(), c.sorted_counts());
    }

    #[test]
    fn cells_fit_the_configured_depth() {
        let w = small();
        for &cell in w.counts().keys() {
            assert!(cell < 1 << 16);
        }
    }

    #[test]
    #[should_panic(expected = "at least one city")]
    fn zero_cities_panics() {
        let _ = WorldActivity::generate(
            &WorldConfig {
                cities: 0,
                ..WorldConfig::default()
            },
            0,
        );
    }
}
