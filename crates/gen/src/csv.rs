//! Plain-text CSV interchange for trajectory records.
//!
//! The synthetic datasets are deterministic, but exporting them lets the
//! trajectories be inspected, plotted, or consumed by external tools —
//! and real GPS recordings in the same shape can be imported and indexed.
//! Format (header included):
//!
//! ```text
//! id,route,forward,seq,lat,lon
//! 0,0,1,0,51.507400,-0.127800
//! ...
//! ```
//!
//! One row per point; `seq` is the point's position in its trajectory and
//! must be contiguous from zero per `id`.

use geodabs_geo::Point;
use geodabs_traj::{TrajId, Trajectory};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use crate::dataset::TrajectoryRecord;

/// Errors reading trajectory CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header line is missing or has the wrong columns.
    BadHeader(String),
    /// A data line failed to parse.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error reading trajectory csv: {e}"),
            CsvError::BadHeader(h) => write!(f, "unexpected csv header {h:?}"),
            CsvError::BadLine { line, reason } => {
                write!(f, "bad csv line {line}: {reason}")
            }
        }
    }
}

impl Error for CsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> CsvError {
        CsvError::Io(e)
    }
}

const HEADER: &str = "id,route,forward,seq,lat,lon";

/// Writes trajectory records as CSV.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_records<W: Write>(records: &[TrajectoryRecord], mut w: W) -> Result<(), CsvError> {
    writeln!(w, "{HEADER}")?;
    for r in records {
        for (seq, p) in r.trajectory.iter().enumerate() {
            writeln!(
                w,
                "{},{},{},{},{:.7},{:.7}",
                r.id.raw(),
                r.route,
                u8::from(r.forward),
                seq,
                p.lat(),
                p.lon()
            )?;
        }
    }
    Ok(())
}

/// Reads trajectory records from CSV written by [`write_records`] (or any
/// data in the same shape). Points of each trajectory must appear in
/// `seq` order, grouped by `id`.
///
/// # Errors
///
/// Returns a [`CsvError`] for I/O problems, an unexpected header or
/// malformed rows (bad numbers, out-of-range coordinates, non-contiguous
/// sequence numbers).
pub fn read_records<R: BufRead>(reader: R) -> Result<Vec<TrajectoryRecord>, CsvError> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| CsvError::BadHeader(String::new()))??;
    if header.trim() != HEADER {
        return Err(CsvError::BadHeader(header));
    }
    let mut records: Vec<TrajectoryRecord> = Vec::new();
    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let bad = |reason: &str| CsvError::BadLine {
            line: line_no,
            reason: reason.to_string(),
        };
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 6 {
            return Err(bad(&format!("expected 6 fields, got {}", fields.len())));
        }
        let id: u32 = fields[0].parse().map_err(|_| bad("invalid id"))?;
        let route: usize = fields[1].parse().map_err(|_| bad("invalid route"))?;
        let forward = match fields[2] {
            "1" => true,
            "0" => false,
            _ => return Err(bad("forward must be 0 or 1")),
        };
        let seq: usize = fields[3].parse().map_err(|_| bad("invalid seq"))?;
        let lat: f64 = fields[4].parse().map_err(|_| bad("invalid lat"))?;
        let lon: f64 = fields[5].parse().map_err(|_| bad("invalid lon"))?;
        let point = Point::new(lat, lon).map_err(|e| bad(&format!("invalid coordinates: {e}")))?;
        let id = TrajId::new(id);
        match records.last_mut() {
            Some(last) if last.id == id => {
                if seq != last.trajectory.len() {
                    return Err(bad(&format!(
                        "non-contiguous seq {seq}, expected {}",
                        last.trajectory.len()
                    )));
                }
                if last.route != route || last.forward != forward {
                    return Err(bad("route/forward changed mid-trajectory"));
                }
                last.trajectory.push(point);
            }
            _ => {
                if records.iter().any(|r| r.id == id) {
                    return Err(bad("trajectory rows are not grouped by id"));
                }
                if seq != 0 {
                    return Err(bad("first row of a trajectory must have seq 0"));
                }
                records.push(TrajectoryRecord {
                    id,
                    trajectory: Trajectory::new(vec![point]),
                    route,
                    forward,
                });
            }
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetConfig};
    use geodabs_roadnet::generators::{grid_network, GridConfig};

    fn sample_records() -> Vec<TrajectoryRecord> {
        let net = grid_network(&GridConfig::default(), 42);
        let ds = Dataset::generate(
            &net,
            &DatasetConfig {
                routes: 2,
                per_direction: 2,
                queries: 1,
                ..DatasetConfig::default()
            },
            3,
        )
        .unwrap();
        ds.records().to_vec()
    }

    #[test]
    fn roundtrip_preserves_records() {
        let records = sample_records();
        let mut buf = Vec::new();
        write_records(&records, &mut buf).unwrap();
        let parsed = read_records(buf.as_slice()).unwrap();
        assert_eq!(parsed.len(), records.len());
        for (a, b) in records.iter().zip(&parsed) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.route, b.route);
            assert_eq!(a.forward, b.forward);
            assert_eq!(a.trajectory.len(), b.trajectory.len());
            // Coordinates roundtrip through 7 decimal places (~1 cm).
            for (p, q) in a.trajectory.iter().zip(b.trajectory.iter()) {
                assert!(p.haversine_distance(q) < 0.02, "{p} vs {q}");
            }
        }
    }

    #[test]
    fn header_is_validated() {
        let err = read_records("lat,lon\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::BadHeader(_)), "{err}");
        let err = read_records("".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::BadHeader(_) | CsvError::Io(_)));
    }

    #[test]
    fn malformed_rows_are_rejected_with_line_numbers() {
        let cases = [
            (
                "id,route,forward,seq,lat,lon\n1,0,1,0,91.0,0.0\n",
                "coordinates",
            ),
            ("id,route,forward,seq,lat,lon\n1,0,2,0,1.0,0.0\n", "forward"),
            ("id,route,forward,seq,lat,lon\n1,0,1,5,1.0,0.0\n", "seq 0"),
            (
                "id,route,forward,seq,lat,lon\nx,0,1,0,1.0,0.0\n",
                "invalid id",
            ),
            ("id,route,forward,seq,lat,lon\n1,0,1,0,1.0\n", "6 fields"),
        ];
        for (input, needle) in cases {
            let err = read_records(input.as_bytes()).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("line 2"), "{msg}");
            assert!(msg.contains(needle), "{msg} should mention {needle}");
        }
    }

    #[test]
    fn non_contiguous_seq_is_rejected() {
        let input = "id,route,forward,seq,lat,lon\n\
                     1,0,1,0,1.0,0.0\n\
                     1,0,1,2,1.0,0.1\n";
        let err = read_records(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("non-contiguous"), "{err}");
    }

    #[test]
    fn interleaved_ids_are_rejected() {
        let input = "id,route,forward,seq,lat,lon\n\
                     1,0,1,0,1.0,0.0\n\
                     2,0,1,0,1.0,0.1\n\
                     1,0,1,1,1.0,0.2\n";
        let err = read_records(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("grouped"), "{err}");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let input = "id,route,forward,seq,lat,lon\n\
                     1,0,1,0,1.0,0.0\n\
                     \n\
                     1,0,1,1,1.0,0.1\n";
        let parsed = read_records(input.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].trajectory.len(), 2);
    }
}
