//! Sampling trajectories from routes.
//!
//! "These trajectories are sampled uniformly at a rate of one point every
//! second. The speed of the moving entities is based on the route duration
//! […]. In addition, we add 20 meters of random Gaussian noise to every
//! sampled point" (Section VI-A1 of the paper).

use geodabs_geo::Point;
use geodabs_roadnet::Route;
use geodabs_traj::Trajectory;
use rand::Rng;

use crate::gauss::Gaussian;

/// How a route is turned into a GPS-like trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerConfig {
    /// Seconds between consecutive samples (the paper uses 1 Hz).
    pub period_s: f64,
    /// Standard deviation of the positional noise, in meters (paper: 20).
    pub noise_sigma_m: f64,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            period_s: 1.0,
            noise_sigma_m: 20.0,
        }
    }
}

/// Walks the route at the free-flow speed of each edge and emits one noisy
/// point every `period_s` seconds (plus the exact arrival point).
///
/// Returns an empty trajectory for an empty route and a single point for a
/// single-node route.
///
/// # Panics
///
/// Panics if `period_s` is not strictly positive or the noise is negative.
pub fn sample_route<R: Rng + ?Sized>(
    route: &Route,
    cfg: &SamplerConfig,
    rng: &mut R,
) -> Trajectory {
    assert!(cfg.period_s > 0.0, "sampling period must be positive");
    assert!(cfg.noise_sigma_m >= 0.0, "noise must be non-negative");
    let pts = route.points();
    let mut gauss = Gaussian::new();
    let mut noisy = |p: Point, rng: &mut R| {
        if cfg.noise_sigma_m == 0.0 {
            return p;
        }
        // Independent N(0, sigma) displacements on each axis.
        let dn = gauss.sample(rng, cfg.noise_sigma_m);
        let de = gauss.sample(rng, cfg.noise_sigma_m);
        p.destination(0.0, dn).destination(90.0, de)
    };
    match pts.len() {
        0 => return Trajectory::default(),
        1 => return Trajectory::new(vec![noisy(pts[0], rng)]),
        _ => {}
    }
    // Average speed per segment from the route totals; per-edge speeds are
    // already folded into duration_seconds by the router.
    let speed = if route.duration_seconds() > 0.0 {
        route.length_meters() / route.duration_seconds()
    } else {
        1.0
    };
    let step_m = speed * cfg.period_s;
    let mut out = Vec::with_capacity((route.duration_seconds() / cfg.period_s) as usize + 2);
    // Distance (meters) left to travel before the next sample.
    let mut until_next = 0.0;
    for w in pts.windows(2) {
        let seg_len = w[0].haversine_distance(w[1]);
        if seg_len == 0.0 {
            continue;
        }
        let mut offset = until_next;
        while offset < seg_len {
            let p = w[0].lerp(w[1], offset / seg_len);
            out.push(noisy(p, rng));
            offset += step_m;
        }
        until_next = offset - seg_len;
    }
    out.push(noisy(pts[pts.len() - 1], rng));
    Trajectory::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_roadnet::generators::{grid_network, GridConfig};
    use geodabs_roadnet::router::shortest_path;
    use geodabs_roadnet::RoadNetwork;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_route() -> (RoadNetwork, Route) {
        let net = grid_network(&GridConfig::default(), 42);
        let from = net.node_ids().next().unwrap();
        let to = net.node_ids().nth(150).unwrap();
        let route = shortest_path(&net, from, to).unwrap();
        (net, route)
    }

    #[test]
    fn one_hz_sampling_yields_about_duration_points() {
        let (_, route) = test_route();
        let mut rng = StdRng::seed_from_u64(1);
        let t = sample_route(&route, &SamplerConfig::default(), &mut rng);
        let expected = route.duration_seconds();
        assert!(
            (t.len() as f64 - expected).abs() <= expected * 0.05 + 2.0,
            "{} points for {expected} seconds",
            t.len()
        );
    }

    #[test]
    fn noiseless_samples_lie_on_the_route() {
        let (_, route) = test_route();
        let cfg = SamplerConfig {
            noise_sigma_m: 0.0,
            ..SamplerConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let t = sample_route(&route, &cfg, &mut rng);
        // Every sample is within a meter of some route segment (checked
        // against segment endpoints' distance sum).
        for q in t.iter() {
            let on_route = route.points().windows(2).any(|w| {
                let d = w[0].haversine_distance(q) + q.haversine_distance(w[1]);
                (d - w[0].haversine_distance(w[1])).abs() < 1.0
            });
            assert!(on_route, "sample {q} is off-route");
        }
        assert_eq!(t.points().last(), route.points().last());
    }

    #[test]
    fn noise_displaces_points_by_about_sigma() {
        let (_, route) = test_route();
        let cfg = SamplerConfig::default(); // 20 m noise
        let mut rng = StdRng::seed_from_u64(3);
        let noisy = sample_route(&route, &cfg, &mut rng);
        let clean = sample_route(
            &route,
            &SamplerConfig {
                noise_sigma_m: 0.0,
                ..cfg
            },
            &mut StdRng::seed_from_u64(99),
        );
        let n = noisy.len().min(clean.len());
        let mean_disp: f64 = (0..n)
            .map(|i| noisy.points()[i].haversine_distance(clean.points()[i]))
            .sum::<f64>()
            / n as f64;
        // 2D Rayleigh mean = sigma * sqrt(pi/2) ≈ 25 m for sigma = 20.
        assert!(
            (15.0..40.0).contains(&mean_disp),
            "mean displacement {mean_disp}"
        );
    }

    #[test]
    fn slower_sampling_yields_fewer_points() {
        let (_, route) = test_route();
        let mut rng = StdRng::seed_from_u64(4);
        let fast = sample_route(&route, &SamplerConfig::default(), &mut rng);
        let slow = sample_route(
            &route,
            &SamplerConfig {
                period_s: 5.0,
                ..SamplerConfig::default()
            },
            &mut rng,
        );
        assert!(slow.len() * 4 < fast.len());
    }

    #[test]
    fn two_samplings_differ_but_follow_the_same_path() {
        let (_, route) = test_route();
        let t1 = sample_route(
            &route,
            &SamplerConfig::default(),
            &mut StdRng::seed_from_u64(5),
        );
        let t2 = sample_route(
            &route,
            &SamplerConfig::default(),
            &mut StdRng::seed_from_u64(6),
        );
        assert_ne!(t1, t2);
        // But their ground lengths are within noise of each other.
        let l1 = t1.ground_length_meters();
        let l2 = t2.ground_length_meters();
        assert!((l1 - l2).abs() / l1.max(l2) < 0.25, "{l1} vs {l2}");
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let (_, route) = test_route();
        let _ = sample_route(
            &route,
            &SamplerConfig {
                period_s: 0.0,
                ..SamplerConfig::default()
            },
            &mut StdRng::seed_from_u64(0),
        );
    }
}
