//! The dense synthetic dataset: routes, trajectory records, queries and
//! ground truth (Section VI-A1 of the paper).

use geodabs_roadnet::router::shortest_path;
use geodabs_roadnet::{NodeId, RoadNetError, RoadNetwork, Route};
use geodabs_traj::{TrajId, Trajectory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::sampler::{sample_route, SamplerConfig};

/// Parameters of the dataset generator.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Number of unique routes (paper: 5 000).
    pub routes: usize,
    /// Similar trajectories generated per direction (paper: 10).
    pub per_direction: usize,
    /// Also generate the return-path trajectories (paper: yes). This is
    /// what makes plain geohash indexes plateau at 0.5 precision.
    pub include_reverse: bool,
    /// Sampling configuration (1 Hz, 20 m noise by default).
    pub sampler: SamplerConfig,
    /// Routes shorter than this are rejected and re-drawn, in meters.
    pub min_route_m: f64,
    /// Number of query trajectories to generate (each from a distinct
    /// route, fresh noise, not part of the dataset).
    pub queries: usize,
    /// Maximum origin/destination draws per accepted route before giving
    /// up on the network.
    pub max_attempts_per_route: usize,
}

impl Default for DatasetConfig {
    /// A scaled-down default (50 routes) suitable for tests; benches
    /// override `routes` and `per_direction` to reach paper scale.
    fn default() -> DatasetConfig {
        DatasetConfig {
            routes: 50,
            per_direction: 10,
            include_reverse: true,
            sampler: SamplerConfig::default(),
            min_route_m: 2_000.0,
            queries: 10,
            max_attempts_per_route: 200,
        }
    }
}

/// One trajectory of the dataset with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryRecord {
    /// Dense identifier, usable in posting lists.
    pub id: TrajId,
    /// The noisy sampled trajectory.
    pub trajectory: Trajectory,
    /// Index of the route this trajectory was sampled from.
    pub route: usize,
    /// Whether it follows the route forward or on the return path.
    pub forward: bool,
}

/// A query trajectory with its provenance (the ground truth is every
/// dataset record with the same route and direction).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The noisy query trajectory, freshly sampled (not in the dataset).
    pub trajectory: Trajectory,
    /// Index of the route the query follows.
    pub route: usize,
    /// Direction of the query along the route.
    pub forward: bool,
}

/// A dense trajectory dataset with queries and ground truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    routes: Vec<Route>,
    records: Vec<TrajectoryRecord>,
    queries: Vec<Query>,
}

impl Dataset {
    /// Generates the dataset on the given road network.
    ///
    /// Deterministic for a given `(network, config, seed)` triple.
    ///
    /// # Errors
    ///
    /// Returns [`RoadNetError::EmptyNetwork`] if the network has fewer
    /// than two nodes, and [`RoadNetError::NoPath`] if it repeatedly fails
    /// to draw a routable origin/destination pair (e.g. a fragmented
    /// network).
    pub fn generate(
        net: &RoadNetwork,
        cfg: &DatasetConfig,
        seed: u64,
    ) -> Result<Dataset, RoadNetError> {
        if net.node_count() < 2 {
            return Err(RoadNetError::EmptyNetwork);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut routes = Vec::with_capacity(cfg.routes);
        while routes.len() < cfg.routes {
            let route = draw_route(net, cfg, &mut rng)?;
            routes.push(route);
        }
        let mut records = Vec::new();
        for (ri, route) in routes.iter().enumerate() {
            let reverse = route.reversed();
            for _ in 0..cfg.per_direction {
                records.push(TrajectoryRecord {
                    id: TrajId::new(records.len() as u32),
                    trajectory: sample_route(route, &cfg.sampler, &mut rng),
                    route: ri,
                    forward: true,
                });
            }
            if cfg.include_reverse {
                for _ in 0..cfg.per_direction {
                    records.push(TrajectoryRecord {
                        id: TrajId::new(records.len() as u32),
                        trajectory: sample_route(&reverse, &cfg.sampler, &mut rng),
                        route: ri,
                        forward: false,
                    });
                }
            }
        }
        let mut queries = Vec::with_capacity(cfg.queries);
        for qi in 0..cfg.queries {
            let route_idx = qi % routes.len();
            let forward = true;
            let route = &routes[route_idx];
            queries.push(Query {
                trajectory: sample_route(route, &cfg.sampler, &mut rng),
                route: route_idx,
                forward,
            });
        }
        Ok(Dataset {
            routes,
            records,
            queries,
        })
    }

    /// The underlying routes.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// All trajectory records, id order.
    pub fn records(&self) -> &[TrajectoryRecord] {
        &self.records
    }

    /// The generated queries.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Ground truth: ids of the records relevant to `query` — same route,
    /// same direction (the "10 similar trajectories" of the paper).
    pub fn relevant_ids(&self, query: &Query) -> HashSet<TrajId> {
        self.records
            .iter()
            .filter(|r| r.route == query.route && r.forward == query.forward)
            .map(|r| r.id)
            .collect()
    }

    /// Ids of records sharing the query's route in **either** direction —
    /// what a direction-blind index (plain geohash) retrieves at best.
    pub fn same_route_ids(&self, query: &Query) -> HashSet<TrajId> {
        self.records
            .iter()
            .filter(|r| r.route == query.route)
            .map(|r| r.id)
            .collect()
    }

    /// Total number of points in the dataset.
    pub fn total_points(&self) -> usize {
        self.records.iter().map(|r| r.trajectory.len()).sum()
    }
}

fn draw_route(
    net: &RoadNetwork,
    cfg: &DatasetConfig,
    rng: &mut StdRng,
) -> Result<Route, RoadNetError> {
    let n = net.node_count() as u32;
    let mut last_err = RoadNetError::EmptyNetwork;
    for _ in 0..cfg.max_attempts_per_route {
        let from = NodeId::new(rng.random_range(0..n));
        let to = NodeId::new(rng.random_range(0..n));
        if from == to {
            continue;
        }
        match shortest_path(net, from, to) {
            Ok(route) if route.length_meters() >= cfg.min_route_m => return Ok(route),
            Ok(_) => continue,
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_roadnet::generators::{grid_network, GridConfig};

    fn small_dataset() -> (RoadNetwork, Dataset) {
        let net = grid_network(&GridConfig::default(), 42);
        let cfg = DatasetConfig {
            routes: 4,
            per_direction: 3,
            queries: 4,
            ..DatasetConfig::default()
        };
        let ds = Dataset::generate(&net, &cfg, 7).unwrap();
        (net, ds)
    }

    #[test]
    fn record_counts_match_config() {
        let (_, ds) = small_dataset();
        assert_eq!(ds.routes().len(), 4);
        assert_eq!(ds.records().len(), 4 * 3 * 2);
        assert_eq!(ds.queries().len(), 4);
        // Ids are dense and ordered.
        for (i, r) in ds.records().iter().enumerate() {
            assert_eq!(r.id.raw() as usize, i);
        }
    }

    #[test]
    fn forward_and_reverse_trajectories_per_route() {
        let (_, ds) = small_dataset();
        for route in 0..4 {
            let fwd = ds
                .records()
                .iter()
                .filter(|r| r.route == route && r.forward)
                .count();
            let rev = ds
                .records()
                .iter()
                .filter(|r| r.route == route && !r.forward)
                .count();
            assert_eq!((fwd, rev), (3, 3));
        }
    }

    #[test]
    fn routes_respect_min_length() {
        let (_, ds) = small_dataset();
        for r in ds.routes() {
            assert!(r.length_meters() >= 2_000.0);
        }
    }

    #[test]
    fn ground_truth_is_same_route_same_direction() {
        let (_, ds) = small_dataset();
        let q = &ds.queries()[0];
        let relevant = ds.relevant_ids(q);
        assert_eq!(relevant.len(), 3);
        for id in &relevant {
            let rec = &ds.records()[id.raw() as usize];
            assert_eq!(rec.route, q.route);
            assert!(rec.forward);
        }
        let same_route = ds.same_route_ids(q);
        assert_eq!(same_route.len(), 6);
        assert!(relevant.is_subset(&same_route));
    }

    #[test]
    fn generation_is_deterministic() {
        let net = grid_network(&GridConfig::default(), 42);
        let cfg = DatasetConfig {
            routes: 2,
            per_direction: 2,
            queries: 1,
            ..DatasetConfig::default()
        };
        let a = Dataset::generate(&net, &cfg, 9).unwrap();
        let b = Dataset::generate(&net, &cfg, 9).unwrap();
        assert_eq!(a.records(), b.records());
        assert_eq!(a.queries(), b.queries());
        let c = Dataset::generate(&net, &cfg, 10).unwrap();
        assert_ne!(a.records(), c.records());
    }

    #[test]
    fn trajectories_are_one_hz_length() {
        let (_, ds) = small_dataset();
        for r in ds.records() {
            let route = &ds.routes()[r.route];
            let expected = route.duration_seconds();
            assert!(
                (r.trajectory.len() as f64 - expected).abs() <= expected * 0.05 + 2.0,
                "{} points for a {expected} s route",
                r.trajectory.len()
            );
        }
    }

    #[test]
    fn sibling_trajectories_are_similar_but_not_identical() {
        let (_, ds) = small_dataset();
        let siblings: Vec<_> = ds
            .records()
            .iter()
            .filter(|r| r.route == 0 && r.forward)
            .collect();
        assert!(siblings.len() >= 2);
        assert_ne!(siblings[0].trajectory, siblings[1].trajectory);
        // Similar ground length.
        let l0 = siblings[0].trajectory.ground_length_meters();
        let l1 = siblings[1].trajectory.ground_length_meters();
        assert!((l0 - l1).abs() / l0.max(l1) < 0.3, "{l0} vs {l1}");
    }

    #[test]
    fn queries_are_not_dataset_members() {
        let (_, ds) = small_dataset();
        for q in ds.queries() {
            assert!(ds.records().iter().all(|r| r.trajectory != q.trajectory));
        }
    }

    #[test]
    fn tiny_network_errors() {
        let net = RoadNetwork::new();
        assert_eq!(
            Dataset::generate(&net, &DatasetConfig::default(), 1).err(),
            Some(RoadNetError::EmptyNetwork)
        );
    }

    #[test]
    fn no_reverse_option() {
        let net = grid_network(&GridConfig::default(), 42);
        let cfg = DatasetConfig {
            routes: 2,
            per_direction: 2,
            include_reverse: false,
            queries: 1,
            ..DatasetConfig::default()
        };
        let ds = Dataset::generate(&net, &cfg, 3).unwrap();
        assert_eq!(ds.records().len(), 4);
        assert!(ds.records().iter().all(|r| r.forward));
    }
}
