//! Synthetic dense-trajectory dataset generation (Section VI-A1 of the
//! paper).
//!
//! The paper found no public dataset dense enough to evaluate trajectory
//! fingerprinting and built its own: 5 000 routes constrained to the
//! London road network, each generating 10 similar trajectories per
//! direction, sampled at 1 Hz with 20 m of Gaussian noise — 100 000
//! trajectories in total, plus query trajectories with ground truth.
//! This crate reimplements that generator on top of the synthetic road
//! networks of [`geodabs_roadnet`]:
//!
//! * [`sampler`] — walk a route at its free-flow speed, emit one point per
//!   sampling period, perturb with Gaussian noise,
//! * [`dataset`] — routes, trajectory records, queries and ground truth,
//! * [`world`] — the world-scale activity model standing in for the full
//!   OpenStreetMap dump of Section VI-E (Figures 15 and 16).
//!
//! # Examples
//!
//! ```
//! use geodabs_gen::dataset::{Dataset, DatasetConfig};
//! use geodabs_roadnet::generators::{grid_network, GridConfig};
//!
//! let net = grid_network(&GridConfig::default(), 42);
//! let cfg = DatasetConfig { routes: 5, per_direction: 3, ..DatasetConfig::default() };
//! let ds = Dataset::generate(&net, &cfg, 7).expect("network is routable");
//! assert_eq!(ds.records().len(), 5 * 3 * 2); // forward + reverse
//! assert!(!ds.queries().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod dataset;
mod gauss;
pub mod sampler;
pub mod world;

pub use dataset::{Dataset, DatasetConfig, Query, TrajectoryRecord};
pub use gauss::Gaussian;
