use rand::Rng;

/// A zero-mean Gaussian sampler using the Box–Muller transform.
///
/// The offline dependency set has no `rand_distr`, so the generator
/// implements the transform directly: each call to [`Gaussian::sample`]
/// produces one normal deviate (the second of each Box–Muller pair is
/// cached).
#[derive(Debug, Clone, Default)]
pub struct Gaussian {
    spare: Option<f64>,
}

impl Gaussian {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Gaussian {
        Gaussian::default()
    }

    /// Draws one `N(0, sigma²)` deviate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R, sigma: f64) -> f64 {
        if let Some(z) = self.spare.take() {
            return z * sigma;
        }
        // Box–Muller on two uniforms in (0, 1].
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos() * sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_and_variance_are_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = Gaussian::new();
        let sigma = 20.0;
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng, sigma)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.5, "std {}", var.sqrt());
    }

    #[test]
    fn roughly_sixty_eight_percent_within_one_sigma() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = Gaussian::new();
        let n = 50_000;
        let within = (0..n)
            .filter(|_| g.sample(&mut rng, 1.0).abs() <= 1.0)
            .count();
        let frac = within as f64 / n as f64;
        assert!((frac - 0.6827).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(3);
            let mut g = Gaussian::new();
            (0..10).map(|_| g.sample(&mut rng, 5.0)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(3);
            let mut g = Gaussian::new();
            (0..10).map(|_| g.sample(&mut rng, 5.0)).collect()
        };
        assert_eq!(a, b);
    }
}
