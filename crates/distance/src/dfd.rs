use geodabs_geo::Point;
use geodabs_traj::Trajectory;

/// Discrete Fréchet Distance between two trajectories (Equation 4 of the
/// paper; Eiter & Mannila), using the haversine ground distance.
///
/// Computed with a rolling-row dynamic program in `O(|P|·|Q|)` time.
/// Returns `0.0` if both trajectories are empty and `f64::INFINITY` if
/// exactly one is empty.
///
/// ```
/// use geodabs_distance::dfd;
/// use geodabs_geo::Point;
/// use geodabs_traj::Trajectory;
///
/// # fn main() -> Result<(), geodabs_geo::GeoError> {
/// let a = Trajectory::new(vec![Point::new(0.0, 0.0)?, Point::new(0.0, 1.0)?]);
/// assert_eq!(dfd(&a, &a), 0.0);
/// # Ok(())
/// # }
/// ```
pub fn dfd(p: &Trajectory, q: &Trajectory) -> f64 {
    if p.is_empty() || q.is_empty() {
        return if p.is_empty() && q.is_empty() {
            0.0
        } else {
            f64::INFINITY
        };
    }
    dfd_points(p.points(), q.points())
}

/// Discrete Fréchet Distance over raw point slices; both must be
/// non-empty. This is the kernel BTM motif discovery calls for every
/// window pair.
///
/// # Panics
///
/// Panics if either slice is empty.
pub(crate) fn dfd_points(p: &[Point], q: &[Point]) -> f64 {
    assert!(
        !p.is_empty() && !q.is_empty(),
        "dfd requires non-empty inputs"
    );
    let m = q.len();
    let mut prev = vec![f64::INFINITY; m];
    let mut cur = vec![f64::INFINITY; m];
    for (i, &pi) in p.iter().enumerate() {
        for (j, &qj) in q.iter().enumerate() {
            let cost = pi.haversine_distance(qj);
            cur[j] = if i == 0 && j == 0 {
                cost
            } else if i == 0 {
                cost.max(cur[j - 1])
            } else if j == 0 {
                cost.max(prev[j])
            } else {
                cost.max(prev[j].min(cur[j - 1]).min(prev[j - 1]))
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new(lat, lon).unwrap()
    }

    fn t(coords: &[(f64, f64)]) -> Trajectory {
        coords.iter().map(|&(la, lo)| p(la, lo)).collect()
    }

    const DEG: f64 = 111_195.0;

    #[test]
    fn identical_trajectories_have_zero_distance() {
        let a = t(&[(0.0, 0.0), (0.5, 1.0), (0.0, 2.0)]);
        assert_eq!(dfd(&a, &a), 0.0);
    }

    #[test]
    fn empty_boundary_conditions() {
        let e = Trajectory::default();
        let a = t(&[(0.0, 0.0)]);
        assert_eq!(dfd(&e, &e), 0.0);
        assert_eq!(dfd(&a, &e), f64::INFINITY);
        assert_eq!(dfd(&e, &a), f64::INFINITY);
    }

    #[test]
    fn known_value_leash_length() {
        // Same example as the DTW test; the max-based coupling costs one
        // degree for the extra middle point.
        let a = t(&[(0.0, 0.0), (0.0, 1.0), (0.0, 2.0)]);
        let b = t(&[(0.0, 0.0), (0.0, 2.0)]);
        let d = dfd(&a, &b);
        assert!((d - DEG).abs() < DEG * 0.01, "got {d}");
    }

    #[test]
    fn parallel_lines_leash_is_the_gap() {
        let a: Trajectory = (0..10).map(|i| p(0.0, i as f64 * 0.001)).collect();
        let b: Trajectory = (0..10).map(|i| p(0.0005, i as f64 * 0.001)).collect();
        let d = dfd(&a, &b);
        let gap = p(0.0, 0.0).haversine_distance(p(0.0005, 0.0));
        assert!((d - gap).abs() < 1.0, "got {d}, gap {gap}");
    }

    #[test]
    fn lower_bounded_by_endpoint_distances() {
        let a = t(&[(0.0, 0.0), (0.0, 1.0)]);
        let b = t(&[(0.0, 0.5), (0.0, 3.0)]);
        let d = dfd(&a, &b);
        let first = p(0.0, 0.0).haversine_distance(p(0.0, 0.5));
        let last = p(0.0, 1.0).haversine_distance(p(0.0, 3.0));
        assert!(d >= first.max(last) - 1e-9);
    }

    #[test]
    fn oversampling_does_not_change_dfd_much() {
        // DFD is robust to sampling rate (max-based), unlike a sum.
        let sparse: Trajectory = (0..5).map(|i| p(0.0, i as f64 * 0.01)).collect();
        let dense: Trajectory = (0..17).map(|i| p(0.0, i as f64 * 0.0025)).collect();
        let d = dfd(&sparse, &dense);
        assert!(d < 0.005 * DEG, "got {d}");
    }

    proptest! {
        #[test]
        fn prop_symmetric_nonnegative_and_bounded_by_dtw(
            xs in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..10),
            ys in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..10),
        ) {
            let a = t(&xs);
            let b = t(&ys);
            let d = dfd(&a, &b);
            prop_assert!(d >= 0.0);
            prop_assert!((d - dfd(&b, &a)).abs() < 1e-6 * d.max(1.0));
            // Any warping sum dominates the max along the same coupling.
            prop_assert!(crate::dtw(&a, &b) >= d - 1e-9);
        }

        #[test]
        fn prop_endpoint_lower_bound(
            xs in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..10),
            ys in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..10),
        ) {
            let a = t(&xs);
            let b = t(&ys);
            let d = dfd(&a, &b);
            let first = a.points()[0].haversine_distance(b.points()[0]);
            let last = a.points()[a.len() - 1].haversine_distance(b.points()[b.len() - 1]);
            prop_assert!(d >= first.max(last) - 1e-9);
        }

        #[test]
        fn prop_triangle_inequality(
            xs in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..8),
            ys in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..8),
            zs in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..8),
        ) {
            // DFD satisfies the triangle inequality (it is a metric on
            // curves up to reparametrization).
            let a = t(&xs);
            let b = t(&ys);
            let c = t(&zs);
            prop_assert!(dfd(&a, &c) <= dfd(&a, &b) + dfd(&b, &c) + 1e-6);
        }
    }
}
