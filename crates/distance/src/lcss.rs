//! Longest Common Subsequence similarity and Edit Distance on Real
//! sequences — two further classic trajectory measures.
//!
//! These are *extensions beyond the paper* (which evaluates DTW and DFD):
//! both appear throughout the trajectory-similarity literature as
//! threshold-based, outlier-robust alternatives, and they share the same
//! `O(n·m)` complexity that motivates fingerprinting in the first place.

use geodabs_traj::Trajectory;

/// LCSS similarity: the length of the longest common subsequence, where
/// two points "match" when within `epsilon_m` meters, normalized by the
/// shorter length. Ranges over `[0, 1]`; `1.0` means one trajectory is
/// (within epsilon) a subsequence of the other. Two empty trajectories
/// are fully similar; an empty vs non-empty pair scores `0.0`.
///
/// # Panics
///
/// Panics if `epsilon_m` is negative.
pub fn lcss_similarity(p: &Trajectory, q: &Trajectory, epsilon_m: f64) -> f64 {
    assert!(epsilon_m >= 0.0, "epsilon must be non-negative");
    if p.is_empty() || q.is_empty() {
        return if p.is_empty() && q.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let (long, short) = if p.len() >= q.len() { (p, q) } else { (q, p) };
    let sp = short.points();
    let m = sp.len();
    let mut prev = vec![0usize; m + 1];
    let mut cur = vec![0usize; m + 1];
    for &pi in long.points() {
        for (j, &qj) in sp.iter().enumerate() {
            cur[j + 1] = if pi.haversine_distance(qj) <= epsilon_m {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m] as f64 / m as f64
}

/// LCSS distance: `1 − lcss_similarity`.
///
/// # Panics
///
/// Panics if `epsilon_m` is negative.
pub fn lcss_distance(p: &Trajectory, q: &Trajectory, epsilon_m: f64) -> f64 {
    1.0 - lcss_similarity(p, q, epsilon_m)
}

/// Edit Distance on Real sequences (EDR): the minimal number of insert,
/// delete or substitute operations turning one trajectory into the other,
/// where two points are "equal" when within `epsilon_m` meters.
///
/// Returns the raw edit count (`0` for matching trajectories, up to
/// `max(|P|, |Q|)`).
///
/// # Panics
///
/// Panics if `epsilon_m` is negative.
pub fn edr(p: &Trajectory, q: &Trajectory, epsilon_m: f64) -> usize {
    assert!(epsilon_m >= 0.0, "epsilon must be non-negative");
    if p.is_empty() || q.is_empty() {
        return p.len().max(q.len());
    }
    let (long, short) = if p.len() >= q.len() { (p, q) } else { (q, p) };
    let sp = short.points();
    let m = sp.len();
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for (i, &pi) in long.points().iter().enumerate() {
        cur[0] = i + 1;
        for (j, &qj) in sp.iter().enumerate() {
            let subcost = usize::from(pi.haversine_distance(qj) > epsilon_m);
            cur[j + 1] = (prev[j] + subcost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_geo::Point;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new(lat, lon).unwrap()
    }

    fn line(n: usize, lat: f64) -> Trajectory {
        (0..n).map(|i| p(lat, i as f64 * 0.001)).collect()
    }

    #[test]
    fn identical_trajectories_are_fully_similar() {
        let a = line(10, 0.0);
        assert_eq!(lcss_similarity(&a, &a, 1.0), 1.0);
        assert_eq!(lcss_distance(&a, &a, 1.0), 0.0);
        assert_eq!(edr(&a, &a, 1.0), 0);
    }

    #[test]
    fn empty_boundary_conditions() {
        let e = Trajectory::default();
        let a = line(4, 0.0);
        assert_eq!(lcss_similarity(&e, &e, 1.0), 1.0);
        assert_eq!(lcss_similarity(&a, &e, 1.0), 0.0);
        assert_eq!(edr(&e, &e, 1.0), 0);
        assert_eq!(edr(&a, &e, 1.0), 4);
    }

    #[test]
    fn epsilon_controls_matching() {
        // Parallel lines ~55 m apart.
        let a = line(10, 0.0);
        let b = line(10, 0.0005);
        assert_eq!(lcss_similarity(&a, &b, 10.0), 0.0);
        assert_eq!(lcss_similarity(&a, &b, 100.0), 1.0);
        assert_eq!(edr(&a, &b, 10.0), 10);
        assert_eq!(edr(&a, &b, 100.0), 0);
    }

    #[test]
    fn lcss_is_robust_to_outliers() {
        // One wild GPS spike barely affects LCSS, unlike sum/max measures.
        let a = line(20, 0.0);
        let mut pts = a.points().to_vec();
        pts[10] = p(5.0, 5.0); // teleport
        let spiked = Trajectory::new(pts);
        let sim = lcss_similarity(&a, &spiked, 10.0);
        assert!((sim - 19.0 / 20.0).abs() < 1e-9, "sim {sim}");
        assert_eq!(edr(&a, &spiked, 10.0), 1);
    }

    #[test]
    fn subsequence_scores_full_similarity() {
        let long = line(20, 0.0);
        let sub = long.motif(5, 8);
        assert_eq!(lcss_similarity(&long, &sub, 1.0), 1.0);
        // EDR counts the unmatched remainder.
        assert_eq!(edr(&long, &sub, 1.0), 12);
    }

    #[test]
    fn edr_is_levenshtein_like() {
        // Deleting one point costs one edit.
        let a = line(10, 0.0);
        let mut pts = a.points().to_vec();
        pts.remove(4);
        let b = Trajectory::new(pts);
        assert_eq!(edr(&a, &b, 1.0), 1);
    }

    proptest! {
        #[test]
        fn prop_lcss_symmetric_and_bounded(
            xs in proptest::collection::vec((-0.5f64..0.5, -0.5f64..0.5), 0..12),
            ys in proptest::collection::vec((-0.5f64..0.5, -0.5f64..0.5), 0..12),
            eps in 1.0f64..100_000.0,
        ) {
            let a: Trajectory = xs.iter().map(|&(la, lo)| p(la, lo)).collect();
            let b: Trajectory = ys.iter().map(|&(la, lo)| p(la, lo)).collect();
            let s = lcss_similarity(&a, &b, eps);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - lcss_similarity(&b, &a, eps)).abs() < 1e-12);
        }

        #[test]
        fn prop_edr_symmetric_and_bounded(
            xs in proptest::collection::vec((-0.5f64..0.5, -0.5f64..0.5), 0..12),
            ys in proptest::collection::vec((-0.5f64..0.5, -0.5f64..0.5), 0..12),
            eps in 1.0f64..100_000.0,
        ) {
            let a: Trajectory = xs.iter().map(|&(la, lo)| p(la, lo)).collect();
            let b: Trajectory = ys.iter().map(|&(la, lo)| p(la, lo)).collect();
            let d = edr(&a, &b, eps);
            prop_assert_eq!(d, edr(&b, &a, eps));
            prop_assert!(d <= a.len().max(b.len()));
            prop_assert!(d >= a.len().abs_diff(b.len()));
        }

        #[test]
        fn prop_larger_epsilon_never_hurts(
            xs in proptest::collection::vec((-0.1f64..0.1, -0.1f64..0.1), 1..10),
            ys in proptest::collection::vec((-0.1f64..0.1, -0.1f64..0.1), 1..10),
        ) {
            let a: Trajectory = xs.iter().map(|&(la, lo)| p(la, lo)).collect();
            let b: Trajectory = ys.iter().map(|&(la, lo)| p(la, lo)).collect();
            let tight = lcss_similarity(&a, &b, 100.0);
            let loose = lcss_similarity(&a, &b, 10_000.0);
            prop_assert!(loose >= tight);
            prop_assert!(edr(&a, &b, 10_000.0) <= edr(&a, &b, 100.0));
        }
    }
}
