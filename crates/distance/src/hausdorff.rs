//! Discrete Hausdorff distance — an extension beyond the paper.
//!
//! Hausdorff ignores ordering entirely (it treats trajectories as point
//! *sets*), which makes it the distance-measure analogue of the geohash
//! baseline index: like that index, it cannot distinguish a trajectory
//! from its reverse. Useful as a contrast against DFD in tests and
//! ablations.

use geodabs_traj::Trajectory;

/// Directed discrete Hausdorff distance: the farthest any point of `p` is
/// from its nearest point of `q`, in meters. Returns `0.0` when `p` is
/// empty and `f64::INFINITY` when only `q` is empty.
pub fn hausdorff_directed(p: &Trajectory, q: &Trajectory) -> f64 {
    if p.is_empty() {
        return 0.0;
    }
    if q.is_empty() {
        return f64::INFINITY;
    }
    p.iter()
        .map(|a| {
            q.iter()
                .map(|b| a.haversine_distance(b))
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0, f64::max)
}

/// Symmetric discrete Hausdorff distance: the maximum of the two directed
/// distances.
pub fn hausdorff(p: &Trajectory, q: &Trajectory) -> f64 {
    hausdorff_directed(p, q).max(hausdorff_directed(q, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfd;
    use geodabs_geo::Point;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new(lat, lon).unwrap()
    }

    fn t(coords: &[(f64, f64)]) -> Trajectory {
        coords.iter().map(|&(la, lo)| p(la, lo)).collect()
    }

    #[test]
    fn identical_sets_have_zero_distance() {
        let a = t(&[(0.0, 0.0), (0.0, 1.0)]);
        assert_eq!(hausdorff(&a, &a), 0.0);
        // Order blindness: the reverse is also at distance zero.
        assert_eq!(hausdorff(&a, &a.reversed()), 0.0);
    }

    #[test]
    fn empty_conventions() {
        let e = Trajectory::default();
        let a = t(&[(0.0, 0.0)]);
        assert_eq!(hausdorff_directed(&e, &a), 0.0);
        assert_eq!(hausdorff_directed(&a, &e), f64::INFINITY);
        assert_eq!(hausdorff(&a, &e), f64::INFINITY);
        assert_eq!(hausdorff(&e, &e), 0.0);
    }

    #[test]
    fn directed_is_asymmetric_on_subsets() {
        let long = t(&[(0.0, 0.0), (0.0, 1.0), (0.0, 2.0)]);
        let sub = t(&[(0.0, 0.0), (0.0, 1.0)]);
        // Every point of `sub` is on `long`…
        assert_eq!(hausdorff_directed(&sub, &long), 0.0);
        // …but `long` has a point one degree from `sub`.
        assert!(hausdorff_directed(&long, &sub) > 100_000.0);
    }

    #[test]
    fn parallel_lines_distance_is_the_gap() {
        let a: Trajectory = (0..10).map(|i| p(0.0, i as f64 * 0.001)).collect();
        let b: Trajectory = (0..10).map(|i| p(0.0005, i as f64 * 0.001)).collect();
        let gap = p(0.0, 0.0).haversine_distance(p(0.0005, 0.0));
        assert!((hausdorff(&a, &b) - gap).abs() < 1.0);
    }

    proptest! {
        #[test]
        fn prop_hausdorff_lower_bounds_dfd(
            xs in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..10),
            ys in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..10),
        ) {
            // DFD respects ordering, Hausdorff does not, so DFD can only
            // be larger or equal.
            let a = t(&xs);
            let b = t(&ys);
            prop_assert!(hausdorff(&a, &b) <= dfd(&a, &b) + 1e-9);
        }

        #[test]
        fn prop_symmetric_and_nonnegative(
            xs in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..10),
            ys in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..10),
        ) {
            let a = t(&xs);
            let b = t(&ys);
            let d = hausdorff(&a, &b);
            prop_assert!(d >= 0.0);
            prop_assert!((d - hausdorff(&b, &a)).abs() < 1e-9);
        }
    }
}
