use geodabs_traj::Trajectory;

/// Dynamic Time Warping distance between two trajectories (Equation 3 of
/// the paper), using the haversine ground distance between points.
///
/// Computed with a rolling-row dynamic program in `O(|P|·|Q|)` time and
/// `O(min(|P|, |Q|))` space. Returns `0.0` if both trajectories are empty
/// and `f64::INFINITY` if exactly one is empty, matching the recursive
/// definition's boundary conditions.
///
/// ```
/// use geodabs_distance::dtw;
/// use geodabs_geo::Point;
/// use geodabs_traj::Trajectory;
///
/// # fn main() -> Result<(), geodabs_geo::GeoError> {
/// let a = Trajectory::new(vec![Point::new(0.0, 0.0)?, Point::new(0.0, 1.0)?]);
/// assert_eq!(dtw(&a, &a), 0.0);
/// # Ok(())
/// # }
/// ```
pub fn dtw(p: &Trajectory, q: &Trajectory) -> f64 {
    let (long, short) = if p.len() >= q.len() { (p, q) } else { (q, p) };
    if short.is_empty() {
        return if long.is_empty() { 0.0 } else { f64::INFINITY };
    }
    let sp = short.points();
    let lp = long.points();
    // prev[j] = dtw(i-1, j), cur[j] = dtw(i, j); index 0 is the j=0 border.
    let m = sp.len();
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut cur = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for &pi in lp {
        cur[0] = f64::INFINITY;
        for (j, &qj) in sp.iter().enumerate() {
            let cost = pi.haversine_distance(qj);
            let best = prev[j].min(prev[j + 1]).min(cur[j]);
            cur[j + 1] = cost + best;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_geo::Point;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new(lat, lon).unwrap()
    }

    fn t(coords: &[(f64, f64)]) -> Trajectory {
        coords.iter().map(|&(la, lo)| p(la, lo)).collect()
    }

    /// Meters in one degree of longitude at the equator.
    const DEG: f64 = 111_195.0;

    #[test]
    fn identical_trajectories_have_zero_distance() {
        let a = t(&[(0.0, 0.0), (0.0, 1.0), (0.0, 2.0)]);
        assert_eq!(dtw(&a, &a), 0.0);
    }

    #[test]
    fn empty_boundary_conditions() {
        let e = Trajectory::default();
        let a = t(&[(0.0, 0.0)]);
        assert_eq!(dtw(&e, &e), 0.0);
        assert_eq!(dtw(&a, &e), f64::INFINITY);
        assert_eq!(dtw(&e, &a), f64::INFINITY);
    }

    #[test]
    fn known_value_warping_alignment() {
        // P = (0,0),(0,1),(0,2); Q = (0,0),(0,2). Optimal warping aligns
        // p2 with either endpoint at cost of one degree.
        let a = t(&[(0.0, 0.0), (0.0, 1.0), (0.0, 2.0)]);
        let b = t(&[(0.0, 0.0), (0.0, 2.0)]);
        let d = dtw(&a, &b);
        assert!((d - DEG).abs() < DEG * 0.01, "got {d}");
    }

    #[test]
    fn single_points() {
        let a = t(&[(0.0, 0.0)]);
        let b = t(&[(0.0, 1.0)]);
        assert!((dtw(&a, &b) - DEG).abs() < DEG * 0.01);
    }

    #[test]
    fn oversampling_costs_far_less_than_a_different_path() {
        // The same path sampled at 1x and 4x accumulates some warping cost
        // (DTW is sum-based), but far less than a genuinely different path
        // of the same shape 10 km away.
        let sparse: Trajectory = (0..5).map(|i| p(0.0, i as f64 * 0.01)).collect();
        let dense: Trajectory = (0..17).map(|i| p(0.0, i as f64 * 0.0025)).collect();
        let far: Trajectory = (0..17).map(|i| p(0.1, i as f64 * 0.0025)).collect();
        let same_path = dtw(&sparse, &dense);
        let other_path = dtw(&sparse, &far);
        assert!(
            same_path < other_path / 10.0,
            "same {same_path}, other {other_path}"
        );
    }

    proptest! {
        #[test]
        fn prop_symmetric_and_nonnegative(
            xs in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..12),
            ys in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..12),
        ) {
            let a = t(&xs);
            let b = t(&ys);
            let ab = dtw(&a, &b);
            prop_assert!(ab >= 0.0);
            prop_assert!((ab - dtw(&b, &a)).abs() < 1e-6 * ab.max(1.0));
        }

        #[test]
        fn prop_self_distance_zero(
            xs in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..12),
        ) {
            let a = t(&xs);
            prop_assert_eq!(dtw(&a, &a), 0.0);
        }

        #[test]
        fn prop_rolling_rows_match_full_table(
            xs in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..8),
            ys in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..8),
        ) {
            // Reference implementation with the full table.
            let a = t(&xs);
            let b = t(&ys);
            let (n, m) = (a.len(), b.len());
            let mut table = vec![vec![f64::INFINITY; m + 1]; n + 1];
            table[0][0] = 0.0;
            for i in 1..=n {
                for j in 1..=m {
                    let cost = a.points()[i - 1].haversine_distance(b.points()[j - 1]);
                    let best = table[i - 1][j].min(table[i][j - 1]).min(table[i - 1][j - 1]);
                    table[i][j] = cost + best;
                }
            }
            let d = dtw(&a, &b);
            prop_assert!((d - table[n][m]).abs() < 1e-9 * d.max(1.0), "{d} vs {}", table[n][m]);
        }
    }
}
