//! Bounding-based Trajectory Motif discovery (BTM): the exact baseline of
//! Figure 11 (Tang et al., the paper's ref \[27\]).
//!
//! Given two trajectories and a motif length `l` (in points), BTM returns
//! the pair of length-`l` sub-trajectories with the minimal discrete
//! Fréchet distance. The naive scan evaluates `O(n·m)` window pairs at
//! `O(l²)` each; the bounding-based variant prunes pairs whose endpoint
//! lower bound already exceeds the best distance found, without changing
//! the result.

use geodabs_traj::Trajectory;

use crate::dfd::dfd_points;

/// The best-matching pair of sub-trajectories found by motif discovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BtmMatch {
    /// Start offset of the motif in the first trajectory.
    pub start_a: usize,
    /// Start offset of the motif in the second trajectory.
    pub start_b: usize,
    /// Motif length in points.
    pub len: usize,
    /// Discrete Fréchet distance between the two motifs, in meters.
    pub distance: f64,
}

/// Exact motif discovery with lower-bound pruning.
///
/// Scans all pairs of length-`len` windows but skips the quadratic DFD
/// evaluation whenever `max(d(first, first'), d(last, last'))` — a valid
/// DFD lower bound — is already no better than the current best. Ties are
/// resolved toward the earliest `(start_a, start_b)`.
///
/// Returns `None` if either trajectory is shorter than `len` or `len` is
/// zero.
pub fn btm(a: &Trajectory, b: &Trajectory, len: usize) -> Option<BtmMatch> {
    discover(a, b, len, true)
}

/// Exact motif discovery without pruning; the reference implementation
/// the bench compares [`btm`] against.
///
/// Returns `None` under the same conditions as [`btm`].
pub fn btm_naive(a: &Trajectory, b: &Trajectory, len: usize) -> Option<BtmMatch> {
    discover(a, b, len, false)
}

fn discover(a: &Trajectory, b: &Trajectory, len: usize, prune: bool) -> Option<BtmMatch> {
    if len == 0 || a.len() < len || b.len() < len {
        return None;
    }
    let pa = a.points();
    let pb = b.points();
    let mut best: Option<BtmMatch> = None;
    for i in 0..=pa.len() - len {
        let wa = &pa[i..i + len];
        for j in 0..=pb.len() - len {
            let wb = &pb[j..j + len];
            if prune {
                if let Some(m) = best {
                    let lb = wa[0]
                        .haversine_distance(wb[0])
                        .max(wa[len - 1].haversine_distance(wb[len - 1]));
                    if lb >= m.distance {
                        continue;
                    }
                }
            }
            let d = dfd_points(wa, wb);
            if best.map(|m| d < m.distance).unwrap_or(true) {
                best = Some(BtmMatch {
                    start_a: i,
                    start_b: j,
                    len,
                    distance: d,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_geo::Point;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> Point {
        Point::new(lat, lon).unwrap()
    }

    /// Two V-shaped trajectories sharing their second leg.
    fn v_pair() -> (Trajectory, Trajectory) {
        let turn = p(0.0, 0.0);
        let shared: Vec<Point> = (0..10)
            .map(|i| turn.destination(90.0, i as f64 * 100.0))
            .collect();
        let mut a: Vec<Point> = (1..8)
            .rev()
            .map(|i| turn.destination(180.0, i as f64 * 100.0))
            .collect();
        a.extend(shared.iter().copied());
        let mut b: Vec<Point> = (1..8)
            .rev()
            .map(|i| turn.destination(0.0, i as f64 * 100.0))
            .collect();
        b.extend(shared.iter().copied());
        (Trajectory::new(a), Trajectory::new(b))
    }

    #[test]
    fn finds_the_shared_leg() {
        let (a, b) = v_pair();
        let m = btm(&a, &b, 8).unwrap();
        assert!(m.distance < 1.0, "distance {}", m.distance);
        // The shared leg starts at index 7 in both trajectories.
        assert_eq!(m.start_a, 7);
        assert_eq!(m.start_b, 7);
    }

    #[test]
    fn pruned_and_naive_agree() {
        let (a, b) = v_pair();
        for len in [2usize, 5, 8, 12] {
            assert_eq!(btm(&a, &b, len), btm_naive(&a, &b, len), "len {len}");
        }
    }

    #[test]
    fn too_short_inputs_yield_none() {
        let (a, b) = v_pair();
        assert!(btm(&a, &b, a.len().max(b.len()) + 1).is_none());
        assert!(btm(&a, &b, 0).is_none());
        assert!(btm(&Trajectory::default(), &b, 1).is_none());
    }

    #[test]
    fn self_motif_is_zero() {
        let (a, _) = v_pair();
        let m = btm(&a, &a, 5).unwrap();
        assert_eq!(m.distance, 0.0);
        assert_eq!(m.start_a, m.start_b);
    }

    #[test]
    fn motif_len_one_is_closest_point_pair() {
        let (a, b) = v_pair();
        let m = btm(&a, &b, 1).unwrap();
        let mut best = f64::INFINITY;
        for &x in a.points() {
            for &y in b.points() {
                best = best.min(x.haversine_distance(y));
            }
        }
        assert!((m.distance - best).abs() < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_pruning_never_changes_the_result(
            xs in proptest::collection::vec((-0.5f64..0.5, -0.5f64..0.5), 2..12),
            ys in proptest::collection::vec((-0.5f64..0.5, -0.5f64..0.5), 2..12),
            len in 1usize..5,
        ) {
            let a: Trajectory = xs.iter().map(|&(la, lo)| p(la, lo)).collect();
            let b: Trajectory = ys.iter().map(|&(la, lo)| p(la, lo)).collect();
            let fast = btm(&a, &b, len);
            let slow = btm_naive(&a, &b, len);
            match (fast, slow) {
                (Some(f), Some(s)) => {
                    prop_assert!((f.distance - s.distance).abs() < 1e-9);
                    prop_assert_eq!((f.start_a, f.start_b), (s.start_a, s.start_b));
                }
                (None, None) => {}
                other => prop_assert!(false, "mismatch: {other:?}"),
            }
        }
    }
}
