//! Baseline trajectory distance measures and exact motif discovery.
//!
//! These are the quadratic-time competitors the geodabs paper compares
//! against in Section VI-B and VI-C:
//!
//! * [`dtw`] — Dynamic Time Warping (Equation 3; Yi et al., ref \[28\]),
//! * [`dfd`] — Discrete Fréchet Distance (Equation 4; Eiter & Mannila,
//!   ref \[9\]),
//! * [`btm`] — Bounding-based Trajectory Motif discovery: the exact
//!   motif-discovery baseline (Tang et al., ref \[27\]) that evaluates the
//!   DFD of every pair of same-length sub-trajectories with lower-bound
//!   pruning.
//!
//! Both distances cost `O(n·m)` per pair; motif discovery with DFD costs
//! `O(n²·l²)` per pair — which is exactly why the paper replaces them with
//! Jaccard distances over fingerprint sets.
//!
//! # Examples
//!
//! ```
//! use geodabs_distance::{dfd, dtw};
//! use geodabs_geo::Point;
//! use geodabs_traj::Trajectory;
//!
//! # fn main() -> Result<(), geodabs_geo::GeoError> {
//! let a: Trajectory = (0..10).map(|i| Point::new(0.0, i as f64 * 0.001).unwrap()).collect();
//! let b: Trajectory = (0..10).map(|i| Point::new(0.0005, i as f64 * 0.001).unwrap()).collect();
//! // Two parallel lines ~55 m apart.
//! assert!((dfd(&a, &b) - 55.6).abs() < 1.0);
//! assert!(dtw(&a, &b) >= dfd(&a, &b));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btm;
mod dfd;
mod dtw;
mod hausdorff;
mod lcss;

pub use btm::{btm, btm_naive, BtmMatch};
pub use dfd::dfd;
pub use dtw::dtw;
pub use hausdorff::{hausdorff, hausdorff_directed};
pub use lcss::{edr, lcss_distance, lcss_similarity};
