//! The subcommand implementations.

use geodabs_cluster::{ClusterIndex, ShardNode};
use geodabs_core::GeodabConfig;
use geodabs_gen::dataset::{Dataset, DatasetConfig};
use geodabs_gen::world::{WorldActivity, WorldConfig};
use geodabs_index::store::{self, Persist, SnapshotReader};
use geodabs_index::tuning::{hill_climb, TuningSample};
use geodabs_index::{codec, GeodabIndex, GeohashIndex, SearchOptions, TrajectoryIndex};
use geodabs_roadnet::generators::{grid_network, GridConfig};
use geodabs_roadnet::RoadNetwork;
use std::collections::HashSet;
use std::error::Error;
use std::time::Instant;

use crate::Args;

/// Runs the subcommand selected by `args`, writing human-readable output
/// to `out`.
///
/// # Errors
///
/// Propagates flag, I/O, decoding and generation errors.
pub fn run(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    match args.command() {
        "build" => build(args, out),
        "stats" => stats(args, out),
        "search" => search(args, out),
        "tune" => tune(args, out),
        "world" => world(args, out),
        "export" => export(args, out),
        "bench" => bench(args, out),
        "snapshot" => snapshot(args, out),
        "serve" => serve(args, out),
        "frontend" => frontend(args, out),
        "loadtest" => loadtest(args, out),
        "metrics" => metrics(args, out),
        "wal" => wal(args, out),
        "help" => {
            write!(out, "{}", HELP)?;
            Ok(())
        }
        other => unreachable!("parser rejects unknown command {other}"),
    }
}

/// Usage text.
pub const HELP: &str = "\
geodabs — trajectory indexing with fingerprints (ICDCS 2018 reproduction)

USAGE:
  geodabs build  --out FILE [--routes N] [--per-direction M] [--seed S]
  geodabs stats  --index FILE
  geodabs search --index FILE [--routes N] [--per-direction M] [--seed S]
                 [--query Q] [--limit K]
  geodabs tune   [--routes N] [--seed S] [--steps T]
  geodabs world  [--trajectories N] [--cities C] [--seed S]
  geodabs export --out FILE.csv [--routes N] [--per-direction M] [--seed S]
  geodabs bench  [--scenario NAME] [--threads T] [--out DIR] [--seed S]
                 [--baseline FILE] [--max-regress PCT]
  geodabs snapshot save    --out FILE [--backend geodab|geohash|cluster]
                           [--scenario NAME] [--seed S] [--nodes N] [--shards P]
  geodabs snapshot load    --in FILE [--verify rebuild] [--scenario NAME] [--seed S]
  geodabs snapshot inspect --in FILE [--json]
  geodabs serve    --addr HOST:PORT (--snapshot FILE | --scenario NAME | --wal-dir DIR)
                   [--backend geodab|geohash|cluster] [--seed S] [--threads T]
                   [--serve-shards C] [--verify rebuild] [--duration SECS]
                   [--nodes N] [--shards P] [--shard-id I] [--wal-dir DIR]
                   [--sync-policy always|never|interval[:MS]]
                   [--compact-every SECS]
  geodabs frontend --addr HOST:PORT --shards ADDR,ADDR,...
                   [--threads T] [--duration SECS] [--num-shards P]
  geodabs loadtest --addr HOST:PORT [--connections N] [--duration SECS]
                   [--scenario NAME] [--seed S] [--limit K]
                   [--verify local|none] [--out DIR] [--server-metrics]
  geodabs metrics  --addr HOST:PORT [--top N] [--text] [--out FILE]
  geodabs wal inspect --dir DIR
  geodabs wal replay  --dir DIR [--out FILE]
                      [--backend geodab|geohash|cluster] [--nodes N] [--shards P]
                      [--shard-id I]
  geodabs help

Datasets are synthetic and reproducible: the same (routes, per-direction,
seed) triple always generates the same trajectories, so `search` can
regenerate its query workload against a persisted index.

`bench` without --scenario lists the workload catalog; with one it runs
the scenario at thread counts 1,2,4,8 (capped by --threads) and writes a
machine-readable BENCH_<scenario>.json report. With --baseline it also
enforces the CI perf gate: the run fails if batch-ingest throughput
drops more than --max-regress percent (default 30) below the baseline's,
or if query-latency p95 rises more than the same percentage above it.
The special `cold-start` scenario instead measures snapshot save/load
bandwidth and the restore-vs-reingest speedup; `durability` measures
acked-write latency per WAL sync policy, replay-on-boot recovery, and
query p95 with background compaction off vs on (BENCH_durability.json);
`multicore` measures QPS and latency at 1, 2 and 4 in-process shards,
quiet and with a concurrent bulk ingest in flight
(BENCH_multicore.json).

`snapshot save` ingests a bench scenario's corpus (default: micro) into
the chosen backend and writes a GDAB v2 snapshot; `load` restores it
(any backend, v1 blobs included) and with `--verify rebuild` re-ingests
the same corpus and fails unless both answer every scenario query
identically; `inspect` prints the container header and section table
without materializing the index.

`serve` hosts an index over the binary wire protocol: warm-started from
a GDAB v2 snapshot (--snapshot) or freshly ingested from a bench
scenario (--scenario), behind a connection multiplexer of T workers
(default: all cores) — each worker sweeps many non-blocking
connections, so T sizes parallelism, not the concurrent-connection
capacity. `--serve-shards C` re-partitions the index at boot into C
in-process shard cells with a copy-on-write read path: queries never
block on ingest and rankings stay bit-identical to the monolith.
`--verify rebuild` (with --snapshot; a scenario ingest is already a
fresh rebuild) replays the scenario queries against a fresh rebuild
before serving; `--duration` shuts down cleanly after that many
seconds (0 = serve until killed). `loadtest` drives 1,2,4,…,N concurrent
connections against a running server with a scenario's queries for
--duration seconds per point, writes BENCH_serve.json (qps + latency
percentiles per connection count), and — with the default
`--verify local` — compares every response bit-identically against an
in-process rebuild, exiting nonzero on any mismatch or connection error.

`serve --wal-dir` makes the server durable: every Insert/Remove is
appended to a CRC-framed write-ahead log (synced per --sync-policy,
default `always`) before it is acknowledged, and on restart the server
warm-starts from the latest compacted snapshot in the log directory and
replays the log suffix beyond its watermark — acknowledged writes
survive a SIGKILL. With --compact-every the server periodically folds
the log into a fresh watermark-stamped snapshot without blocking
readers. SIGTERM/Ctrl-C flush the log and exit through the clean
shutdown path. `wal inspect` prints the segment table; `wal replay`
reconstructs the state offline (snapshot + log suffix) and with --out
writes it as a compacted snapshot.

`serve --shard-id I --nodes N` hosts shard node I of an N-node cluster:
the node backend keeps the full fingerprint replica of every trajectory
that routes at least one posting here, answers per-shard top-k
sub-queries, and composes with --wal-dir/--snapshot like any other
backend. `frontend` coordinates such shard servers: it fingerprints
each query once, scatters sub-queries to the servers named by --shards
(the i-th address hosts router node i), and merges the returned heaps
exactly — every ranking is bit-identical to a monolithic index over the
same corpus. A lost shard yields a typed \"shard node unavailable\"
error, never a silently partial ranking, and the frontend redials on
the next request without a restart; `loadtest` verifies a frontend
exactly like a monolithic server. The `distributed` bench scenario
boots 1, 2 and 4 shard servers plus a frontend on loopback and writes
BENCH_distributed.json (QPS vs shard-server count, every response
verified).

`metrics` scrapes a running server's telemetry over the wire: request
counters and latency histograms per frame type, mux gauges
(connections, busy workers, frames in flight), WAL and compaction
figures, engine pruning counters, per-stage server-side timings and the
slow-query log (slowest first, each entry carrying its trace id and
per-stage breakdown). `--text` prints the raw Prometheus exposition
instead; `--out FILE` writes that exposition to a file (the CI smoke
jobs upload it as an artifact). Telemetry is on by default and costs a
clock read per stage; GEODABS_METRICS=off disables it server-side, and
GEODABS_SLOW_US sets the slow-query threshold (default 1000).
`loadtest --server-metrics` scrapes the server before and after the
ladder and reports the delta: server-clock p50/p95/p99 per stage
(decode, engine, merge, …) next to the client-observed view, plus the
real mux saturation gauges.
";

fn network(seed: u64) -> RoadNetwork {
    grid_network(&GridConfig::default(), seed)
}

fn dataset_from_args(args: &Args) -> Result<Dataset, Box<dyn Error>> {
    let routes = args.usize_or("routes", 20)?;
    let per_direction = args.usize_or("per-direction", 5)?;
    let seed = args.u64_or("seed", 42)?;
    let cfg = DatasetConfig {
        routes,
        per_direction,
        queries: routes.min(16),
        ..DatasetConfig::default()
    };
    Ok(Dataset::generate(&network(seed), &cfg, seed)?)
}

fn build(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let path = args.string_required("out")?;
    let ds = dataset_from_args(args)?;
    let mut index = GeodabIndex::new(GeodabConfig::default());
    for r in ds.records() {
        index.insert(r.id, &r.trajectory);
    }
    let bytes = codec::encode(&index);
    std::fs::write(&path, &bytes)?;
    writeln!(
        out,
        "indexed {} trajectories ({} terms) into {} ({} bytes)",
        index.len(),
        index.term_count(),
        path,
        bytes.len()
    )?;
    Ok(())
}

fn stats(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let path = args.string_required("index")?;
    let bytes = std::fs::read(&path)?;
    let index = codec::decode(&bytes)?;
    let cfg = index.config();
    writeln!(out, "index file        {path}")?;
    writeln!(out, "trajectories      {}", index.len())?;
    writeln!(out, "distinct terms    {}", index.term_count())?;
    writeln!(
        out,
        "config            depth={} k={} t={} (w={}) prefix={} bits",
        cfg.normalization_depth(),
        cfg.k(),
        cfg.t(),
        cfg.window(),
        cfg.prefix_bits()
    )?;
    let total_fps: usize = index.iter_fingerprints().map(|(_, fp)| fp.len()).sum();
    writeln!(
        out,
        "fingerprints      {} total, {:.1} per trajectory",
        total_fps,
        total_fps as f64 / index.len().max(1) as f64
    )?;
    Ok(())
}

fn search(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let path = args.string_required("index")?;
    let bytes = std::fs::read(&path)?;
    let index = codec::decode(&bytes)?;
    let ds = dataset_from_args(args)?;
    let qi = args.usize_or("query", 0)?;
    let limit = args.usize_or("limit", 10)?;
    let query = ds.queries().get(qi).ok_or_else(|| {
        format!(
            "query index {qi} out of range (have {})",
            ds.queries().len()
        )
    })?;
    let relevant = ds.relevant_ids(query);
    let hits = index.search(&query.trajectory, &SearchOptions::default().limit(limit));
    writeln!(
        out,
        "query {qi} (route {}, {} points): {} hit(s)",
        query.route,
        query.trajectory.len(),
        hits.len()
    )?;
    for (rank, h) in hits.iter().enumerate() {
        writeln!(
            out,
            "{:>4}  {:>8}  d={:.3}  {}",
            rank + 1,
            h.id.to_string(),
            h.distance,
            if relevant.contains(&h.id) {
                "relevant"
            } else {
                "-"
            }
        )?;
    }
    Ok(())
}

fn tune(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let ds = dataset_from_args(args)?;
    let steps = args.usize_or("steps", 5)?;
    let corpus: Vec<_> = ds
        .records()
        .iter()
        .map(|r| (r.id, r.trajectory.clone()))
        .collect();
    let queries: Vec<_> = ds
        .queries()
        .iter()
        .map(|q| {
            let rel: HashSet<_> = ds.relevant_ids(q);
            (q.trajectory.clone(), rel)
        })
        .collect();
    let sample = TuningSample::new(corpus, queries);
    let result = hill_climb(&sample, GeodabConfig::default(), steps);
    writeln!(out, "evaluated {} configurations", result.evaluations)?;
    for (cfg, score) in &result.trace {
        writeln!(
            out,
            "  depth={} k={} t={}  score={score:.3}",
            cfg.normalization_depth(),
            cfg.k(),
            cfg.t()
        )?;
    }
    writeln!(
        out,
        "best: depth={} k={} t={} (mean R-precision {:.3})",
        result.config.normalization_depth(),
        result.config.k(),
        result.config.t(),
        result.score
    )?;
    Ok(())
}

fn world(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let trajectories = args.u64_or("trajectories", 200_000)?;
    let cities = args.usize_or("cities", 1_000)?;
    let seed = args.u64_or("seed", 15)?;
    let activity = WorldActivity::generate(
        &WorldConfig {
            cities,
            trajectories,
            ..WorldConfig::default()
        },
        seed,
    );
    writeln!(out, "trajectories      {}", activity.total())?;
    writeln!(out, "non-empty cells   {}", activity.counts().len())?;
    writeln!(out, "occupancy         {:.4}", activity.occupancy())?;
    writeln!(out, "peak cell         {}", activity.peak())?;
    Ok(())
}

fn bench(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    use geodabs_bench::workload;

    // A typo'd flag must fail loudly: silently ignoring `--scenari` or
    // `--basline` would skip the benchmark or the CI gate while the job
    // reports success.
    args.reject_unknown_flags(&[
        "scenario",
        "threads",
        "out",
        "seed",
        "baseline",
        "max-regress",
    ])?;
    if !args.has_flags() {
        writeln!(out, "available scenarios (run with --scenario NAME):")?;
        for s in workload::catalog() {
            writeln!(
                out,
                "  {:<18} {:<13} corpus {:>7}  queries {:>4}  seed {}",
                s.name,
                s.preset.name(),
                s.corpus,
                s.queries,
                s.seed
            )?;
        }
        return Ok(());
    }
    let name = args.string_required("scenario")?;
    let mut scenario = workload::find(&name)
        .ok_or_else(|| format!("unknown scenario {name:?} (run `geodabs bench` to list)"))?;
    scenario.seed = args.u64_or("seed", scenario.seed)?;
    // "All cores" is decided in exactly one place (batch::default_threads);
    // the flag only caps it.
    let max_threads = args.usize_or("threads", geodabs_index::batch::default_threads())?;
    let threads = workload::thread_ladder(max_threads);
    let out_dir = args.string_or("out", ".");
    let max_regress = args.u64_or("max-regress", 30)? as f64;

    // The serve scenario measures client-observed QPS/latency over
    // loopback per connection count (--threads caps the connection
    // ladder) and emits a differently-shaped report, so it cannot gate
    // against an ingest baseline.
    if scenario.name == workload::SERVE {
        if args.has("baseline") || args.has("max-regress") {
            return Err(
                "the serve scenario has no ingest gate; run it without --baseline/--max-regress"
                    .into(),
            );
        }
        writeln!(
            out,
            "scenario {} ({}, corpus {}, {} queries, seed {}), connections {threads:?}",
            scenario.name,
            scenario.preset.name(),
            scenario.corpus,
            scenario.queries,
            scenario.seed
        )?;
        let report = workload::run_serve(&scenario, max_threads, 2.0)?;
        writeln!(
            out,
            "served corpus     {} trajectories ({} backend), every response verified",
            report.trajectories, report.backend
        )?;
        for point in &report.points {
            writeln!(
                out,
                "serve   {:>2} conn(s)   {:>9.1} qps  p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  \
                 ({} requests)",
                point.connections,
                point.qps,
                point.p50_ms,
                point.p95_ms,
                point.p99_ms,
                point.requests
            )?;
        }
        let path = std::path::Path::new(&out_dir).join(report.file_name());
        std::fs::write(&path, report.to_json().pretty())?;
        writeln!(out, "report            {}", path.display())?;
        if !report.consistent() {
            return Err("served responses diverged from the in-process engine".into());
        }
        return Ok(());
    }

    // The durability scenario measures acked-write latency per WAL sync
    // policy, recovery speed, and compaction's effect on concurrent
    // queries; its report has its own shape, so it cannot gate against
    // an ingest baseline.
    if scenario.name == workload::DURABILITY {
        if args.has("baseline") || args.has("max-regress") {
            return Err(
                "the durability scenario has no ingest gate; run it without \
                 --baseline/--max-regress"
                    .into(),
            );
        }
        writeln!(
            out,
            "scenario {} ({}, corpus {}, {} queries, seed {})",
            scenario.name,
            scenario.preset.name(),
            scenario.corpus,
            scenario.queries,
            scenario.seed
        )?;
        let report = workload::run_durability(&scenario, scenario.corpus, 2.0)?;
        for run in &report.acks {
            writeln!(
                out,
                "ack     {:<12} {:>9.1} acks/s  p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  \
                 ({} inserts)",
                run.policy, run.acks_per_sec, run.p50_ms, run.p95_ms, run.p99_ms, run.inserts
            )?;
        }
        writeln!(
            out,
            "recovery          {} record(s) replayed in {:.3}s → {} trajectories",
            report.replayed_records, report.recovery_seconds, report.recovered_trajectories
        )?;
        writeln!(
            out,
            "compaction        query p95 {:.3} ms (off) vs {:.3} ms (folding, watermark {})",
            report.baseline_query_p95_ms,
            report.compacting_query_p95_ms,
            report.compacted_watermark
        )?;
        let path = std::path::Path::new(&out_dir).join(report.file_name());
        std::fs::write(&path, report.to_json().pretty())?;
        writeln!(out, "report            {}", path.display())?;
        if !report.consistent {
            return Err(
                "durability run inconsistent: acked writes lost in replay or the compactor \
                 never ran"
                    .into(),
            );
        }
        return Ok(());
    }

    // The distributed scenario boots real shard servers plus a frontend
    // on loopback and measures client-observed QPS through the
    // scatter/gather path; its report has its own shape, so it cannot
    // gate against an ingest baseline.
    if scenario.name == workload::DISTRIBUTED {
        if args.has("baseline") || args.has("max-regress") {
            return Err(
                "the distributed scenario has no ingest gate; run it without \
                 --baseline/--max-regress"
                    .into(),
            );
        }
        let connections = max_threads.max(1);
        writeln!(
            out,
            "scenario {} ({}, corpus {}, {} queries, seed {}), {connections} connection(s)",
            scenario.name,
            scenario.preset.name(),
            scenario.corpus,
            scenario.queries,
            scenario.seed
        )?;
        let report = workload::run_distributed(&scenario, &[1, 2, 4], connections, 2.0)?;
        writeln!(
            out,
            "corpus            {} trajectories over {} logical shards, every response verified",
            report.trajectories, report.num_shards
        )?;
        for point in &report.points {
            writeln!(
                out,
                "scatter {:>2} node(s)   {:>9.1} qps  p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  \
                 ({} requests)",
                point.shard_servers,
                point.load.qps,
                point.load.p50_ms,
                point.load.p95_ms,
                point.load.p99_ms,
                point.load.requests
            )?;
        }
        let path = std::path::Path::new(&out_dir).join(report.file_name());
        std::fs::write(&path, report.to_json().pretty())?;
        writeln!(out, "report            {}", path.display())?;
        if !report.consistent() {
            return Err("distributed responses diverged from the monolithic engine".into());
        }
        return Ok(());
    }

    // The multicore scenario boots one server at several in-process
    // shard counts and measures client-observed QPS/latency quiet and
    // under concurrent ingest; its report has its own shape, so it
    // cannot gate against an ingest baseline.
    if scenario.name == workload::MULTICORE {
        if args.has("baseline") || args.has("max-regress") {
            return Err("the multicore scenario has no ingest gate; run it without \
                 --baseline/--max-regress"
                .into());
        }
        let connections = max_threads.max(1);
        writeln!(
            out,
            "scenario {} ({}, corpus {}, {} queries, seed {}), {connections} connection(s)",
            scenario.name,
            scenario.preset.name(),
            scenario.corpus,
            scenario.queries,
            scenario.seed
        )?;
        let report = workload::run_multicore(&scenario, &[1, 2, 4], connections, 2.0)?;
        writeln!(
            out,
            "corpus            {} trajectories, quiet responses verified bit-identical",
            report.trajectories
        )?;
        for point in &report.points {
            writeln!(
                out,
                "shards  {:>2} quiet    {:>9.1} qps  p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  \
                 ({} requests)",
                point.shards,
                point.quiet.qps,
                point.quiet.p50_ms,
                point.quiet.p95_ms,
                point.quiet.p99_ms,
                point.quiet.requests
            )?;
            writeln!(
                out,
                "           ingest  {:>9.1} qps  p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  \
                 ({} requests, {} concurrent inserts)",
                point.under_ingest.qps,
                point.under_ingest.p50_ms,
                point.under_ingest.p95_ms,
                point.under_ingest.p99_ms,
                point.under_ingest.requests,
                point.ingested
            )?;
        }
        let path = std::path::Path::new(&out_dir).join(report.file_name());
        std::fs::write(&path, report.to_json().pretty())?;
        writeln!(out, "report            {}", path.display())?;
        if !report.consistent() {
            return Err("multicore responses diverged from the in-process engine".into());
        }
        return Ok(());
    }

    // The skewed scenario replays a Zipf hot-key request stream over the
    // serve layer (--threads caps the connection ladder); its report has
    // its own shape, so it cannot gate against an ingest baseline.
    if scenario.name == workload::SKEWED {
        if args.has("baseline") || args.has("max-regress") {
            return Err(
                "the skewed scenario has no ingest gate; run it without --baseline/--max-regress"
                    .into(),
            );
        }
        writeln!(
            out,
            "scenario {} ({}, corpus {}, {} queries, seed {}), connections {threads:?}",
            scenario.name,
            scenario.preset.name(),
            scenario.corpus,
            scenario.queries,
            scenario.seed
        )?;
        let report = workload::run_skewed(&scenario, max_threads, 2.0)?;
        writeln!(
            out,
            "served corpus     {} trajectories ({} backend), every response verified",
            report.trajectories, report.backend
        )?;
        writeln!(
            out,
            "zipf stream       exponent {:.2}, {} distinct queries, hot query {:.1}% of stream",
            report.zipf_exponent,
            report.distinct_queries,
            report.hot_query_share * 100.0
        )?;
        for point in &report.points {
            writeln!(
                out,
                "skewed  {:>2} conn(s)   {:>9.1} qps  p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  \
                 ({} requests)",
                point.connections,
                point.qps,
                point.p50_ms,
                point.p95_ms,
                point.p99_ms,
                point.requests
            )?;
        }
        let path = std::path::Path::new(&out_dir).join(report.file_name());
        std::fs::write(&path, report.to_json().pretty())?;
        writeln!(out, "report            {}", path.display())?;
        if !report.consistent() {
            return Err("skewed responses diverged from the in-process engine".into());
        }
        return Ok(());
    }

    // The cold-start scenario measures snapshot save/load instead of the
    // ingest/query ladder and emits a differently-shaped report, so it
    // cannot gate against an ingest baseline.
    if scenario.name == workload::COLD_START {
        // Fail loudly on gate flags instead of silently skipping the
        // gate: a CI script passing them would otherwise read as
        // "regression checked" while nothing was enforced.
        if args.has("baseline") || args.has("max-regress") {
            return Err(
                "the cold-start scenario has no ingest gate; run it without \
                        --baseline/--max-regress"
                    .into(),
            );
        }
        writeln!(
            out,
            "scenario {} ({}, corpus {}, {} queries, seed {}), reingest threads {}",
            scenario.name,
            scenario.preset.name(),
            scenario.corpus,
            scenario.queries,
            scenario.seed,
            max_threads.max(1)
        )?;
        let report = workload::run_cold_start(&scenario, max_threads);
        writeln!(
            out,
            "corpus            {} trajectories, {} points, {} distinct terms ({:.2}s to generate)",
            report.trajectories, report.points, report.distinct_terms, report.generation_seconds
        )?;
        writeln!(
            out,
            "reingest          {:>9.3}s  ({} threads)",
            report.reingest_seconds, report.reingest_threads
        )?;
        writeln!(
            out,
            "snapshot save     {:>9.3}s  {:>8.1} MB/s  ({} bytes)",
            report.save_seconds,
            report.save_mb_per_s(),
            report.snapshot_bytes
        )?;
        writeln!(
            out,
            "snapshot load     {:>9.3}s  {:>8.1} MB/s",
            report.load_seconds,
            report.load_mb_per_s()
        )?;
        writeln!(
            out,
            "restore speedup   {:.1}× faster than re-ingest",
            report.restore_speedup
        )?;
        let path = std::path::Path::new(&out_dir).join(report.file_name());
        std::fs::write(&path, report.to_json().pretty())?;
        writeln!(out, "report            {}", path.display())?;
        if !report.consistent {
            return Err("restored index diverged from the freshly built index".into());
        }
        return Ok(());
    }

    // Gate inputs are validated *before* the (possibly minutes-long)
    // measurement so an unreadable baseline or a vacuous allowance fails
    // in milliseconds.
    let baseline = match args.string_required("baseline") {
        Ok(path) => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading baseline {path}: {e}"))?;
            workload::preflight_gate(&scenario, &text, max_regress)?;
            Some(text)
        }
        Err(_) => None,
    };

    writeln!(
        out,
        "scenario {} ({}, corpus {}, {} queries, seed {}), threads {threads:?}",
        scenario.name,
        scenario.preset.name(),
        scenario.corpus,
        scenario.queries,
        scenario.seed
    )?;
    let report = workload::run_scenario(&scenario, &threads);
    writeln!(
        out,
        "corpus            {} trajectories, {} points, {} distinct terms ({:.2}s to generate)",
        report.trajectories, report.points, report.distinct_terms, report.generation_seconds
    )?;
    for run in &report.ingest {
        writeln!(
            out,
            "ingest  {:>2} thread(s)  {:>9.3}s  {:>11.1} traj/s",
            run.threads, run.seconds, run.traj_per_sec
        )?;
    }
    writeln!(
        out,
        "query latency     p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  (n={})",
        report.latency.p50, report.latency.p95, report.latency.p99, scenario.queries
    )?;
    for run in &report.query_batches {
        writeln!(
            out,
            "query   {:>2} thread(s)  {:>9.3}s  {:>11.1} queries/s",
            run.threads, run.seconds, run.queries_per_sec
        )?;
    }

    // Write the report before any failure below: a consistency or gate
    // failure is exactly when the machine-readable record matters most
    // (CI uploads it as an artifact even for failing runs).
    let path = std::path::Path::new(&out_dir).join(report.file_name());
    std::fs::write(&path, report.to_json().pretty())?;
    writeln!(out, "report            {}", path.display())?;

    if !report.ingest_consistent {
        return Err("parallel ingest diverged from the serial build (len/term_count)".into());
    }

    if let Some(baseline) = baseline {
        let verdict = workload::check_gate(&report, &baseline, max_regress)?;
        writeln!(
            out,
            "perf gate         current {:.1} traj/s vs baseline {:.1} (floor {:.1}, -{max_regress}%)",
            verdict.current, verdict.baseline, verdict.floor
        )?;
        match (verdict.latency_baseline_p95, verdict.latency_ceiling) {
            (Some(baseline_p95), Some(ceiling)) => writeln!(
                out,
                "perf gate         current p95 {:.3} ms vs baseline {baseline_p95:.3} \
                 (ceiling {ceiling:.3}, +{max_regress}%)",
                verdict.latency_p95
            )?,
            _ => writeln!(
                out,
                "perf gate         baseline records no query latency; p95 check skipped"
            )?,
        }
        if !verdict.pass {
            if verdict.current < verdict.floor {
                return Err(format!(
                    "perf gate FAILED: ingest throughput {:.1} traj/s is below the floor {:.1} \
                     ({:.1} baseline − {max_regress}%)",
                    verdict.current, verdict.floor, verdict.baseline
                )
                .into());
            }
            return Err(format!(
                "perf gate FAILED: query-latency p95 {:.3} ms is above the ceiling {:.3} ms \
                 ({:.3} baseline + {max_regress}%)",
                verdict.latency_p95,
                verdict.latency_ceiling.unwrap_or(f64::NAN),
                verdict.latency_baseline_p95.unwrap_or(f64::NAN)
            )
            .into());
        }
        writeln!(out, "perf gate         PASS")?;
    }
    Ok(())
}

fn snapshot(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    match args.action().expect("parser guarantees a snapshot action") {
        "save" => snapshot_save(args, out),
        "load" => snapshot_load(args, out),
        "inspect" => snapshot_inspect(args, out),
        other => unreachable!("parser rejects unknown action {other}"),
    }
}

/// Resolves a bench scenario by flag (for `snapshot save`/`load
/// --verify` and the serving layer).
fn scenario_from_args(args: &Args) -> Result<geodabs_bench::workload::Scenario, Box<dyn Error>> {
    use geodabs_bench::workload;
    let name = args.string_or("scenario", "micro");
    let mut scenario = workload::find(&name)
        .ok_or_else(|| format!("unknown scenario {name:?} (run `geodabs bench` to list)"))?;
    scenario.seed = args.u64_or("seed", scenario.seed)?;
    Ok(scenario)
}

/// Resolves a bench scenario and generates its reproducible dataset.
fn scenario_dataset(
    args: &Args,
) -> Result<(geodabs_bench::workload::Scenario, Dataset), Box<dyn Error>> {
    let scenario = scenario_from_args(args)?;
    let dataset = geodabs_bench::workload::generate(&scenario);
    Ok((scenario, dataset))
}

fn snapshot_save(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    args.reject_unknown_flags(&["backend", "out", "scenario", "seed", "nodes", "shards"])?;
    let path = args.string_required("out")?;
    let backend = args.string_or("backend", "geodab");
    // Validate the backend *before* the (possibly minutes-long) corpus
    // generation, so a typo fails in milliseconds.
    if !["geodab", "geohash", "cluster"].contains(&backend.as_str()) {
        return Err(format!("unknown backend {backend:?} (geodab|geohash|cluster)").into());
    }
    let (scenario, dataset) = scenario_dataset(args)?;
    let items: Vec<_> = dataset
        .records()
        .iter()
        .map(|r| (r.id, &r.trajectory))
        .collect();
    let config = GeodabConfig::default();

    let started = Instant::now();
    let (len, terms, written) = match backend.as_str() {
        "geodab" => {
            let mut index = GeodabIndex::new(config);
            index.insert_batch(items);
            (index.len(), index.term_count(), index.save_to(&path)?)
        }
        "geohash" => {
            let mut index = GeohashIndex::new(config.normalization_depth());
            index.insert_batch(items);
            (index.len(), index.term_count(), index.save_to(&path)?)
        }
        "cluster" => {
            let shards = args.u64_or("shards", 10_000)?;
            let nodes = args.usize_or("nodes", 8)?;
            let mut index = ClusterIndex::new(config, shards, nodes)?;
            index.insert_batch(items);
            (index.len(), index.active_shards(), index.save_to(&path)?)
        }
        other => {
            return Err(format!("unknown backend {other:?} (geodab|geohash|cluster)").into());
        }
    };
    let seconds = started.elapsed().as_secs_f64();
    writeln!(
        out,
        "saved {backend} snapshot of scenario {} ({len} trajectories, {terms} terms/shards) \
         to {path}: {written} bytes in {seconds:.3}s",
        scenario.name
    )?;
    Ok(())
}

fn snapshot_load(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    use geodabs_bench::workload::{verify_against_rebuild, AnyIndex};
    args.reject_unknown_flags(&["in", "verify", "scenario", "seed"])?;
    let path = args.string_required("in")?;
    let bytes = std::fs::read(&path)?;
    let started = Instant::now();
    let loaded = AnyIndex::from_snapshot_bytes(&bytes)?;
    let seconds = started.elapsed().as_secs_f64();
    writeln!(
        out,
        "loaded {} snapshot: {} trajectories from {} bytes in {seconds:.3}s ({:.1} MB/s)",
        loaded.backend_name(),
        loaded.len(),
        bytes.len(),
        bytes.len() as f64 / 1e6 / seconds.max(1e-9)
    )?;

    match args.string_or("verify", "").as_str() {
        "" => Ok(()),
        "rebuild" => {
            // The query-replay loop is shared with `geodabs serve
            // --verify rebuild` — one verification routine, two callers.
            let scenario = scenario_from_args(args)?;
            let checked = verify_against_rebuild(&loaded, &scenario)
                .map_err(|e| format!("snapshot verify FAILED: {e}"))?;
            writeln!(
                out,
                "verify            PASS ({checked} queries identical to a fresh rebuild of {})",
                scenario.name
            )?;
            Ok(())
        }
        other => Err(format!("invalid value {other:?} for --verify (expected \"rebuild\")").into()),
    }
}

fn snapshot_inspect(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    use geodabs_bench::json::Json;
    args.reject_unknown_flags(&["in", "json"])?;
    let path = args.string_required("in")?;
    let bytes = std::fs::read(&path)?;
    let version = store::peek_version(&bytes)?;
    let machine = args.has("json");
    if version == store::VERSION_V1 {
        if machine {
            let report = Json::obj(vec![
                ("schema_version", Json::Num(1.0)),
                ("kind", Json::Str("snapshot".into())),
                ("file", Json::Str(path.clone())),
                ("bytes", Json::Num(bytes.len() as f64)),
                ("format_version", Json::Num(f64::from(version))),
                ("backend", Json::Str("geodab".into())),
                ("watermark", Json::Null),
                ("sections", Json::Arr(Vec::new())),
            ]);
            writeln!(out, "{}", report.pretty())?;
            return Ok(());
        }
        writeln!(out, "snapshot file     {path}")?;
        writeln!(out, "size              {} bytes", bytes.len())?;
        writeln!(out, "format version    {version}")?;
        writeln!(
            out,
            "layout            legacy v1 geodab codec (raw fingerprint sequences, \
             engine state rebuilt on load)"
        )?;
        return Ok(());
    }
    let reader = SnapshotReader::parse(&bytes)?;
    let watermark = store::watermark(&bytes)?;
    if machine {
        let sections: Vec<Json> = reader
            .sections()
            .iter()
            .map(|&(id, payload)| {
                Json::obj(vec![
                    ("name", Json::Str(store::section_name(id))),
                    ("bytes", Json::Num(payload.len() as f64)),
                ])
            })
            .collect();
        let report = Json::obj(vec![
            ("schema_version", Json::Num(1.0)),
            ("kind", Json::Str("snapshot".into())),
            ("file", Json::Str(path.clone())),
            ("bytes", Json::Num(bytes.len() as f64)),
            ("format_version", Json::Num(f64::from(version))),
            (
                "backend",
                match reader.backend() {
                    Some(kind) => Json::Str(kind.to_string()),
                    None => Json::Null,
                },
            ),
            (
                "watermark",
                match watermark {
                    Some(seq) => Json::Num(seq as f64),
                    None => Json::Null,
                },
            ),
            ("sections", Json::Arr(sections)),
        ]);
        writeln!(out, "{}", report.pretty())?;
        return Ok(());
    }
    writeln!(out, "snapshot file     {path}")?;
    writeln!(out, "size              {} bytes", bytes.len())?;
    writeln!(out, "format version    {version}")?;
    match reader.backend() {
        Some(kind) => writeln!(out, "backend           {kind}")?,
        None => writeln!(
            out,
            "backend           unknown (tag {})",
            reader.backend_tag()
        )?,
    }
    if let Some(seq) = watermark {
        writeln!(out, "wal watermark     seq {seq} folded into this snapshot")?;
    }
    writeln!(
        out,
        "sections          {} (all checksums OK)",
        reader.sections().len()
    )?;
    for &(id, payload) in reader.sections() {
        writeln!(
            out,
            "  {:<8} {:>12} bytes",
            store::section_name(id),
            payload.len()
        )?;
    }
    Ok(())
}

fn serve(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    use geodabs_bench::workload::{self, AnyIndex};
    use geodabs_serve::{Server, ServerConfig, WAL_SNAPSHOT_FILE};
    use geodabs_wal::{SyncPolicy, Wal};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    args.reject_unknown_flags(&[
        "addr",
        "backend",
        "snapshot",
        "scenario",
        "seed",
        "threads",
        "verify",
        "duration",
        "shards",
        "nodes",
        "shard-id",
        "serve-shards",
        "wal-dir",
        "sync-policy",
        "compact-every",
    ])?;
    let addr = args.string_required("addr")?;
    let threads = args.usize_or("threads", geodabs_index::batch::default_threads())?;
    let serve_shards = args.usize_or("serve-shards", 1)?;
    if serve_shards > 1 && args.has("shard-id") {
        return Err(
            "--serve-shards conflicts with --shard-id: a shard server already hosts one \
             node's slice"
                .into(),
        );
    }
    let duration = args.u64_or("duration", 0)?;
    let verify = args.string_or("verify", "");
    if !["", "rebuild"].contains(&verify.as_str()) {
        return Err(format!("invalid value {verify:?} for --verify (expected \"rebuild\")").into());
    }
    let wal_dir = match args.has("wal-dir") {
        true => Some(args.string_required("wal-dir")?),
        false => None,
    };
    // Durability knobs only mean something with a log to apply them to.
    if wal_dir.is_none() && (args.has("sync-policy") || args.has("compact-every")) {
        return Err("--sync-policy/--compact-every need --wal-dir".into());
    }
    let sync_policy = SyncPolicy::parse(&args.string_or("sync-policy", "always"))?;
    let compact_every = args.u64_or("compact-every", 0)?;
    // Both together are fine (--snapshot serves, --scenario names the
    // verify corpus); a durable server may also boot from its log
    // directory alone. No corpus source at all is an error.
    if wal_dir.is_none() && !args.has("snapshot") && !args.has("scenario") {
        return Err(
            "serve needs a corpus: pass --snapshot FILE, --scenario NAME or --wal-dir DIR".into(),
        );
    }
    // A scenario ingest IS a fresh rebuild (batch ≡ serial ingest is
    // pinned by the equivalence proptests), so verifying it against
    // another fresh rebuild could never fail — reject the vacuous check
    // instead of doubling startup cost for nothing.
    if verify == "rebuild" && wal_dir.is_some() {
        return Err(
            "--verify rebuild conflicts with --wal-dir: replayed log mutations legitimately \
             diverge from the scenario corpus, so the check would fail spuriously"
                .into(),
        );
    }
    if verify == "rebuild" && !args.has("snapshot") {
        return Err(
            "--verify rebuild needs --snapshot: a --scenario ingest is itself a fresh rebuild, \
             so the check would be vacuous"
                .into(),
        );
    }
    let shard_id = match args.has("shard-id") {
        true => Some(args.usize_or("shard-id", 0)?),
        false => None,
    };
    if shard_id.is_some() && args.has("backend") {
        return Err(
            "--backend conflicts with --shard-id (a shard server hosts the node backend)".into(),
        );
    }
    if shard_id.is_some() && args.has("snapshot") {
        return Err(
            "--shard-id conflicts with --snapshot (the snapshot records which node it is)".into(),
        );
    }

    // Boot order for a durable server: the latest compacted snapshot in
    // the log directory wins (it reflects acknowledged state newer than
    // any --snapshot the caller passes), then the log suffix beyond its
    // watermark is replayed.
    let started = Instant::now();
    let compacted = wal_dir
        .as_ref()
        .map(|d| std::path::Path::new(d).join(WAL_SNAPSHOT_FILE))
        .filter(|p| p.exists());
    let (mut index, snapshot_watermark) = if let Some(path) = compacted {
        let bytes = std::fs::read(&path)?;
        let watermark = store::watermark(&bytes)?.unwrap_or(0);
        let index = AnyIndex::from_snapshot_bytes(&bytes)?;
        writeln!(
            out,
            "warm-start        {} compacted snapshot (watermark {watermark}): {} trajectories \
             from {} bytes in {:.3}s",
            index.backend_name(),
            index.len(),
            bytes.len(),
            started.elapsed().as_secs_f64()
        )?;
        (index, watermark)
    } else if args.has("snapshot") {
        if args.has("backend") {
            return Err(
                "--backend conflicts with --snapshot (the snapshot names its backend)".into(),
            );
        }
        let path = args.string_required("snapshot")?;
        let bytes = std::fs::read(&path)?;
        let watermark = store::watermark(&bytes)?.unwrap_or(0);
        let index = AnyIndex::from_snapshot_bytes(&bytes)?;
        writeln!(
            out,
            "warm-start        {} snapshot: {} trajectories from {} bytes in {:.3}s",
            index.backend_name(),
            index.len(),
            bytes.len(),
            started.elapsed().as_secs_f64()
        )?;
        (index, watermark)
    } else if args.has("scenario") {
        let shards = args.u64_or("shards", 10_000)?;
        let nodes = args.usize_or("nodes", 8)?;
        let (scenario, dataset) = scenario_dataset(args)?;
        let items: Vec<_> = dataset
            .records()
            .iter()
            .map(|r| (r.id, &r.trajectory))
            .collect();
        let index = match shard_id {
            // A shard server routes the whole corpus through the
            // cluster and keeps node `node_id`'s slice — exactly the
            // state it would hold after a live N-node ingest, so the
            // per-shard heaps it answers merge exactly at the frontend.
            Some(node_id) => {
                let mut cluster = ClusterIndex::new(GeodabConfig::default(), shards, nodes)?;
                cluster.insert_batch(items);
                AnyIndex::Node(cluster.shard_node(node_id).ok_or_else(|| {
                    format!("--shard-id {node_id} out of range for --nodes {nodes}")
                })?)
            }
            None => {
                let backend = args.string_or("backend", "geodab");
                let mut index = AnyIndex::empty(&backend, shards, nodes)?;
                index.insert_batch(items);
                index
            }
        };
        writeln!(
            out,
            "ingested          scenario {} into a {} index: {} trajectories in {:.3}s",
            scenario.name,
            index.backend_name(),
            TrajectoryIndex::len(&index),
            started.elapsed().as_secs_f64()
        )?;
        (index, 0)
    } else {
        // --wal-dir alone: a durable server that has not compacted yet
        // (or is brand new) boots empty and replays its whole log.
        let shards = args.u64_or("shards", 10_000)?;
        let nodes = args.usize_or("nodes", 8)?;
        let index = match shard_id {
            Some(node_id) => AnyIndex::Node(ShardNode::new(
                GeodabConfig::default(),
                shards,
                nodes,
                node_id,
            )?),
            None => AnyIndex::empty(&args.string_or("backend", "geodab"), shards, nodes)?,
        };
        writeln!(
            out,
            "fresh             empty {} index",
            index.backend_name()
        )?;
        (index, 0)
    };

    if let Some(dir) = &wal_dir {
        let mut replayed = 0usize;
        for record in Wal::records(std::path::Path::new(dir))? {
            if record.seq <= snapshot_watermark {
                continue;
            }
            index
                .apply_wal_op(record.op)
                .map_err(|e| format!("wal replay: {e}"))?;
            replayed += 1;
        }
        writeln!(
            out,
            "wal replay        {replayed} record(s) beyond watermark {snapshot_watermark} \
             from {dir}: {} trajectories now live",
            TrajectoryIndex::len(&index)
        )?;
    }

    if verify == "rebuild" {
        // The same query-replay loop `snapshot load --verify rebuild`
        // runs; a server must not come up on a corpus it cannot prove.
        let scenario = scenario_from_args(args)?;
        let checked = workload::verify_against_rebuild(&index, &scenario)
            .map_err(|e| format!("startup verify FAILED: {e}"))?;
        writeln!(
            out,
            "verify            PASS ({checked} queries identical to a fresh rebuild of {})",
            scenario.name
        )?;
    }

    let config = ServerConfig::builder()
        .shards(serve_shards.max(1))
        .mux_workers(threads.max(1))
        .build()
        .map_err(|e| e.to_string())?;
    let mut server = Server::bind(addr.as_str(), index, config)?;
    if let Some(dir) = &wal_dir {
        let wal = Wal::open(std::path::Path::new(dir), sync_policy)?;
        writeln!(
            out,
            "durability        wal {dir} at seq {} (sync {sync_policy}, compaction {})",
            wal.last_seq(),
            if compact_every > 0 {
                format!("every {compact_every}s")
            } else {
                "off".to_string()
            }
        )?;
        server = server.with_durability(
            wal,
            snapshot_watermark,
            (compact_every > 0).then(|| std::time::Duration::from_secs(compact_every)),
        );
    }
    writeln!(
        out,
        "listening on      {} ({} mux worker(s), {} in-process shard(s){})",
        server.local_addr(),
        threads,
        serve_shards.max(1),
        if duration > 0 {
            format!(", shutting down after {duration}s")
        } else {
            String::new()
        }
    )?;
    out.flush()?;
    if duration > 0 {
        let handle = server.handle();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs(duration));
            handle.shutdown();
        });
    }
    // SIGTERM/Ctrl-C route into the same clean-shutdown path as
    // --duration: the serving loop drains, the WAL flushes, and the
    // process exits 0 instead of being torn mid-append.
    let stop = crate::signals::install();
    let handle = server.handle();
    let finished = Arc::new(AtomicBool::new(false));
    {
        let finished = Arc::clone(&finished);
        std::thread::spawn(move || loop {
            if finished.load(Ordering::SeqCst) {
                break;
            }
            if stop.load(Ordering::SeqCst) {
                handle.shutdown();
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
    }
    let served = server.run()?;
    finished.store(true, Ordering::SeqCst);
    writeln!(
        out,
        "served            {served} request(s); shut down cleanly"
    )?;
    Ok(())
}

fn frontend(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    use geodabs_cluster::ShardRouter;
    use geodabs_core::Fingerprinter;
    use geodabs_serve::{Frontend, FrontendConfig};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    args.reject_unknown_flags(&["addr", "shards", "threads", "duration", "num-shards"])?;
    let addr = args.string_required("addr")?;
    let shard_addrs: Vec<String> = args
        .string_required("shards")?
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    if shard_addrs.is_empty() {
        return Err("--shards needs at least one HOST:PORT".into());
    }
    let threads = args.usize_or("threads", geodabs_index::batch::default_threads())?;
    let duration = args.u64_or("duration", 0)?;
    // The logical shard count must match the shard servers' (both
    // default to the paper's 10 000): the router is shared verbatim, and
    // a disagreement would silently drop postings.
    let num_shards = args.u64_or("num-shards", 10_000)?;
    let config = GeodabConfig::default();
    let router = ShardRouter::new(config.prefix_bits(), num_shards, shard_addrs.len())?;
    writeln!(
        out,
        "topology          {num_shards} logical shard(s) over {} shard server(s)",
        shard_addrs.len()
    )?;
    for (node, shard_addr) in shard_addrs.iter().enumerate() {
        writeln!(out, "  node {node:<4} {shard_addr}")?;
    }
    let frontend = Frontend::bind(
        addr.as_str(),
        Fingerprinter::new(config),
        router,
        shard_addrs,
        FrontendConfig::builder()
            .mux_workers(threads.max(1))
            .build()
            .map_err(|e| e.to_string())?,
    )?;
    writeln!(
        out,
        "listening on      {} ({} mux worker(s){})",
        frontend.local_addr(),
        threads,
        if duration > 0 {
            format!(", shutting down after {duration}s")
        } else {
            String::new()
        }
    )?;
    out.flush()?;
    if duration > 0 {
        let handle = frontend.handle();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs(duration));
            handle.shutdown();
        });
    }
    // SIGTERM/Ctrl-C drain through the same clean-shutdown path as
    // --duration, exactly like `serve`.
    let stop = crate::signals::install();
    let handle = frontend.handle();
    let finished = Arc::new(AtomicBool::new(false));
    {
        let finished = Arc::clone(&finished);
        std::thread::spawn(move || loop {
            if finished.load(Ordering::SeqCst) {
                break;
            }
            if stop.load(Ordering::SeqCst) {
                handle.shutdown();
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
    }
    let served = frontend.run()?;
    finished.store(true, Ordering::SeqCst);
    writeln!(
        out,
        "served            {served} request(s); shut down cleanly"
    )?;
    Ok(())
}

fn loadtest(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    use geodabs_bench::workload::{self, AnyIndex, ServeReport};
    use geodabs_serve::Client;
    use geodabs_traj::Trajectory;

    args.reject_unknown_flags(&[
        "addr",
        "connections",
        "duration",
        "scenario",
        "seed",
        "limit",
        "verify",
        "out",
        "server-metrics",
    ])?;
    let addr = args.string_required("addr")?;
    let server_metrics = args.has("server-metrics");
    let connections = args.usize_or("connections", 4)?.max(1);
    let seconds_per_point = args.u64_or("duration", 2)?.max(1) as f64;
    let limit = args.usize_or("limit", workload::VERIFY_LIMIT)?;
    let verify = args.string_or("verify", "local");
    if !["local", "none"].contains(&verify.as_str()) {
        return Err(format!("invalid value {verify:?} for --verify (local|none)").into());
    }
    let out_dir = args.string_or("out", ".");
    let (scenario, dataset) = scenario_dataset(args)?;
    let queries: Vec<Trajectory> = dataset
        .queries()
        .iter()
        .map(|q| q.trajectory.clone())
        .collect();
    if queries.is_empty() {
        return Err(format!("scenario {} has no queries", scenario.name).into());
    }
    let options = SearchOptions::default().limit(limit);

    // One probe connection up front: fail fast on a dead address and
    // learn the served backend.
    let stats = Client::connect(addr.as_str())
        .map_err(|e| format!("connecting to {addr}: {e}"))?
        .stats()
        .map_err(|e| format!("probing {addr}: {e}"))?;
    writeln!(
        out,
        "server            {} at {addr}: {} trajectories, {} terms, {} mux worker(s)",
        stats.backend, stats.trajectories, stats.terms, stats.workers
    )?;
    // A frontend reports its shard-server count in the `terms` slot; it
    // ranks exactly like a monolithic index, so the single-process
    // geodab twin below stays the right verification oracle.
    if stats.backend == "frontend" {
        writeln!(
            out,
            "topology          frontend over {} shard server(s)",
            stats.terms
        )?;
    }
    // Without the metrics frame the best saturation signal is the
    // client-side heuristic; with --server-metrics the real gauges
    // (busy workers, frames in flight) replace it after the run.
    if !server_metrics && stats.workers > 0 {
        let saturation = (connections as f64) / (stats.workers as f64);
        writeln!(
            out,
            "mux saturation    up to {saturation:.1} connection(s) per mux worker at the widest \
             ladder point ({connections} connections over {} worker(s))",
            stats.workers
        )?;
    }
    let before = if server_metrics {
        Some(
            Client::connect(addr.as_str())
                .map_err(|e| format!("connecting to {addr}: {e}"))?
                .metrics()
                .map_err(|e| {
                    format!(
                        "scraping {addr} for --server-metrics: {e} (pre-metrics servers and \
                         GEODABS_METRICS=off builds cannot serve the frame)"
                    )
                })?,
        )
    } else {
        None
    };

    let expected = match verify.as_str() {
        "none" => None,
        _ => {
            // Rebuild the scenario corpus in-process and pin every
            // response bit-identically. The cluster ranks exactly like
            // the monolithic geodab index (its equivalence proptests pin
            // that), so one twin covers both; the geohash baseline needs
            // its own vocabulary.
            let twin_backend = if stats.backend == "geohash" {
                "geohash"
            } else {
                "geodab"
            };
            let mut twin = AnyIndex::empty(twin_backend, 0, 0)?;
            let items: Vec<_> = dataset
                .records()
                .iter()
                .map(|r| (r.id, &r.trajectory))
                .collect();
            twin.insert_batch(items);
            if stats.backend == "frontend" && stats.trajectories == 0 {
                // A frontend only counts mutations routed through it;
                // shard servers that ingested their slices at boot leave
                // that count at zero, so there is no corpus size to
                // probe. The bit-exact response comparison below still
                // fails loudly on any corpus mismatch.
                writeln!(
                    out,
                    "note              shard corpora were loaded out-of-band; corpus-size probe \
                     skipped (responses are still verified bit-exactly)"
                )?;
            } else if twin.len() as u64 != stats.trajectories {
                return Err(format!(
                    "server holds {} trajectories but scenario {} generates {} — verification \
                     would always fail; pass the right --scenario/--seed or --verify none",
                    stats.trajectories,
                    scenario.name,
                    twin.len()
                )
                .into());
            }
            Some(
                queries
                    .iter()
                    .map(|q| twin.search(q, &options))
                    .collect::<Vec<_>>(),
            )
        }
    };
    let verified = expected.is_some();

    let ladder = workload::thread_ladder(connections);
    writeln!(
        out,
        "driving           connections {ladder:?}, {seconds_per_point:.0}s per point, \
         {} queries (limit {limit}), verify {verify}",
        queries.len()
    )?;
    let points = workload::run_load_ladder(
        &addr,
        queries,
        options,
        expected,
        &ladder,
        seconds_per_point,
    )?;
    for point in &points {
        writeln!(
            out,
            "load    {:>2} conn(s)   {:>9.1} qps  p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  \
             ({} requests, {} mismatches)",
            point.connections,
            point.qps,
            point.p50_ms,
            point.p95_ms,
            point.p99_ms,
            point.requests,
            point.mismatches
        )?;
    }

    // With --server-metrics, scrape again and report the delta: the
    // server's own clock on each stage next to the client view above.
    let server = match before {
        Some(before) => {
            let after = Client::connect(addr.as_str())
                .map_err(|e| format!("connecting to {addr}: {e}"))?
                .metrics()
                .map_err(|e| format!("re-scraping {addr}: {e}"))?;
            let side = server_side_delta(&before, &after);
            if side.stages.is_empty() {
                writeln!(
                    out,
                    "server-side       no stage histograms recorded (GEODABS_METRICS=off?)"
                )?;
            }
            for stage in &side.stages {
                writeln!(
                    out,
                    "server  {:<10} {:>9} sample(s)  p50 {} us  p95 {} us  p99 {} us",
                    stage.name, stage.count, stage.p50_us, stage.p95_us, stage.p99_us
                )?;
            }
            writeln!(
                out,
                "mux saturation    peak {} of {} worker(s) busy, peak {} frame(s) in flight, \
                 peak {} connection(s) (server gauges)",
                side.workers_busy_peak,
                stats.workers,
                side.frames_in_flight_peak,
                side.connections_peak
            )?;
            Some(side)
        }
        None => None,
    };

    // Write the report before any failure below: the machine-readable
    // record matters most exactly when the run fails (CI uploads it as
    // an artifact either way).
    let report = ServeReport {
        scenario,
        backend: stats.backend,
        trajectories: stats.trajectories as usize,
        query_limit: limit,
        verified,
        points,
        server,
    };
    let path = std::path::Path::new(&out_dir).join(report.file_name());
    std::fs::write(&path, report.to_json().pretty())?;
    writeln!(out, "report            {}", path.display())?;
    if !report.consistent() {
        let mismatches: u64 = report.points.iter().map(|p| p.mismatches).sum();
        return Err(format!(
            "loadtest FAILED: {mismatches} response(s) diverged from the in-process engine"
        )
        .into());
    }
    if verified {
        writeln!(out, "verify            PASS (every response bit-identical)")?;
    }
    Ok(())
}

/// The server-side stages `loadtest --server-metrics` reports, as
/// `(stage label, registered histogram name)` pairs. Absent or empty
/// histograms are skipped, so the same table serves monoliths (lock,
/// engine), sharded servers (merge) and frontends (scatter, merge).
const SERVER_STAGES: &[(&str, &str)] = &[
    ("request", "geodabs_request_latency_us{kind=\"query\"}"),
    ("decode", "geodabs_decode_us"),
    ("lock", "geodabs_stage_lock_us"),
    ("engine", "geodabs_stage_engine_us"),
    ("scatter", "geodabs_scatter_shard_us"),
    ("merge", "geodabs_stage_merge_us"),
    ("encode", "geodabs_encode_us"),
];

/// Folds two metrics scrapes into the server-side view of a load run:
/// per-stage latency quantiles from the histogram deltas, plus the mux
/// gauge peaks (peaks are process-lifetime, not deltas — the run can
/// only have raised them).
fn server_side_delta(
    before: &geodabs_serve::MetricsReport,
    after: &geodabs_serve::MetricsReport,
) -> geodabs_bench::workload::ServerSide {
    use geodabs_bench::workload::{ServerSide, ServerStage};
    let mut stages = Vec::new();
    for (label, name) in SERVER_STAGES {
        let Some(current) = after.histogram(name) else {
            continue;
        };
        let current = current.snapshot();
        let delta = match before.histogram(name) {
            Some(earlier) => current.delta(&earlier.snapshot()),
            None => current,
        };
        if delta.is_empty() {
            continue;
        }
        stages.push(ServerStage {
            name: (*label).to_string(),
            count: delta.count(),
            p50_us: delta.quantile(50.0),
            p95_us: delta.quantile(95.0),
            p99_us: delta.quantile(99.0),
        });
    }
    let peak = |name: &str| after.gauge(name).map(|(_, peak)| peak).unwrap_or(0);
    ServerSide {
        stages,
        workers_busy_peak: peak("geodabs_mux_workers_busy"),
        frames_in_flight_peak: peak("geodabs_mux_frames_in_flight"),
        connections_peak: peak("geodabs_connections"),
    }
}

fn metrics(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    use geodabs_serve::Client;

    args.reject_unknown_flags(&["addr", "top", "text", "out"])?;
    let addr = args.string_required("addr")?;
    let top = args.usize_or("top", 5)?;
    let report = Client::connect(addr.as_str())
        .map_err(|e| format!("connecting to {addr}: {e}"))?
        .metrics()
        .map_err(|e| format!("scraping {addr}: {e} (pre-metrics servers answer with an error)"))?;

    if let Some(path) = args.has("out").then(|| args.string_or("out", "")) {
        std::fs::write(&path, &report.text)?;
        writeln!(out, "exposition        {path}")?;
    }
    if args.has("text") {
        write!(out, "{}", report.text)?;
        return Ok(());
    }

    writeln!(out, "server            {addr}")?;
    writeln!(out, "counters          {}", report.counters.len())?;
    for (name, total) in &report.counters {
        writeln!(out, "  {name}  {total}")?;
    }
    writeln!(
        out,
        "gauges            {} (value / peak)",
        report.gauges.len()
    )?;
    for (name, value, peak) in &report.gauges {
        writeln!(out, "  {name}  {value} / {peak}")?;
    }
    let populated = report
        .histograms
        .iter()
        .filter(|h| !h.buckets.is_empty())
        .count();
    writeln!(
        out,
        "histograms        {populated} of {} non-empty (count, us at p50/p95/p99)",
        report.histograms.len()
    )?;
    for histogram in &report.histograms {
        let snapshot = histogram.snapshot();
        if snapshot.is_empty() {
            continue;
        }
        writeln!(
            out,
            "  {}  {}  p50 {} us  p95 {} us  p99 {} us",
            histogram.name,
            snapshot.count(),
            snapshot.quantile(50.0),
            snapshot.quantile(95.0),
            snapshot.quantile(99.0)
        )?;
    }
    writeln!(
        out,
        "slow queries      {} captured, showing {}",
        report.slow_queries.len(),
        report.slow_queries.len().min(top)
    )?;
    for slow in report.slow_queries.iter().take(top) {
        let stages: Vec<String> = slow
            .stages
            .iter()
            .map(|(stage, us)| format!("{stage}={us}us"))
            .collect();
        writeln!(
            out,
            "  trace {:016x}  {}  {} us  [{}]",
            slow.trace_id,
            slow.kind,
            slow.total_us,
            stages.join(" ")
        )?;
    }
    Ok(())
}

fn wal(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    match args.action().expect("parser guarantees a wal action") {
        "inspect" => wal_inspect(args, out),
        "replay" => wal_replay(args, out),
        other => unreachable!("parser rejects unknown action {other}"),
    }
}

fn wal_inspect(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    use geodabs_serve::WAL_SNAPSHOT_FILE;
    use geodabs_wal::Wal;
    args.reject_unknown_flags(&["dir"])?;
    let dir = args.string_required("dir")?;
    let segments = Wal::segments(std::path::Path::new(&dir))?;
    writeln!(out, "wal directory     {dir}")?;
    let snapshot = std::path::Path::new(&dir).join(WAL_SNAPSHOT_FILE);
    match std::fs::read(&snapshot) {
        Ok(bytes) => {
            let watermark = store::watermark(&bytes)?;
            writeln!(
                out,
                "snapshot          {} bytes, watermark {}",
                bytes.len(),
                watermark.map_or_else(|| "none".to_string(), |seq| format!("seq {seq}")),
            )?;
        }
        Err(_) => writeln!(out, "snapshot          none (no compaction yet)")?,
    }
    let records: u64 = segments.iter().map(|s| s.records).sum();
    let bytes: u64 = segments.iter().map(|s| s.bytes).sum();
    let last_seq = segments.iter().filter_map(|s| s.last_seq()).max();
    writeln!(
        out,
        "segments          {} ({records} records, {bytes} bytes, last seq {})",
        segments.len(),
        last_seq.map_or_else(|| "none".to_string(), |seq| seq.to_string()),
    )?;
    for segment in &segments {
        writeln!(
            out,
            "  {:<26} start {:>8}  {:>8} record(s)  {:>12} bytes",
            segment.file_name, segment.start_seq, segment.records, segment.bytes
        )?;
    }
    Ok(())
}

fn wal_replay(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    use geodabs_bench::workload::AnyIndex;
    use geodabs_serve::{ServeBackend, WAL_SNAPSHOT_FILE};
    use geodabs_wal::Wal;
    args.reject_unknown_flags(&["dir", "out", "backend", "nodes", "shards", "shard-id"])?;
    let dir = args.string_required("dir")?;

    // The same recovery `serve --wal-dir` performs, runnable offline:
    // latest compacted snapshot (if any), then the log suffix beyond
    // its watermark.
    let snapshot = std::path::Path::new(&dir).join(WAL_SNAPSHOT_FILE);
    let (mut index, watermark) = match std::fs::read(&snapshot) {
        Ok(bytes) => {
            let watermark = store::watermark(&bytes)?.unwrap_or(0);
            let index = AnyIndex::from_snapshot_bytes(&bytes)?;
            writeln!(
                out,
                "snapshot          {} backend, {} trajectories, watermark {watermark}",
                index.backend_name(),
                TrajectoryIndex::len(&index)
            )?;
            (index, watermark)
        }
        Err(_) => {
            let shards = args.u64_or("shards", 10_000)?;
            let nodes = args.usize_or("nodes", 8)?;
            let index = match args.has("shard-id") {
                true => AnyIndex::Node(ShardNode::new(
                    GeodabConfig::default(),
                    shards,
                    nodes,
                    args.usize_or("shard-id", 0)?,
                )?),
                false => AnyIndex::empty(&args.string_or("backend", "geodab"), shards, nodes)?,
            };
            writeln!(
                out,
                "snapshot          none; replaying into an empty {} index",
                index.backend_name()
            )?;
            (index, 0)
        }
    };
    let mut replayed = 0usize;
    let mut last_seq = watermark;
    for record in Wal::records(std::path::Path::new(&dir))? {
        last_seq = record.seq;
        if record.seq <= watermark {
            continue;
        }
        index
            .apply_wal_op(record.op)
            .map_err(|e| format!("wal replay: {e}"))?;
        replayed += 1;
    }
    writeln!(
        out,
        "replayed          {replayed} record(s) beyond watermark {watermark}: \
         {} trajectories at seq {last_seq}",
        TrajectoryIndex::len(&index)
    )?;

    // With --out the reconstruction is persisted as a compacted,
    // watermark-stamped snapshot — offline compaction for a server that
    // is not running.
    if args.has("out") {
        let path = args.string_required("out")?;
        let bytes = ServeBackend::to_snapshot_bytes(&index)
            .ok_or("this backend does not support snapshots")?;
        let stamped = store::with_watermark(&bytes, last_seq)?;
        std::fs::write(&path, &stamped)?;
        writeln!(
            out,
            "compacted         {} bytes to {path} (watermark {last_seq})",
            stamped.len()
        )?;
    }
    Ok(())
}

fn export(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let path = args.string_required("out")?;
    let ds = dataset_from_args(args)?;
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
    geodabs_gen::csv::write_records(ds.records(), &mut file)?;
    use std::io::Write as _;
    file.flush()?;
    writeln!(
        out,
        "exported {} trajectories ({} points) to {}",
        ds.records().len(),
        ds.total_points(),
        path
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(argv: &[&str]) -> Result<String, String> {
        let args = Args::parse(argv.iter().copied()).map_err(|e| e.to_string())?;
        let mut buf = Vec::new();
        run(&args, &mut buf).map_err(|e| e.to_string())?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("geodabs-cli-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        let out = run_to_string(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("geodabs build"));
    }

    #[test]
    fn build_stats_search_roundtrip() {
        let path = tmp("roundtrip.gdab");
        let out = run_to_string(&[
            "build",
            "--out",
            &path,
            "--routes",
            "4",
            "--per-direction",
            "2",
            "--seed",
            "9",
        ])
        .unwrap();
        assert!(out.contains("indexed 16 trajectories"), "{out}");

        let out = run_to_string(&["stats", "--index", &path]).unwrap();
        assert!(out.contains("trajectories      16"), "{out}");
        assert!(out.contains("depth=36 k=6 t=12"), "{out}");

        let out = run_to_string(&[
            "search",
            "--index",
            &path,
            "--routes",
            "4",
            "--per-direction",
            "2",
            "--seed",
            "9",
            "--limit",
            "3",
        ])
        .unwrap();
        assert!(out.contains("query 0"), "{out}");
        assert!(out.contains("relevant"), "{out}");
    }

    #[test]
    fn search_rejects_out_of_range_query() {
        let path = tmp("range.gdab");
        run_to_string(&[
            "build",
            "--out",
            &path,
            "--routes",
            "2",
            "--per-direction",
            "2",
            "--seed",
            "3",
        ])
        .unwrap();
        let err = run_to_string(&[
            "search",
            "--index",
            &path,
            "--routes",
            "2",
            "--per-direction",
            "2",
            "--seed",
            "3",
            "--query",
            "99",
        ])
        .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn stats_rejects_garbage_files() {
        let path = tmp("garbage.gdab");
        std::fs::write(&path, b"not an index").unwrap();
        let err = run_to_string(&["stats", "--index", &path]).unwrap_err();
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn world_prints_summary() {
        let out = run_to_string(&[
            "world",
            "--trajectories",
            "5000",
            "--cities",
            "50",
            "--seed",
            "2",
        ])
        .unwrap();
        assert!(out.contains("trajectories      5000"), "{out}");
        assert!(out.contains("peak cell"), "{out}");
    }

    #[test]
    fn tune_reports_a_best_config() {
        let out = run_to_string(&[
            "tune",
            "--routes",
            "3",
            "--per-direction",
            "2",
            "--seed",
            "4",
            "--steps",
            "1",
        ])
        .unwrap();
        assert!(out.contains("best: depth="), "{out}");
        assert!(out.contains("evaluated"), "{out}");
    }

    #[test]
    fn missing_required_flags_error_cleanly() {
        assert!(run_to_string(&["build"]).unwrap_err().contains("--out"));
        assert!(run_to_string(&["stats"]).unwrap_err().contains("--index"));
        assert!(run_to_string(&["export"]).unwrap_err().contains("--out"));
    }

    #[test]
    fn bench_without_scenario_lists_the_catalog() {
        let out = run_to_string(&["bench"]).unwrap();
        assert!(out.contains("available scenarios"), "{out}");
        assert!(out.contains("smoke"), "{out}");
        assert!(out.contains("dense-urban-10k"), "{out}");
        assert!(out.contains("sparse-rural-1k"), "{out}");
    }

    #[test]
    fn bench_rejects_unknown_scenarios() {
        let err = run_to_string(&["bench", "--scenario", "warp-speed"]).unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
    }

    #[test]
    fn bench_fails_loudly_on_typoed_or_missing_flags() {
        // A typo'd flag must not silently fall back to listing the
        // catalog (which would let a broken CI invocation pass green).
        let err = run_to_string(&["bench", "--scenari", "smoke"]).unwrap_err();
        assert!(err.contains("unknown flag --scenari"), "{err}");
        let err = run_to_string(&["bench", "--scenario", "micro", "--basline", "x"]).unwrap_err();
        assert!(err.contains("unknown flag --basline"), "{err}");
        // Flags without a scenario: an incomplete invocation, not a
        // listing request.
        let err = run_to_string(&["bench", "--threads", "2"]).unwrap_err();
        assert!(err.contains("--scenario"), "{err}");
    }

    #[test]
    fn bench_micro_emits_a_valid_report_and_gates_against_it() {
        use geodabs_bench::json::Json;
        let dir = std::env::temp_dir().join("geodabs-cli-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let out = run_to_string(&[
            "bench",
            "--scenario",
            "micro",
            "--threads",
            "2",
            "--out",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("ingest   1 thread(s)"), "{out}");
        assert!(out.contains("query latency"), "{out}");
        let report_path = dir.join("BENCH_micro.json");
        let text = std::fs::read_to_string(&report_path).expect("report written");
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("scenario").and_then(Json::as_str), Some("micro"));
        assert_eq!(
            parsed.get("schema_version").and_then(Json::as_f64),
            Some(1.0)
        );

        // A fresh run gates cleanly against the report it just produced —
        // with the baseline's p95 relaxed, since micro-scale latency on a
        // loaded test machine is far too noisy to gate the test suite on
        // (the workload tests cover the latency gate deterministically).
        let relaxed: String = text
            .lines()
            .map(|line| {
                if let Some(idx) = line.find("\"p95\":") {
                    let comma = if line.trim_end().ends_with(',') {
                        ","
                    } else {
                        ""
                    };
                    format!("{}\"p95\": 1000000{comma}\n", &line[..idx])
                } else {
                    format!("{line}\n")
                }
            })
            .collect();
        let relaxed_path = dir.join("relaxed.json");
        std::fs::write(&relaxed_path, relaxed).unwrap();
        let out = run_to_string(&[
            "bench",
            "--scenario",
            "micro",
            "--threads",
            "2",
            "--out",
            dir.to_str().unwrap(),
            "--baseline",
            relaxed_path.to_str().unwrap(),
            "--max-regress",
            "95",
        ])
        .unwrap();
        assert!(out.contains("perf gate         PASS"), "{out}");

        // An impossibly fast baseline fails the gate with a clear error.
        let inflated = dir.join("inflated.json");
        std::fs::write(
            &inflated,
            r#"{"schema_version": 1, "scenario": "micro", "seed": 7,
                "ingest": {"runs": [{"threads": 1, "traj_per_sec": 1e15}]}}"#,
        )
        .unwrap();
        let err = run_to_string(&[
            "bench",
            "--scenario",
            "micro",
            "--out",
            dir.to_str().unwrap(),
            "--baseline",
            inflated.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("perf gate FAILED"), "{err}");
        // …and the report was still written for the failing run.
        assert!(dir.join("BENCH_micro.json").exists());

        // Vacuous allowances are rejected in preflight, before the run.
        let err = run_to_string(&[
            "bench",
            "--scenario",
            "micro",
            "--out",
            dir.to_str().unwrap(),
            "--baseline",
            report_path.to_str().unwrap(),
            "--max-regress",
            "100",
        ])
        .unwrap_err();
        assert!(err.contains("max regression"), "{err}");
    }

    #[test]
    fn snapshot_save_load_inspect_roundtrip_all_backends() {
        for backend in ["geodab", "geohash", "cluster"] {
            let path = tmp(&format!("snap-{backend}.gdab"));
            let out = run_to_string(&[
                "snapshot",
                "save",
                "--backend",
                backend,
                "--scenario",
                "micro",
                "--out",
                &path,
            ])
            .unwrap();
            assert!(out.contains(&format!("saved {backend} snapshot")), "{out}");
            assert!(out.contains("40 trajectories"), "{out}");

            let out =
                run_to_string(&["snapshot", "load", "--in", &path, "--scenario", "micro"]).unwrap();
            assert!(out.contains(&format!("loaded {backend} snapshot")), "{out}");
            assert!(out.contains("40 trajectories"), "{out}");

            // Full verification: rebuild the corpus and compare answers.
            let out = run_to_string(&[
                "snapshot",
                "load",
                "--in",
                &path,
                "--scenario",
                "micro",
                "--verify",
                "rebuild",
            ])
            .unwrap();
            assert!(out.contains("verify            PASS"), "{out}");

            let out = run_to_string(&["snapshot", "inspect", "--in", &path]).unwrap();
            assert!(out.contains("format version    2"), "{out}");
            assert!(
                out.contains(&format!("backend           {backend}")),
                "{out}"
            );
            assert!(out.contains("checksums OK"), "{out}");
            assert!(out.contains("CONF"), "{out}");
        }
    }

    #[test]
    fn snapshot_load_rejects_corrupted_files() {
        let path = tmp("snap-corrupt.gdab");
        run_to_string(&["snapshot", "save", "--scenario", "micro", "--out", &path]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = bytes.len() - 30;
        bytes[offset] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let err = run_to_string(&["snapshot", "load", "--in", &path]).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        let err = run_to_string(&["snapshot", "inspect", "--in", &path]).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn snapshot_inspect_reports_legacy_v1_blobs() {
        // `build` writes through the codec; craft a v1 blob explicitly.
        let ds = Dataset::generate(
            &network(9),
            &DatasetConfig {
                routes: 2,
                per_direction: 2,
                ..DatasetConfig::default()
            },
            9,
        )
        .unwrap();
        let mut index = GeodabIndex::new(GeodabConfig::default());
        for r in ds.records() {
            index.insert(r.id, &r.trajectory);
        }
        let path = tmp("snap-v1.gdab");
        std::fs::write(&path, codec::encode_v1(&index)).unwrap();
        let out = run_to_string(&["snapshot", "inspect", "--in", &path]).unwrap();
        assert!(out.contains("format version    1"), "{out}");
        assert!(out.contains("legacy v1"), "{out}");
        // And the v1 blob loads through the version switch.
        let out = run_to_string(&["snapshot", "load", "--in", &path]).unwrap();
        assert!(out.contains("loaded geodab snapshot"), "{out}");
    }

    #[test]
    fn snapshot_flags_fail_loudly() {
        let err = run_to_string(&["snapshot", "save", "--scenario", "micro"]).unwrap_err();
        assert!(err.contains("--out"), "{err}");
        let err = run_to_string(&["snapshot", "save", "--out", "x.gdab", "--backend", "warp"])
            .unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");
        let err = run_to_string(&["snapshot", "frobnicate"]).unwrap_err();
        assert!(err.contains("unknown action"), "{err}");
        let err =
            run_to_string(&["snapshot", "load", "--in", "x", "--verfiy", "rebuild"]).unwrap_err();
        assert!(err.contains("unknown flag --verfiy"), "{err}");
        let path = tmp("snap-verify-flag.gdab");
        run_to_string(&["snapshot", "save", "--scenario", "micro", "--out", &path]).unwrap();
        let err =
            run_to_string(&["snapshot", "load", "--in", &path, "--verify", "yes"]).unwrap_err();
        assert!(err.contains("--verify"), "{err}");
    }

    #[test]
    fn bench_cold_start_rejects_an_ingest_baseline() {
        // Validated before the (multi-second) 10k run starts.
        let err = run_to_string(&[
            "bench",
            "--scenario",
            "cold-start",
            "--baseline",
            "bench/baselines/smoke.json",
        ])
        .unwrap_err();
        assert!(err.contains("no ingest gate"), "{err}");
        // --max-regress alone must fail too, not silently skip the gate.
        let err = run_to_string(&["bench", "--scenario", "cold-start", "--max-regress", "10"])
            .unwrap_err();
        assert!(err.contains("no ingest gate"), "{err}");
    }

    /// A `Write` target observable from another thread, so the serve
    /// test can learn the OS-assigned port while the server blocks.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).expect("utf8 output")
        }

        /// Polls until a line starting with `prefix` appears, returning
        /// the rest of that line.
        fn wait_for(&self, prefix: &str) -> String {
            for _ in 0..400 {
                if let Some(line) = self
                    .contents()
                    .lines()
                    .find_map(|l| l.strip_prefix(prefix).map(str::to_string))
                {
                    return line.trim().to_string();
                }
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            panic!("server never printed {prefix:?}: {:?}", self.contents());
        }
    }

    #[test]
    fn serve_and_loadtest_roundtrip_on_loopback() {
        // Serializes against the signals tests: they flip the global
        // shutdown flag this server's watcher thread polls.
        let _guard = crate::signals::TEST_FLAG_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("geodabs-cli-serve-test");
        std::fs::create_dir_all(&dir).expect("mkdir");

        // Warm-start the server from a real snapshot (the acceptance
        // path), on an OS-assigned port, with a startup verify.
        let snap = tmp("serve-roundtrip.gdab");
        run_to_string(&["snapshot", "save", "--scenario", "micro", "--out", &snap]).unwrap();

        let buf = SharedBuf::default();
        let server_buf = buf.clone();
        let snap_for_server = snap.clone();
        // Detached on purpose: --duration bounds the server's lifetime,
        // and the test must not block on that timer.
        std::thread::spawn(move || {
            let args = Args::parse([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--snapshot",
                &snap_for_server,
                "--scenario",
                "micro",
                "--verify",
                "rebuild",
                "--threads",
                "4",
                "--duration",
                "60",
            ])
            .expect("valid serve args");
            let mut out = server_buf;
            run(&args, &mut out).map_err(|e| e.to_string())
        });
        let verify_line = buf.wait_for("verify            ");
        assert!(verify_line.contains("PASS"), "{verify_line}");

        let addr_line = buf.wait_for("listening on      ");
        let addr = addr_line.split_whitespace().next().expect("addr token");

        // Drive it: 4 connections, short points, full local verification.
        let out = run_to_string(&[
            "loadtest",
            "--addr",
            addr,
            "--connections",
            "4",
            "--duration",
            "1",
            "--scenario",
            "micro",
            "--out",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("server            geodab"), "{out}");
        assert!(out.contains("verify            PASS"), "{out}");
        assert!(out.contains("load     4 conn(s)"), "{out}");
        let report = std::fs::read_to_string(dir.join("BENCH_serve.json")).expect("report");
        let parsed = geodabs_bench::json::Json::parse(&report).expect("valid JSON");
        assert_eq!(
            parsed
                .get("kind")
                .and_then(geodabs_bench::json::Json::as_str),
            Some("serve")
        );
        assert_eq!(
            parsed
                .get("query")
                .and_then(|q| q.get("consistent"))
                .and_then(geodabs_bench::json::Json::as_bool),
            Some(true)
        );

        // The same ladder with --server-metrics: the heuristic line is
        // replaced by the real gauges and the server's own per-stage
        // latency shows up, both on stdout and in the JSON report.
        let out = run_to_string(&[
            "loadtest",
            "--addr",
            addr,
            "--connections",
            "2",
            "--duration",
            "1",
            "--scenario",
            "micro",
            "--out",
            dir.to_str().unwrap(),
            "--server-metrics",
        ])
        .unwrap();
        assert!(!out.contains("connection(s) per mux worker"), "{out}");
        assert!(out.contains("server  request"), "{out}");
        assert!(out.contains("server  engine"), "{out}");
        assert!(out.contains("mux saturation    peak"), "{out}");
        let report = std::fs::read_to_string(dir.join("BENCH_serve.json")).expect("report");
        let parsed = geodabs_bench::json::Json::parse(&report).expect("valid JSON");
        let stages = parsed
            .get("server")
            .and_then(|s| s.get("stages"))
            .and_then(geodabs_bench::json::Json::as_array)
            .expect("server stages in report");
        assert!(!stages.is_empty(), "{report}");

        // The standalone scraper against the same server: counters,
        // gauges, histograms and the raw exposition must all render.
        let scraped = run_to_string(&["metrics", "--addr", addr, "--top", "3"]).unwrap();
        assert!(
            scraped.contains("geodabs_requests_total{kind=\"query\"}"),
            "{scraped}"
        );
        assert!(scraped.contains("geodabs_connections"), "{scraped}");
        assert!(
            scraped.contains("geodabs_request_latency_us{kind=\"query\"}"),
            "{scraped}"
        );
        assert!(scraped.contains("slow queries"), "{scraped}");
        let exposition_path = tmp("serve-roundtrip-metrics.prom");
        let text = run_to_string(&[
            "metrics",
            "--addr",
            addr,
            "--text",
            "--out",
            &exposition_path,
        ])
        .unwrap();
        assert!(text.contains("# TYPE"), "{text}");
        assert!(text.contains("geodabs_requests_total"), "{text}");
        let written = std::fs::read_to_string(&exposition_path).expect("exposition file");
        assert!(written.contains("geodabs_requests_total"), "{written}");

        // A same-size corpus from another seed passes the length probe
        // but every response then diverges from the local expectation —
        // the mismatch detector must fail the run loudly.
        let err = run_to_string(&[
            "loadtest",
            "--addr",
            addr,
            "--connections",
            "1",
            "--scenario",
            "micro",
            "--seed",
            "8",
            "--duration",
            "1",
            "--out",
            dir.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn serve_flags_fail_loudly() {
        let err = run_to_string(&["serve", "--addr", "127.0.0.1:0"]).unwrap_err();
        assert!(
            err.contains("--snapshot") && err.contains("--scenario"),
            "{err}"
        );
        let err = run_to_string(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--snapshot",
            "x.gdab",
            "--backend",
            "geodab",
        ])
        .unwrap_err();
        assert!(err.contains("conflicts"), "{err}");
        let err = run_to_string(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--scenario",
            "micro",
            "--verify",
            "yes",
        ])
        .unwrap_err();
        assert!(err.contains("--verify"), "{err}");
        let err = run_to_string(&["serve", "--scenario", "micro"]).unwrap_err();
        assert!(err.contains("--addr"), "{err}");
        // Verifying a fresh ingest against a fresh rebuild is vacuous.
        let err = run_to_string(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--scenario",
            "micro",
            "--verify",
            "rebuild",
        ])
        .unwrap_err();
        assert!(err.contains("vacuous"), "{err}");
        let err =
            run_to_string(&["serve", "--addr", "127.0.0.1:0", "--scenari", "micro"]).unwrap_err();
        assert!(err.contains("unknown flag --scenari"), "{err}");
    }

    #[test]
    fn loadtest_flags_fail_loudly() {
        let err = run_to_string(&["loadtest"]).unwrap_err();
        assert!(err.contains("--addr"), "{err}");
        let err =
            run_to_string(&["loadtest", "--addr", "127.0.0.1:1", "--verify", "maybe"]).unwrap_err();
        assert!(err.contains("--verify"), "{err}");
        let err = run_to_string(&["loadtest", "--addr", "127.0.0.1:1", "--connectoins", "2"])
            .unwrap_err();
        assert!(err.contains("unknown flag --connectoins"), "{err}");
        // A dead address fails on the probe connection, fast.
        let err =
            run_to_string(&["loadtest", "--addr", "127.0.0.1:1", "--duration", "1"]).unwrap_err();
        assert!(err.contains("connecting to"), "{err}");
    }

    #[test]
    fn bench_durability_rejects_an_ingest_baseline() {
        let err = run_to_string(&[
            "bench",
            "--scenario",
            "durability",
            "--baseline",
            "bench/baselines/smoke.json",
        ])
        .unwrap_err();
        assert!(err.contains("no ingest gate"), "{err}");
        let err = run_to_string(&["bench", "--scenario", "durability", "--max-regress", "10"])
            .unwrap_err();
        assert!(err.contains("no ingest gate"), "{err}");
    }

    #[test]
    fn bench_serve_rejects_an_ingest_baseline() {
        let err = run_to_string(&[
            "bench",
            "--scenario",
            "serve",
            "--baseline",
            "bench/baselines/smoke.json",
        ])
        .unwrap_err();
        assert!(err.contains("no ingest gate"), "{err}");
        let err =
            run_to_string(&["bench", "--scenario", "serve", "--max-regress", "10"]).unwrap_err();
        assert!(err.contains("no ingest gate"), "{err}");
    }

    #[test]
    fn serve_durability_flags_fail_loudly() {
        let err = run_to_string(&["serve", "--addr", "127.0.0.1:0", "--sync-policy", "always"])
            .unwrap_err();
        assert!(err.contains("--wal-dir"), "{err}");
        let err =
            run_to_string(&["serve", "--addr", "127.0.0.1:0", "--compact-every", "5"]).unwrap_err();
        assert!(err.contains("--wal-dir"), "{err}");
        let err = run_to_string(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--wal-dir",
            "logs",
            "--verify",
            "rebuild",
        ])
        .unwrap_err();
        assert!(err.contains("conflicts with --wal-dir"), "{err}");
        let err = run_to_string(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--wal-dir",
            "logs",
            "--sync-policy",
            "sometimes",
        ])
        .unwrap_err();
        assert!(err.contains("sync policy"), "{err}");
    }

    #[test]
    fn wal_flags_fail_loudly() {
        let err = run_to_string(&["wal", "inspect"]).unwrap_err();
        assert!(err.contains("--dir"), "{err}");
        let err = run_to_string(&["wal", "replay"]).unwrap_err();
        assert!(err.contains("--dir"), "{err}");
        let err = run_to_string(&["wal", "inspect", "--dri", "logs"]).unwrap_err();
        assert!(err.contains("unknown flag --dri"), "{err}");
    }

    #[test]
    fn snapshot_inspect_json_is_machine_readable() {
        use geodabs_bench::json::Json;
        let path = tmp("inspect-json.gdab");
        run_to_string(&["snapshot", "save", "--scenario", "micro", "--out", &path]).unwrap();
        let out = run_to_string(&["snapshot", "inspect", "--in", &path, "--json"]).unwrap();
        let parsed = Json::parse(&out).expect("valid JSON");
        assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("snapshot"));
        assert_eq!(parsed.get("backend").and_then(Json::as_str), Some("geodab"));
        assert_eq!(
            parsed.get("format_version").and_then(Json::as_f64),
            Some(2.0)
        );
        assert_eq!(parsed.get("watermark"), Some(&Json::Null));
        let sections = parsed
            .get("sections")
            .and_then(Json::as_array)
            .expect("sections array");
        assert!(!sections.is_empty());
        assert!(sections
            .iter()
            .any(|s| s.get("name").and_then(Json::as_str) == Some("CONF")));
    }

    #[test]
    fn wal_inspect_replay_and_stamped_snapshot_roundtrip() {
        use geodabs_bench::json::Json;
        use geodabs_wal::{SyncPolicy, Wal, WalOp};
        let dir = std::env::temp_dir().join(format!("geodabs-cli-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");

        // Log three inserts and one remove through the real WAL.
        let ds = Dataset::generate(
            &network(5),
            &DatasetConfig {
                routes: 2,
                per_direction: 2,
                ..DatasetConfig::default()
            },
            5,
        )
        .unwrap();
        let mut wal = Wal::open(&dir, SyncPolicy::Always).unwrap();
        for r in &ds.records()[..3] {
            wal.append(&WalOp::Insert {
                id: r.id,
                trajectory: r.trajectory.clone(),
            })
            .unwrap();
        }
        wal.append(&WalOp::Remove {
            id: ds.records()[0].id,
        })
        .unwrap();
        drop(wal);

        let out = run_to_string(&["wal", "inspect", "--dir", dir.to_str().unwrap()]).unwrap();
        assert!(out.contains("snapshot          none"), "{out}");
        assert!(out.contains("4 records"), "{out}");
        assert!(out.contains("last seq 4"), "{out}");

        // Offline replay: 3 inserts − 1 remove = 2 live trajectories,
        // persisted as a watermark-stamped compacted snapshot.
        let compacted = dir.join("offline.gdab");
        let out = run_to_string(&[
            "wal",
            "replay",
            "--dir",
            dir.to_str().unwrap(),
            "--out",
            compacted.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("snapshot          none"), "{out}");
        assert!(
            out.contains("replayed          4 record(s) beyond watermark 0: 2 trajectories"),
            "{out}"
        );
        assert!(out.contains("watermark 4"), "{out}");

        // The stamp is visible to both inspect modes…
        let out =
            run_to_string(&["snapshot", "inspect", "--in", compacted.to_str().unwrap()]).unwrap();
        assert!(out.contains("wal watermark     seq 4"), "{out}");
        let out = run_to_string(&[
            "snapshot",
            "inspect",
            "--in",
            compacted.to_str().unwrap(),
            "--json",
        ])
        .unwrap();
        let parsed = Json::parse(&out).expect("valid JSON");
        assert_eq!(parsed.get("watermark").and_then(Json::as_f64), Some(4.0));

        // …and the snapshot still loads (the WMRK section is ignored by
        // the backend decoder).
        let out =
            run_to_string(&["snapshot", "load", "--in", compacted.to_str().unwrap()]).unwrap();
        assert!(out.contains("2 trajectories"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_boots_from_a_wal_dir_and_replays_acked_writes() {
        use geodabs_serve::Client;
        use geodabs_wal::{SyncPolicy, Wal, WalOp};
        let _guard = crate::signals::TEST_FLAG_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let dir =
            std::env::temp_dir().join(format!("geodabs-cli-serve-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");

        // Seed the log as a crashed durable server would have left it.
        let ds = Dataset::generate(
            &network(6),
            &DatasetConfig {
                routes: 2,
                per_direction: 2,
                ..DatasetConfig::default()
            },
            6,
        )
        .unwrap();
        let mut wal = Wal::open(&dir, SyncPolicy::Always).unwrap();
        for r in &ds.records()[..3] {
            wal.append(&WalOp::Insert {
                id: r.id,
                trajectory: r.trajectory.clone(),
            })
            .unwrap();
        }
        drop(wal);

        // Boot from the log directory alone: empty index + full replay.
        let buf = SharedBuf::default();
        let server_buf = buf.clone();
        let dir_for_server = dir.to_str().unwrap().to_string();
        std::thread::spawn(move || {
            let args = Args::parse([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--wal-dir",
                &dir_for_server,
                "--threads",
                "2",
                "--duration",
                "60",
            ])
            .expect("valid serve args");
            let mut out = server_buf;
            run(&args, &mut out).map_err(|e| e.to_string())
        });
        let replay_line = buf.wait_for("wal replay        ");
        assert!(
            replay_line.contains("3 record(s) beyond watermark 0"),
            "{replay_line}"
        );
        let addr_line = buf.wait_for("listening on      ");
        let addr = addr_line.split_whitespace().next().expect("addr token");

        // The replayed state serves, and new acked writes extend the log.
        let mut client = Client::connect(addr).expect("connect");
        let stats = client.stats_durable().expect("stats");
        assert_eq!(stats.trajectories, 3);
        let durability = stats.durability.expect("durable server reports wal state");
        assert_eq!(durability.last_durable_seq, 3);
        let next = &ds.records()[3];
        client.insert(next.id, &next.trajectory).expect("insert");
        let stats = client.stats_durable().expect("stats");
        assert_eq!(stats.trajectories, 4);
        assert_eq!(stats.durability.expect("durability").last_durable_seq, 4);
    }

    #[test]
    fn bench_distributed_rejects_an_ingest_baseline() {
        let err = run_to_string(&[
            "bench",
            "--scenario",
            "distributed",
            "--baseline",
            "bench/baselines/smoke.json",
        ])
        .unwrap_err();
        assert!(err.contains("no ingest gate"), "{err}");
        let err = run_to_string(&["bench", "--scenario", "distributed", "--max-regress", "10"])
            .unwrap_err();
        assert!(err.contains("no ingest gate"), "{err}");
    }

    #[test]
    fn frontend_flags_fail_loudly() {
        let err = run_to_string(&["frontend", "--shards", "127.0.0.1:1"]).unwrap_err();
        assert!(err.contains("--addr"), "{err}");
        let err = run_to_string(&["frontend", "--addr", "127.0.0.1:0"]).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        let err =
            run_to_string(&["frontend", "--addr", "127.0.0.1:0", "--shards", ",,"]).unwrap_err();
        assert!(err.contains("at least one"), "{err}");
        let err = run_to_string(&[
            "frontend",
            "--addr",
            "127.0.0.1:0",
            "--shrads",
            "127.0.0.1:1",
        ])
        .unwrap_err();
        assert!(err.contains("unknown flag --shrads"), "{err}");
    }

    #[test]
    fn serve_shard_id_flags_fail_loudly() {
        let err = run_to_string(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--scenario",
            "micro",
            "--shard-id",
            "0",
            "--backend",
            "geohash",
        ])
        .unwrap_err();
        assert!(err.contains("conflicts with --shard-id"), "{err}");
        let err = run_to_string(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--snapshot",
            "x.gdab",
            "--shard-id",
            "0",
        ])
        .unwrap_err();
        assert!(err.contains("conflicts with --snapshot"), "{err}");
        let err = run_to_string(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--scenario",
            "micro",
            "--shard-id",
            "9",
            "--nodes",
            "2",
        ])
        .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    /// The full distributed loop in one process: two `serve --shard-id`
    /// servers, a `frontend` over them, and `loadtest --verify local`
    /// proving every scattered answer bit-identical to the monolithic
    /// rebuild.
    #[test]
    fn shard_servers_and_frontend_roundtrip_on_loopback() {
        let _guard = crate::signals::TEST_FLAG_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("geodabs-cli-frontend-test");
        std::fs::create_dir_all(&dir).expect("mkdir");

        let mut shard_addrs = Vec::new();
        for shard_id in ["0", "1"] {
            let buf = SharedBuf::default();
            let server_buf = buf.clone();
            std::thread::spawn(move || {
                let args = Args::parse([
                    "serve",
                    "--addr",
                    "127.0.0.1:0",
                    "--scenario",
                    "micro",
                    "--shard-id",
                    shard_id,
                    "--nodes",
                    "2",
                    "--threads",
                    "4",
                    "--duration",
                    "60",
                ])
                .expect("valid serve args");
                let mut out = server_buf;
                run(&args, &mut out).map_err(|e| e.to_string())
            });
            let ingest_line = buf.wait_for("ingested          ");
            assert!(ingest_line.contains("node index"), "{ingest_line}");
            let addr_line = buf.wait_for("listening on      ");
            shard_addrs.push(
                addr_line
                    .split_whitespace()
                    .next()
                    .expect("addr token")
                    .to_string(),
            );
        }

        let buf = SharedBuf::default();
        let frontend_buf = buf.clone();
        let shards_flag = shard_addrs.join(",");
        std::thread::spawn(move || {
            let args = Args::parse([
                "frontend",
                "--addr",
                "127.0.0.1:0",
                "--shards",
                &shards_flag,
                "--threads",
                "4",
                "--duration",
                "60",
            ])
            .expect("valid frontend args");
            let mut out = frontend_buf;
            run(&args, &mut out).map_err(|e| e.to_string())
        });
        let addr_line = buf.wait_for("listening on      ");
        let addr = addr_line.split_whitespace().next().expect("addr token");

        let out = run_to_string(&[
            "loadtest",
            "--addr",
            addr,
            "--connections",
            "2",
            "--duration",
            "1",
            "--scenario",
            "micro",
            "--out",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("server            frontend"), "{out}");
        assert!(
            out.contains("topology          frontend over 2 shard server(s)"),
            "{out}"
        );
        assert!(out.contains("verify            PASS"), "{out}");
    }

    #[test]
    fn export_writes_parseable_csv() {
        let path = tmp("export.csv");
        let out = run_to_string(&[
            "export",
            "--out",
            &path,
            "--routes",
            "2",
            "--per-direction",
            "1",
            "--seed",
            "5",
        ])
        .unwrap();
        assert!(out.contains("exported 4 trajectories"), "{out}");
        let file = std::fs::File::open(&path).unwrap();
        let records = geodabs_gen::csv::read_records(std::io::BufReader::new(file)).unwrap();
        assert_eq!(records.len(), 4);
        assert!(records.iter().all(|r| r.trajectory.len() > 10));
    }
}
