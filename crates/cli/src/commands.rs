//! The subcommand implementations.

use geodabs_cluster::ClusterIndex;
use geodabs_core::GeodabConfig;
use geodabs_gen::dataset::{Dataset, DatasetConfig};
use geodabs_gen::world::{WorldActivity, WorldConfig};
use geodabs_index::store::{self, BackendKind, Persist, SnapshotReader};
use geodabs_index::tuning::{hill_climb, TuningSample};
use geodabs_index::{codec, GeodabIndex, GeohashIndex, SearchOptions, TrajectoryIndex};
use geodabs_roadnet::generators::{grid_network, GridConfig};
use geodabs_roadnet::RoadNetwork;
use std::collections::HashSet;
use std::error::Error;
use std::time::Instant;

use crate::Args;

/// Runs the subcommand selected by `args`, writing human-readable output
/// to `out`.
///
/// # Errors
///
/// Propagates flag, I/O, decoding and generation errors.
pub fn run(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    match args.command() {
        "build" => build(args, out),
        "stats" => stats(args, out),
        "search" => search(args, out),
        "tune" => tune(args, out),
        "world" => world(args, out),
        "export" => export(args, out),
        "bench" => bench(args, out),
        "snapshot" => snapshot(args, out),
        "help" => {
            write!(out, "{}", HELP)?;
            Ok(())
        }
        other => unreachable!("parser rejects unknown command {other}"),
    }
}

/// Usage text.
pub const HELP: &str = "\
geodabs — trajectory indexing with fingerprints (ICDCS 2018 reproduction)

USAGE:
  geodabs build  --out FILE [--routes N] [--per-direction M] [--seed S]
  geodabs stats  --index FILE
  geodabs search --index FILE [--routes N] [--per-direction M] [--seed S]
                 [--query Q] [--limit K]
  geodabs tune   [--routes N] [--seed S] [--steps T]
  geodabs world  [--trajectories N] [--cities C] [--seed S]
  geodabs export --out FILE.csv [--routes N] [--per-direction M] [--seed S]
  geodabs bench  [--scenario NAME] [--threads T] [--out DIR] [--seed S]
                 [--baseline FILE] [--max-regress PCT]
  geodabs snapshot save    --out FILE [--backend geodab|geohash|cluster]
                           [--scenario NAME] [--seed S] [--nodes N] [--shards P]
  geodabs snapshot load    --in FILE [--verify rebuild] [--scenario NAME] [--seed S]
  geodabs snapshot inspect --in FILE
  geodabs help

Datasets are synthetic and reproducible: the same (routes, per-direction,
seed) triple always generates the same trajectories, so `search` can
regenerate its query workload against a persisted index.

`bench` without --scenario lists the workload catalog; with one it runs
the scenario at thread counts 1,2,4,8 (capped by --threads) and writes a
machine-readable BENCH_<scenario>.json report. With --baseline it also
enforces the CI perf gate: the run fails if batch-ingest throughput
drops more than --max-regress percent (default 30) below the baseline's,
or if query-latency p95 rises more than the same percentage above it.
The special `cold-start` scenario instead measures snapshot save/load
bandwidth and the restore-vs-reingest speedup.

`snapshot save` ingests a bench scenario's corpus (default: micro) into
the chosen backend and writes a GDAB v2 snapshot; `load` restores it
(any backend, v1 blobs included) and with `--verify rebuild` re-ingests
the same corpus and fails unless both answer every scenario query
identically; `inspect` prints the container header and section table
without materializing the index.
";

fn network(seed: u64) -> RoadNetwork {
    grid_network(&GridConfig::default(), seed)
}

fn dataset_from_args(args: &Args) -> Result<Dataset, Box<dyn Error>> {
    let routes = args.usize_or("routes", 20)?;
    let per_direction = args.usize_or("per-direction", 5)?;
    let seed = args.u64_or("seed", 42)?;
    let cfg = DatasetConfig {
        routes,
        per_direction,
        queries: routes.min(16),
        ..DatasetConfig::default()
    };
    Ok(Dataset::generate(&network(seed), &cfg, seed)?)
}

fn build(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let path = args.string_required("out")?;
    let ds = dataset_from_args(args)?;
    let mut index = GeodabIndex::new(GeodabConfig::default());
    for r in ds.records() {
        index.insert(r.id, &r.trajectory);
    }
    let bytes = codec::encode(&index);
    std::fs::write(&path, &bytes)?;
    writeln!(
        out,
        "indexed {} trajectories ({} terms) into {} ({} bytes)",
        index.len(),
        index.term_count(),
        path,
        bytes.len()
    )?;
    Ok(())
}

fn stats(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let path = args.string_required("index")?;
    let bytes = std::fs::read(&path)?;
    let index = codec::decode(&bytes)?;
    let cfg = index.config();
    writeln!(out, "index file        {path}")?;
    writeln!(out, "trajectories      {}", index.len())?;
    writeln!(out, "distinct terms    {}", index.term_count())?;
    writeln!(
        out,
        "config            depth={} k={} t={} (w={}) prefix={} bits",
        cfg.normalization_depth(),
        cfg.k(),
        cfg.t(),
        cfg.window(),
        cfg.prefix_bits()
    )?;
    let total_fps: usize = index.iter_fingerprints().map(|(_, fp)| fp.len()).sum();
    writeln!(
        out,
        "fingerprints      {} total, {:.1} per trajectory",
        total_fps,
        total_fps as f64 / index.len().max(1) as f64
    )?;
    Ok(())
}

fn search(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let path = args.string_required("index")?;
    let bytes = std::fs::read(&path)?;
    let index = codec::decode(&bytes)?;
    let ds = dataset_from_args(args)?;
    let qi = args.usize_or("query", 0)?;
    let limit = args.usize_or("limit", 10)?;
    let query = ds.queries().get(qi).ok_or_else(|| {
        format!(
            "query index {qi} out of range (have {})",
            ds.queries().len()
        )
    })?;
    let relevant = ds.relevant_ids(query);
    let hits = index.search(&query.trajectory, &SearchOptions::default().limit(limit));
    writeln!(
        out,
        "query {qi} (route {}, {} points): {} hit(s)",
        query.route,
        query.trajectory.len(),
        hits.len()
    )?;
    for (rank, h) in hits.iter().enumerate() {
        writeln!(
            out,
            "{:>4}  {:>8}  d={:.3}  {}",
            rank + 1,
            h.id.to_string(),
            h.distance,
            if relevant.contains(&h.id) {
                "relevant"
            } else {
                "-"
            }
        )?;
    }
    Ok(())
}

fn tune(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let ds = dataset_from_args(args)?;
    let steps = args.usize_or("steps", 5)?;
    let corpus: Vec<_> = ds
        .records()
        .iter()
        .map(|r| (r.id, r.trajectory.clone()))
        .collect();
    let queries: Vec<_> = ds
        .queries()
        .iter()
        .map(|q| {
            let rel: HashSet<_> = ds.relevant_ids(q);
            (q.trajectory.clone(), rel)
        })
        .collect();
    let sample = TuningSample::new(corpus, queries);
    let result = hill_climb(&sample, GeodabConfig::default(), steps);
    writeln!(out, "evaluated {} configurations", result.evaluations)?;
    for (cfg, score) in &result.trace {
        writeln!(
            out,
            "  depth={} k={} t={}  score={score:.3}",
            cfg.normalization_depth(),
            cfg.k(),
            cfg.t()
        )?;
    }
    writeln!(
        out,
        "best: depth={} k={} t={} (mean R-precision {:.3})",
        result.config.normalization_depth(),
        result.config.k(),
        result.config.t(),
        result.score
    )?;
    Ok(())
}

fn world(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let trajectories = args.u64_or("trajectories", 200_000)?;
    let cities = args.usize_or("cities", 1_000)?;
    let seed = args.u64_or("seed", 15)?;
    let activity = WorldActivity::generate(
        &WorldConfig {
            cities,
            trajectories,
            ..WorldConfig::default()
        },
        seed,
    );
    writeln!(out, "trajectories      {}", activity.total())?;
    writeln!(out, "non-empty cells   {}", activity.counts().len())?;
    writeln!(out, "occupancy         {:.4}", activity.occupancy())?;
    writeln!(out, "peak cell         {}", activity.peak())?;
    Ok(())
}

fn bench(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    use geodabs_bench::workload;

    // A typo'd flag must fail loudly: silently ignoring `--scenari` or
    // `--basline` would skip the benchmark or the CI gate while the job
    // reports success.
    args.reject_unknown_flags(&[
        "scenario",
        "threads",
        "out",
        "seed",
        "baseline",
        "max-regress",
    ])?;
    if !args.has_flags() {
        writeln!(out, "available scenarios (run with --scenario NAME):")?;
        for s in workload::catalog() {
            writeln!(
                out,
                "  {:<18} {:<13} corpus {:>7}  queries {:>4}  seed {}",
                s.name,
                s.preset.name(),
                s.corpus,
                s.queries,
                s.seed
            )?;
        }
        return Ok(());
    }
    let name = args.string_required("scenario")?;
    let mut scenario = workload::find(&name)
        .ok_or_else(|| format!("unknown scenario {name:?} (run `geodabs bench` to list)"))?;
    scenario.seed = args.u64_or("seed", scenario.seed)?;
    let max_threads = args.usize_or("threads", 8)?;
    let threads = workload::thread_ladder(max_threads);
    let out_dir = args.string_or("out", ".");
    let max_regress = args.u64_or("max-regress", 30)? as f64;

    // The cold-start scenario measures snapshot save/load instead of the
    // ingest/query ladder and emits a differently-shaped report, so it
    // cannot gate against an ingest baseline.
    if scenario.name == workload::COLD_START {
        // Fail loudly on gate flags instead of silently skipping the
        // gate: a CI script passing them would otherwise read as
        // "regression checked" while nothing was enforced.
        if args.has("baseline") || args.has("max-regress") {
            return Err(
                "the cold-start scenario has no ingest gate; run it without \
                        --baseline/--max-regress"
                    .into(),
            );
        }
        writeln!(
            out,
            "scenario {} ({}, corpus {}, {} queries, seed {}), reingest threads {}",
            scenario.name,
            scenario.preset.name(),
            scenario.corpus,
            scenario.queries,
            scenario.seed,
            max_threads.max(1)
        )?;
        let report = workload::run_cold_start(&scenario, max_threads);
        writeln!(
            out,
            "corpus            {} trajectories, {} points, {} distinct terms ({:.2}s to generate)",
            report.trajectories, report.points, report.distinct_terms, report.generation_seconds
        )?;
        writeln!(
            out,
            "reingest          {:>9.3}s  ({} threads)",
            report.reingest_seconds, report.reingest_threads
        )?;
        writeln!(
            out,
            "snapshot save     {:>9.3}s  {:>8.1} MB/s  ({} bytes)",
            report.save_seconds,
            report.save_mb_per_s(),
            report.snapshot_bytes
        )?;
        writeln!(
            out,
            "snapshot load     {:>9.3}s  {:>8.1} MB/s",
            report.load_seconds,
            report.load_mb_per_s()
        )?;
        writeln!(
            out,
            "restore speedup   {:.1}× faster than re-ingest",
            report.restore_speedup
        )?;
        let path = std::path::Path::new(&out_dir).join(report.file_name());
        std::fs::write(&path, report.to_json().pretty())?;
        writeln!(out, "report            {}", path.display())?;
        if !report.consistent {
            return Err("restored index diverged from the freshly built index".into());
        }
        return Ok(());
    }

    // Gate inputs are validated *before* the (possibly minutes-long)
    // measurement so an unreadable baseline or a vacuous allowance fails
    // in milliseconds.
    let baseline = match args.string_required("baseline") {
        Ok(path) => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading baseline {path}: {e}"))?;
            workload::preflight_gate(&scenario, &text, max_regress)?;
            Some(text)
        }
        Err(_) => None,
    };

    writeln!(
        out,
        "scenario {} ({}, corpus {}, {} queries, seed {}), threads {threads:?}",
        scenario.name,
        scenario.preset.name(),
        scenario.corpus,
        scenario.queries,
        scenario.seed
    )?;
    let report = workload::run_scenario(&scenario, &threads);
    writeln!(
        out,
        "corpus            {} trajectories, {} points, {} distinct terms ({:.2}s to generate)",
        report.trajectories, report.points, report.distinct_terms, report.generation_seconds
    )?;
    for run in &report.ingest {
        writeln!(
            out,
            "ingest  {:>2} thread(s)  {:>9.3}s  {:>11.1} traj/s",
            run.threads, run.seconds, run.traj_per_sec
        )?;
    }
    writeln!(
        out,
        "query latency     p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  (n={})",
        report.latency.p50, report.latency.p95, report.latency.p99, scenario.queries
    )?;
    for run in &report.query_batches {
        writeln!(
            out,
            "query   {:>2} thread(s)  {:>9.3}s  {:>11.1} queries/s",
            run.threads, run.seconds, run.queries_per_sec
        )?;
    }

    // Write the report before any failure below: a consistency or gate
    // failure is exactly when the machine-readable record matters most
    // (CI uploads it as an artifact even for failing runs).
    let path = std::path::Path::new(&out_dir).join(report.file_name());
    std::fs::write(&path, report.to_json().pretty())?;
    writeln!(out, "report            {}", path.display())?;

    if !report.ingest_consistent {
        return Err("parallel ingest diverged from the serial build (len/term_count)".into());
    }

    if let Some(baseline) = baseline {
        let verdict = workload::check_gate(&report, &baseline, max_regress)?;
        writeln!(
            out,
            "perf gate         current {:.1} traj/s vs baseline {:.1} (floor {:.1}, -{max_regress}%)",
            verdict.current, verdict.baseline, verdict.floor
        )?;
        match (verdict.latency_baseline_p95, verdict.latency_ceiling) {
            (Some(baseline_p95), Some(ceiling)) => writeln!(
                out,
                "perf gate         current p95 {:.3} ms vs baseline {baseline_p95:.3} \
                 (ceiling {ceiling:.3}, +{max_regress}%)",
                verdict.latency_p95
            )?,
            _ => writeln!(
                out,
                "perf gate         baseline records no query latency; p95 check skipped"
            )?,
        }
        if !verdict.pass {
            if verdict.current < verdict.floor {
                return Err(format!(
                    "perf gate FAILED: ingest throughput {:.1} traj/s is below the floor {:.1} \
                     ({:.1} baseline − {max_regress}%)",
                    verdict.current, verdict.floor, verdict.baseline
                )
                .into());
            }
            return Err(format!(
                "perf gate FAILED: query-latency p95 {:.3} ms is above the ceiling {:.3} ms \
                 ({:.3} baseline + {max_regress}%)",
                verdict.latency_p95,
                verdict.latency_ceiling.unwrap_or(f64::NAN),
                verdict.latency_baseline_p95.unwrap_or(f64::NAN)
            )
            .into());
        }
        writeln!(out, "perf gate         PASS")?;
    }
    Ok(())
}

fn snapshot(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    match args.action().expect("parser guarantees a snapshot action") {
        "save" => snapshot_save(args, out),
        "load" => snapshot_load(args, out),
        "inspect" => snapshot_inspect(args, out),
        other => unreachable!("parser rejects unknown action {other}"),
    }
}

/// Resolves a bench scenario (for `snapshot save`/`load --verify`) and
/// generates its reproducible dataset.
fn scenario_dataset(
    args: &Args,
) -> Result<(geodabs_bench::workload::Scenario, Dataset), Box<dyn Error>> {
    use geodabs_bench::workload;
    let name = args.string_or("scenario", "micro");
    let mut scenario = workload::find(&name)
        .ok_or_else(|| format!("unknown scenario {name:?} (run `geodabs bench` to list)"))?;
    scenario.seed = args.u64_or("seed", scenario.seed)?;
    let network = grid_network(&scenario.preset.grid(), scenario.seed);
    let dataset = Dataset::generate(
        &network,
        &scenario.preset.dataset(scenario.corpus, scenario.queries),
        scenario.seed,
    )?;
    Ok((scenario, dataset))
}

fn snapshot_save(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    args.reject_unknown_flags(&["backend", "out", "scenario", "seed", "nodes", "shards"])?;
    let path = args.string_required("out")?;
    let backend = args.string_or("backend", "geodab");
    // Validate the backend *before* the (possibly minutes-long) corpus
    // generation, so a typo fails in milliseconds.
    if !["geodab", "geohash", "cluster"].contains(&backend.as_str()) {
        return Err(format!("unknown backend {backend:?} (geodab|geohash|cluster)").into());
    }
    let (scenario, dataset) = scenario_dataset(args)?;
    let items: Vec<_> = dataset
        .records()
        .iter()
        .map(|r| (r.id, &r.trajectory))
        .collect();
    let config = GeodabConfig::default();

    let started = Instant::now();
    let (len, terms, written) = match backend.as_str() {
        "geodab" => {
            let mut index = GeodabIndex::new(config);
            index.insert_batch(items);
            (index.len(), index.term_count(), index.save_to(&path)?)
        }
        "geohash" => {
            let mut index = GeohashIndex::new(config.normalization_depth());
            index.insert_batch(items);
            (index.len(), index.term_count(), index.save_to(&path)?)
        }
        "cluster" => {
            let shards = args.u64_or("shards", 10_000)?;
            let nodes = args.usize_or("nodes", 8)?;
            let mut index = ClusterIndex::new(config, shards, nodes)?;
            index.insert_batch(items);
            (index.len(), index.active_shards(), index.save_to(&path)?)
        }
        other => {
            return Err(format!("unknown backend {other:?} (geodab|geohash|cluster)").into());
        }
    };
    let seconds = started.elapsed().as_secs_f64();
    writeln!(
        out,
        "saved {backend} snapshot of scenario {} ({len} trajectories, {terms} terms/shards) \
         to {path}: {written} bytes in {seconds:.3}s",
        scenario.name
    )?;
    Ok(())
}

/// A snapshot materialized without knowing its backend up front.
enum Loaded {
    Geodab(GeodabIndex),
    Geohash(GeohashIndex),
    Cluster(ClusterIndex),
}

impl Loaded {
    fn from_bytes(bytes: &[u8]) -> Result<Loaded, Box<dyn Error>> {
        match store::peek_version(bytes)? {
            store::VERSION_V1 => Ok(Loaded::Geodab(codec::decode(bytes)?)),
            _ => {
                let reader = SnapshotReader::parse(bytes)?;
                match reader.backend() {
                    Some(BackendKind::Geodab) => {
                        Ok(Loaded::Geodab(GeodabIndex::from_snapshot(bytes)?))
                    }
                    Some(BackendKind::Geohash) => {
                        Ok(Loaded::Geohash(GeohashIndex::from_snapshot(bytes)?))
                    }
                    Some(BackendKind::Cluster) => {
                        Ok(Loaded::Cluster(ClusterIndex::from_snapshot(bytes)?))
                    }
                    None => Err(format!("unknown backend tag {}", reader.backend_tag()).into()),
                }
            }
        }
    }

    fn backend_name(&self) -> &'static str {
        match self {
            Loaded::Geodab(_) => "geodab",
            Loaded::Geohash(_) => "geohash",
            Loaded::Cluster(_) => "cluster",
        }
    }

    fn len(&self) -> usize {
        match self {
            Loaded::Geodab(index) => index.len(),
            Loaded::Geohash(index) => index.len(),
            Loaded::Cluster(index) => index.len(),
        }
    }
}

fn snapshot_load(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    args.reject_unknown_flags(&["in", "verify", "scenario", "seed"])?;
    let path = args.string_required("in")?;
    let bytes = std::fs::read(&path)?;
    let started = Instant::now();
    let loaded = Loaded::from_bytes(&bytes)?;
    let seconds = started.elapsed().as_secs_f64();
    writeln!(
        out,
        "loaded {} snapshot: {} trajectories from {} bytes in {seconds:.3}s ({:.1} MB/s)",
        loaded.backend_name(),
        loaded.len(),
        bytes.len(),
        bytes.len() as f64 / 1e6 / seconds.max(1e-9)
    )?;

    match args.string_or("verify", "").as_str() {
        "" => Ok(()),
        "rebuild" => {
            let (scenario, dataset) = scenario_dataset(args)?;
            let items: Vec<_> = dataset
                .records()
                .iter()
                .map(|r| (r.id, &r.trajectory))
                .collect();
            let options = SearchOptions::default().limit(10);
            // Re-ingest the same corpus into a fresh index of the same
            // backend and demand identical answers on every scenario
            // query.
            fn mismatches_against<I: TrajectoryIndex, J: TrajectoryIndex>(
                dataset: &Dataset,
                options: &SearchOptions,
                restored: &I,
                fresh: &J,
            ) -> usize {
                dataset
                    .queries()
                    .iter()
                    .filter(|q| {
                        restored.search(&q.trajectory, options)
                            != fresh.search(&q.trajectory, options)
                    })
                    .count()
            }
            let mismatches = match &loaded {
                Loaded::Geodab(index) => {
                    let mut fresh = GeodabIndex::new(*index.config());
                    fresh.insert_batch(items);
                    if fresh.len() != index.len() || fresh.term_count() != index.term_count() {
                        return Err("rebuilt index shape differs from the snapshot".into());
                    }
                    mismatches_against(&dataset, &options, index, &fresh)
                }
                Loaded::Geohash(index) => {
                    let mut fresh = GeohashIndex::new(index.depth());
                    fresh.insert_batch(items);
                    if fresh.len() != index.len() || fresh.term_count() != index.term_count() {
                        return Err("rebuilt index shape differs from the snapshot".into());
                    }
                    mismatches_against(&dataset, &options, index, &fresh)
                }
                Loaded::Cluster(index) => {
                    let mut fresh = ClusterIndex::new(
                        *index.config(),
                        index.router().num_shards(),
                        index.router().num_nodes(),
                    )?;
                    fresh.insert_batch(items);
                    if fresh.len() != index.len() {
                        return Err("rebuilt cluster shape differs from the snapshot".into());
                    }
                    mismatches_against(&dataset, &options, index, &fresh)
                }
            };
            if mismatches > 0 {
                return Err(format!(
                    "snapshot verify FAILED: {mismatches} of {} queries answered differently \
                     than a fresh rebuild of scenario {}",
                    dataset.queries().len(),
                    scenario.name
                )
                .into());
            }
            writeln!(
                out,
                "verify            PASS ({} queries identical to a fresh rebuild of {})",
                dataset.queries().len(),
                scenario.name
            )?;
            Ok(())
        }
        other => Err(format!("invalid value {other:?} for --verify (expected \"rebuild\")").into()),
    }
}

fn snapshot_inspect(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    args.reject_unknown_flags(&["in"])?;
    let path = args.string_required("in")?;
    let bytes = std::fs::read(&path)?;
    let version = store::peek_version(&bytes)?;
    writeln!(out, "snapshot file     {path}")?;
    writeln!(out, "size              {} bytes", bytes.len())?;
    writeln!(out, "format version    {version}")?;
    if version == store::VERSION_V1 {
        writeln!(
            out,
            "layout            legacy v1 geodab codec (raw fingerprint sequences, \
             engine state rebuilt on load)"
        )?;
        return Ok(());
    }
    let reader = SnapshotReader::parse(&bytes)?;
    match reader.backend() {
        Some(kind) => writeln!(out, "backend           {kind}")?,
        None => writeln!(
            out,
            "backend           unknown (tag {})",
            reader.backend_tag()
        )?,
    }
    writeln!(
        out,
        "sections          {} (all checksums OK)",
        reader.sections().len()
    )?;
    for &(id, payload) in reader.sections() {
        writeln!(
            out,
            "  {:<8} {:>12} bytes",
            store::section_name(id),
            payload.len()
        )?;
    }
    Ok(())
}

fn export(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let path = args.string_required("out")?;
    let ds = dataset_from_args(args)?;
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
    geodabs_gen::csv::write_records(ds.records(), &mut file)?;
    use std::io::Write as _;
    file.flush()?;
    writeln!(
        out,
        "exported {} trajectories ({} points) to {}",
        ds.records().len(),
        ds.total_points(),
        path
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(argv: &[&str]) -> Result<String, String> {
        let args = Args::parse(argv.iter().copied()).map_err(|e| e.to_string())?;
        let mut buf = Vec::new();
        run(&args, &mut buf).map_err(|e| e.to_string())?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("geodabs-cli-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        let out = run_to_string(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("geodabs build"));
    }

    #[test]
    fn build_stats_search_roundtrip() {
        let path = tmp("roundtrip.gdab");
        let out = run_to_string(&[
            "build",
            "--out",
            &path,
            "--routes",
            "4",
            "--per-direction",
            "2",
            "--seed",
            "9",
        ])
        .unwrap();
        assert!(out.contains("indexed 16 trajectories"), "{out}");

        let out = run_to_string(&["stats", "--index", &path]).unwrap();
        assert!(out.contains("trajectories      16"), "{out}");
        assert!(out.contains("depth=36 k=6 t=12"), "{out}");

        let out = run_to_string(&[
            "search",
            "--index",
            &path,
            "--routes",
            "4",
            "--per-direction",
            "2",
            "--seed",
            "9",
            "--limit",
            "3",
        ])
        .unwrap();
        assert!(out.contains("query 0"), "{out}");
        assert!(out.contains("relevant"), "{out}");
    }

    #[test]
    fn search_rejects_out_of_range_query() {
        let path = tmp("range.gdab");
        run_to_string(&[
            "build",
            "--out",
            &path,
            "--routes",
            "2",
            "--per-direction",
            "2",
            "--seed",
            "3",
        ])
        .unwrap();
        let err = run_to_string(&[
            "search",
            "--index",
            &path,
            "--routes",
            "2",
            "--per-direction",
            "2",
            "--seed",
            "3",
            "--query",
            "99",
        ])
        .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn stats_rejects_garbage_files() {
        let path = tmp("garbage.gdab");
        std::fs::write(&path, b"not an index").unwrap();
        let err = run_to_string(&["stats", "--index", &path]).unwrap_err();
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn world_prints_summary() {
        let out = run_to_string(&[
            "world",
            "--trajectories",
            "5000",
            "--cities",
            "50",
            "--seed",
            "2",
        ])
        .unwrap();
        assert!(out.contains("trajectories      5000"), "{out}");
        assert!(out.contains("peak cell"), "{out}");
    }

    #[test]
    fn tune_reports_a_best_config() {
        let out = run_to_string(&[
            "tune",
            "--routes",
            "3",
            "--per-direction",
            "2",
            "--seed",
            "4",
            "--steps",
            "1",
        ])
        .unwrap();
        assert!(out.contains("best: depth="), "{out}");
        assert!(out.contains("evaluated"), "{out}");
    }

    #[test]
    fn missing_required_flags_error_cleanly() {
        assert!(run_to_string(&["build"]).unwrap_err().contains("--out"));
        assert!(run_to_string(&["stats"]).unwrap_err().contains("--index"));
        assert!(run_to_string(&["export"]).unwrap_err().contains("--out"));
    }

    #[test]
    fn bench_without_scenario_lists_the_catalog() {
        let out = run_to_string(&["bench"]).unwrap();
        assert!(out.contains("available scenarios"), "{out}");
        assert!(out.contains("smoke"), "{out}");
        assert!(out.contains("dense-urban-10k"), "{out}");
        assert!(out.contains("sparse-rural-1k"), "{out}");
    }

    #[test]
    fn bench_rejects_unknown_scenarios() {
        let err = run_to_string(&["bench", "--scenario", "warp-speed"]).unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
    }

    #[test]
    fn bench_fails_loudly_on_typoed_or_missing_flags() {
        // A typo'd flag must not silently fall back to listing the
        // catalog (which would let a broken CI invocation pass green).
        let err = run_to_string(&["bench", "--scenari", "smoke"]).unwrap_err();
        assert!(err.contains("unknown flag --scenari"), "{err}");
        let err = run_to_string(&["bench", "--scenario", "micro", "--basline", "x"]).unwrap_err();
        assert!(err.contains("unknown flag --basline"), "{err}");
        // Flags without a scenario: an incomplete invocation, not a
        // listing request.
        let err = run_to_string(&["bench", "--threads", "2"]).unwrap_err();
        assert!(err.contains("--scenario"), "{err}");
    }

    #[test]
    fn bench_micro_emits_a_valid_report_and_gates_against_it() {
        use geodabs_bench::json::Json;
        let dir = std::env::temp_dir().join("geodabs-cli-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let out = run_to_string(&[
            "bench",
            "--scenario",
            "micro",
            "--threads",
            "2",
            "--out",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("ingest   1 thread(s)"), "{out}");
        assert!(out.contains("query latency"), "{out}");
        let report_path = dir.join("BENCH_micro.json");
        let text = std::fs::read_to_string(&report_path).expect("report written");
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("scenario").and_then(Json::as_str), Some("micro"));
        assert_eq!(
            parsed.get("schema_version").and_then(Json::as_f64),
            Some(1.0)
        );

        // A fresh run gates cleanly against the report it just produced —
        // with the baseline's p95 relaxed, since micro-scale latency on a
        // loaded test machine is far too noisy to gate the test suite on
        // (the workload tests cover the latency gate deterministically).
        let relaxed: String = text
            .lines()
            .map(|line| {
                if let Some(idx) = line.find("\"p95\":") {
                    let comma = if line.trim_end().ends_with(',') {
                        ","
                    } else {
                        ""
                    };
                    format!("{}\"p95\": 1000000{comma}\n", &line[..idx])
                } else {
                    format!("{line}\n")
                }
            })
            .collect();
        let relaxed_path = dir.join("relaxed.json");
        std::fs::write(&relaxed_path, relaxed).unwrap();
        let out = run_to_string(&[
            "bench",
            "--scenario",
            "micro",
            "--threads",
            "2",
            "--out",
            dir.to_str().unwrap(),
            "--baseline",
            relaxed_path.to_str().unwrap(),
            "--max-regress",
            "95",
        ])
        .unwrap();
        assert!(out.contains("perf gate         PASS"), "{out}");

        // An impossibly fast baseline fails the gate with a clear error.
        let inflated = dir.join("inflated.json");
        std::fs::write(
            &inflated,
            r#"{"schema_version": 1, "scenario": "micro", "seed": 7,
                "ingest": {"runs": [{"threads": 1, "traj_per_sec": 1e15}]}}"#,
        )
        .unwrap();
        let err = run_to_string(&[
            "bench",
            "--scenario",
            "micro",
            "--out",
            dir.to_str().unwrap(),
            "--baseline",
            inflated.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("perf gate FAILED"), "{err}");
        // …and the report was still written for the failing run.
        assert!(dir.join("BENCH_micro.json").exists());

        // Vacuous allowances are rejected in preflight, before the run.
        let err = run_to_string(&[
            "bench",
            "--scenario",
            "micro",
            "--out",
            dir.to_str().unwrap(),
            "--baseline",
            report_path.to_str().unwrap(),
            "--max-regress",
            "100",
        ])
        .unwrap_err();
        assert!(err.contains("max regression"), "{err}");
    }

    #[test]
    fn snapshot_save_load_inspect_roundtrip_all_backends() {
        for backend in ["geodab", "geohash", "cluster"] {
            let path = tmp(&format!("snap-{backend}.gdab"));
            let out = run_to_string(&[
                "snapshot",
                "save",
                "--backend",
                backend,
                "--scenario",
                "micro",
                "--out",
                &path,
            ])
            .unwrap();
            assert!(out.contains(&format!("saved {backend} snapshot")), "{out}");
            assert!(out.contains("40 trajectories"), "{out}");

            let out =
                run_to_string(&["snapshot", "load", "--in", &path, "--scenario", "micro"]).unwrap();
            assert!(out.contains(&format!("loaded {backend} snapshot")), "{out}");
            assert!(out.contains("40 trajectories"), "{out}");

            // Full verification: rebuild the corpus and compare answers.
            let out = run_to_string(&[
                "snapshot",
                "load",
                "--in",
                &path,
                "--scenario",
                "micro",
                "--verify",
                "rebuild",
            ])
            .unwrap();
            assert!(out.contains("verify            PASS"), "{out}");

            let out = run_to_string(&["snapshot", "inspect", "--in", &path]).unwrap();
            assert!(out.contains("format version    2"), "{out}");
            assert!(
                out.contains(&format!("backend           {backend}")),
                "{out}"
            );
            assert!(out.contains("checksums OK"), "{out}");
            assert!(out.contains("CONF"), "{out}");
        }
    }

    #[test]
    fn snapshot_load_rejects_corrupted_files() {
        let path = tmp("snap-corrupt.gdab");
        run_to_string(&["snapshot", "save", "--scenario", "micro", "--out", &path]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = bytes.len() - 30;
        bytes[offset] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let err = run_to_string(&["snapshot", "load", "--in", &path]).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        let err = run_to_string(&["snapshot", "inspect", "--in", &path]).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn snapshot_inspect_reports_legacy_v1_blobs() {
        // `build` writes through the codec; craft a v1 blob explicitly.
        let ds = Dataset::generate(
            &network(9),
            &DatasetConfig {
                routes: 2,
                per_direction: 2,
                ..DatasetConfig::default()
            },
            9,
        )
        .unwrap();
        let mut index = GeodabIndex::new(GeodabConfig::default());
        for r in ds.records() {
            index.insert(r.id, &r.trajectory);
        }
        let path = tmp("snap-v1.gdab");
        std::fs::write(&path, codec::encode_v1(&index)).unwrap();
        let out = run_to_string(&["snapshot", "inspect", "--in", &path]).unwrap();
        assert!(out.contains("format version    1"), "{out}");
        assert!(out.contains("legacy v1"), "{out}");
        // And the v1 blob loads through the version switch.
        let out = run_to_string(&["snapshot", "load", "--in", &path]).unwrap();
        assert!(out.contains("loaded geodab snapshot"), "{out}");
    }

    #[test]
    fn snapshot_flags_fail_loudly() {
        let err = run_to_string(&["snapshot", "save", "--scenario", "micro"]).unwrap_err();
        assert!(err.contains("--out"), "{err}");
        let err = run_to_string(&["snapshot", "save", "--out", "x.gdab", "--backend", "warp"])
            .unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");
        let err = run_to_string(&["snapshot", "frobnicate"]).unwrap_err();
        assert!(err.contains("unknown action"), "{err}");
        let err =
            run_to_string(&["snapshot", "load", "--in", "x", "--verfiy", "rebuild"]).unwrap_err();
        assert!(err.contains("unknown flag --verfiy"), "{err}");
        let path = tmp("snap-verify-flag.gdab");
        run_to_string(&["snapshot", "save", "--scenario", "micro", "--out", &path]).unwrap();
        let err =
            run_to_string(&["snapshot", "load", "--in", &path, "--verify", "yes"]).unwrap_err();
        assert!(err.contains("--verify"), "{err}");
    }

    #[test]
    fn bench_cold_start_rejects_an_ingest_baseline() {
        // Validated before the (multi-second) 10k run starts.
        let err = run_to_string(&[
            "bench",
            "--scenario",
            "cold-start",
            "--baseline",
            "bench/baselines/smoke.json",
        ])
        .unwrap_err();
        assert!(err.contains("no ingest gate"), "{err}");
        // --max-regress alone must fail too, not silently skip the gate.
        let err = run_to_string(&["bench", "--scenario", "cold-start", "--max-regress", "10"])
            .unwrap_err();
        assert!(err.contains("no ingest gate"), "{err}");
    }

    #[test]
    fn export_writes_parseable_csv() {
        let path = tmp("export.csv");
        let out = run_to_string(&[
            "export",
            "--out",
            &path,
            "--routes",
            "2",
            "--per-direction",
            "1",
            "--seed",
            "5",
        ])
        .unwrap();
        assert!(out.contains("exported 4 trajectories"), "{out}");
        let file = std::fs::File::open(&path).unwrap();
        let records = geodabs_gen::csv::read_records(std::io::BufReader::new(file)).unwrap();
        assert_eq!(records.len(), 4);
        assert!(records.iter().all(|r| r.trajectory.len() > 10));
    }
}
