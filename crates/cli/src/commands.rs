//! The subcommand implementations.

use geodabs_core::GeodabConfig;
use geodabs_gen::dataset::{Dataset, DatasetConfig};
use geodabs_gen::world::{WorldActivity, WorldConfig};
use geodabs_index::tuning::{hill_climb, TuningSample};
use geodabs_index::{codec, GeodabIndex, SearchOptions, TrajectoryIndex};
use geodabs_roadnet::generators::{grid_network, GridConfig};
use geodabs_roadnet::RoadNetwork;
use std::collections::HashSet;
use std::error::Error;

use crate::Args;

/// Runs the subcommand selected by `args`, writing human-readable output
/// to `out`.
///
/// # Errors
///
/// Propagates flag, I/O, decoding and generation errors.
pub fn run(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    match args.command() {
        "build" => build(args, out),
        "stats" => stats(args, out),
        "search" => search(args, out),
        "tune" => tune(args, out),
        "world" => world(args, out),
        "export" => export(args, out),
        "help" => {
            write!(out, "{}", HELP)?;
            Ok(())
        }
        other => unreachable!("parser rejects unknown command {other}"),
    }
}

/// Usage text.
pub const HELP: &str = "\
geodabs — trajectory indexing with fingerprints (ICDCS 2018 reproduction)

USAGE:
  geodabs build  --out FILE [--routes N] [--per-direction M] [--seed S]
  geodabs stats  --index FILE
  geodabs search --index FILE [--routes N] [--per-direction M] [--seed S]
                 [--query Q] [--limit K]
  geodabs tune   [--routes N] [--seed S] [--steps T]
  geodabs world  [--trajectories N] [--cities C] [--seed S]
  geodabs export --out FILE.csv [--routes N] [--per-direction M] [--seed S]
  geodabs help

Datasets are synthetic and reproducible: the same (routes, per-direction,
seed) triple always generates the same trajectories, so `search` can
regenerate its query workload against a persisted index.
";

fn network(seed: u64) -> RoadNetwork {
    grid_network(&GridConfig::default(), seed)
}

fn dataset_from_args(args: &Args) -> Result<Dataset, Box<dyn Error>> {
    let routes = args.usize_or("routes", 20)?;
    let per_direction = args.usize_or("per-direction", 5)?;
    let seed = args.u64_or("seed", 42)?;
    let cfg = DatasetConfig {
        routes,
        per_direction,
        queries: routes.min(16),
        ..DatasetConfig::default()
    };
    Ok(Dataset::generate(&network(seed), &cfg, seed)?)
}

fn build(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let path = args.string_required("out")?;
    let ds = dataset_from_args(args)?;
    let mut index = GeodabIndex::new(GeodabConfig::default());
    for r in ds.records() {
        index.insert(r.id, &r.trajectory);
    }
    let bytes = codec::encode(&index);
    std::fs::write(&path, &bytes)?;
    writeln!(
        out,
        "indexed {} trajectories ({} terms) into {} ({} bytes)",
        index.len(),
        index.term_count(),
        path,
        bytes.len()
    )?;
    Ok(())
}

fn stats(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let path = args.string_required("index")?;
    let bytes = std::fs::read(&path)?;
    let index = codec::decode(&bytes)?;
    let cfg = index.config();
    writeln!(out, "index file        {path}")?;
    writeln!(out, "trajectories      {}", index.len())?;
    writeln!(out, "distinct terms    {}", index.term_count())?;
    writeln!(
        out,
        "config            depth={} k={} t={} (w={}) prefix={} bits",
        cfg.normalization_depth(),
        cfg.k(),
        cfg.t(),
        cfg.window(),
        cfg.prefix_bits()
    )?;
    let total_fps: usize = index.iter_fingerprints().map(|(_, fp)| fp.len()).sum();
    writeln!(
        out,
        "fingerprints      {} total, {:.1} per trajectory",
        total_fps,
        total_fps as f64 / index.len().max(1) as f64
    )?;
    Ok(())
}

fn search(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let path = args.string_required("index")?;
    let bytes = std::fs::read(&path)?;
    let index = codec::decode(&bytes)?;
    let ds = dataset_from_args(args)?;
    let qi = args.usize_or("query", 0)?;
    let limit = args.usize_or("limit", 10)?;
    let query = ds.queries().get(qi).ok_or_else(|| {
        format!(
            "query index {qi} out of range (have {})",
            ds.queries().len()
        )
    })?;
    let relevant = ds.relevant_ids(query);
    let hits = index.search(&query.trajectory, &SearchOptions::default().limit(limit));
    writeln!(
        out,
        "query {qi} (route {}, {} points): {} hit(s)",
        query.route,
        query.trajectory.len(),
        hits.len()
    )?;
    for (rank, h) in hits.iter().enumerate() {
        writeln!(
            out,
            "{:>4}  {:>8}  d={:.3}  {}",
            rank + 1,
            h.id.to_string(),
            h.distance,
            if relevant.contains(&h.id) {
                "relevant"
            } else {
                "-"
            }
        )?;
    }
    Ok(())
}

fn tune(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let ds = dataset_from_args(args)?;
    let steps = args.usize_or("steps", 5)?;
    let corpus: Vec<_> = ds
        .records()
        .iter()
        .map(|r| (r.id, r.trajectory.clone()))
        .collect();
    let queries: Vec<_> = ds
        .queries()
        .iter()
        .map(|q| {
            let rel: HashSet<_> = ds.relevant_ids(q);
            (q.trajectory.clone(), rel)
        })
        .collect();
    let sample = TuningSample::new(corpus, queries);
    let result = hill_climb(&sample, GeodabConfig::default(), steps);
    writeln!(out, "evaluated {} configurations", result.evaluations)?;
    for (cfg, score) in &result.trace {
        writeln!(
            out,
            "  depth={} k={} t={}  score={score:.3}",
            cfg.normalization_depth(),
            cfg.k(),
            cfg.t()
        )?;
    }
    writeln!(
        out,
        "best: depth={} k={} t={} (mean R-precision {:.3})",
        result.config.normalization_depth(),
        result.config.k(),
        result.config.t(),
        result.score
    )?;
    Ok(())
}

fn world(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let trajectories = args.u64_or("trajectories", 200_000)?;
    let cities = args.usize_or("cities", 1_000)?;
    let seed = args.u64_or("seed", 15)?;
    let activity = WorldActivity::generate(
        &WorldConfig {
            cities,
            trajectories,
            ..WorldConfig::default()
        },
        seed,
    );
    writeln!(out, "trajectories      {}", activity.total())?;
    writeln!(out, "non-empty cells   {}", activity.counts().len())?;
    writeln!(out, "occupancy         {:.4}", activity.occupancy())?;
    writeln!(out, "peak cell         {}", activity.peak())?;
    Ok(())
}

fn export(args: &Args, out: &mut dyn std::io::Write) -> Result<(), Box<dyn Error>> {
    let path = args.string_required("out")?;
    let ds = dataset_from_args(args)?;
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
    geodabs_gen::csv::write_records(ds.records(), &mut file)?;
    use std::io::Write as _;
    file.flush()?;
    writeln!(
        out,
        "exported {} trajectories ({} points) to {}",
        ds.records().len(),
        ds.total_points(),
        path
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(argv: &[&str]) -> Result<String, String> {
        let args = Args::parse(argv.iter().copied()).map_err(|e| e.to_string())?;
        let mut buf = Vec::new();
        run(&args, &mut buf).map_err(|e| e.to_string())?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("geodabs-cli-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        let out = run_to_string(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("geodabs build"));
    }

    #[test]
    fn build_stats_search_roundtrip() {
        let path = tmp("roundtrip.gdab");
        let out = run_to_string(&[
            "build",
            "--out",
            &path,
            "--routes",
            "4",
            "--per-direction",
            "2",
            "--seed",
            "9",
        ])
        .unwrap();
        assert!(out.contains("indexed 16 trajectories"), "{out}");

        let out = run_to_string(&["stats", "--index", &path]).unwrap();
        assert!(out.contains("trajectories      16"), "{out}");
        assert!(out.contains("depth=36 k=6 t=12"), "{out}");

        let out = run_to_string(&[
            "search",
            "--index",
            &path,
            "--routes",
            "4",
            "--per-direction",
            "2",
            "--seed",
            "9",
            "--limit",
            "3",
        ])
        .unwrap();
        assert!(out.contains("query 0"), "{out}");
        assert!(out.contains("relevant"), "{out}");
    }

    #[test]
    fn search_rejects_out_of_range_query() {
        let path = tmp("range.gdab");
        run_to_string(&[
            "build",
            "--out",
            &path,
            "--routes",
            "2",
            "--per-direction",
            "2",
            "--seed",
            "3",
        ])
        .unwrap();
        let err = run_to_string(&[
            "search",
            "--index",
            &path,
            "--routes",
            "2",
            "--per-direction",
            "2",
            "--seed",
            "3",
            "--query",
            "99",
        ])
        .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn stats_rejects_garbage_files() {
        let path = tmp("garbage.gdab");
        std::fs::write(&path, b"not an index").unwrap();
        let err = run_to_string(&["stats", "--index", &path]).unwrap_err();
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn world_prints_summary() {
        let out = run_to_string(&[
            "world",
            "--trajectories",
            "5000",
            "--cities",
            "50",
            "--seed",
            "2",
        ])
        .unwrap();
        assert!(out.contains("trajectories      5000"), "{out}");
        assert!(out.contains("peak cell"), "{out}");
    }

    #[test]
    fn tune_reports_a_best_config() {
        let out = run_to_string(&[
            "tune",
            "--routes",
            "3",
            "--per-direction",
            "2",
            "--seed",
            "4",
            "--steps",
            "1",
        ])
        .unwrap();
        assert!(out.contains("best: depth="), "{out}");
        assert!(out.contains("evaluated"), "{out}");
    }

    #[test]
    fn missing_required_flags_error_cleanly() {
        assert!(run_to_string(&["build"]).unwrap_err().contains("--out"));
        assert!(run_to_string(&["stats"]).unwrap_err().contains("--index"));
        assert!(run_to_string(&["export"]).unwrap_err().contains("--out"));
    }

    #[test]
    fn export_writes_parseable_csv() {
        let path = tmp("export.csv");
        let out = run_to_string(&[
            "export",
            "--out",
            &path,
            "--routes",
            "2",
            "--per-direction",
            "1",
            "--seed",
            "5",
        ])
        .unwrap();
        assert!(out.contains("exported 4 trajectories"), "{out}");
        let file = std::fs::File::open(&path).unwrap();
        let records = geodabs_gen::csv::read_records(std::io::BufReader::new(file)).unwrap();
        assert_eq!(records.len(), 4);
        assert!(records.iter().all(|r| r.trajectory.len() > 10));
    }
}
