//! Implementation of the `geodabs` command-line tool.
//!
//! The binary wraps the workspace crates into these subcommands:
//!
//! ```text
//! geodabs build  --out FILE [--routes N] [--per-direction M] [--seed S]
//! geodabs stats  --index FILE
//! geodabs search --index FILE [--routes N] [--per-direction M] [--seed S]
//!                [--query Q] [--limit K]
//! geodabs tune   [--routes N] [--seed S] [--steps T]
//! geodabs world  [--trajectories N] [--cities C] [--seed S]
//! geodabs bench  [--scenario NAME] [--threads T] [--out DIR] [--seed S]
//!                [--baseline FILE] [--max-regress PCT]
//! ```
//!
//! Datasets are synthetic and fully determined by `(routes,
//! per-direction, seed)`, so `search` regenerates the query workload
//! instead of shipping trajectories around. `bench` runs the named
//! workload scenario from [`geodabs_bench::workload`] and writes the
//! machine-readable `BENCH_<scenario>.json` report CI's perf gate
//! consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{Args, ParseError};
