//! Implementation of the `geodabs` command-line tool.
//!
//! The binary wraps the workspace crates into these subcommands:
//!
//! ```text
//! geodabs build  --out FILE [--routes N] [--per-direction M] [--seed S]
//! geodabs stats  --index FILE
//! geodabs search --index FILE [--routes N] [--per-direction M] [--seed S]
//!                [--query Q] [--limit K]
//! geodabs tune   [--routes N] [--seed S] [--steps T]
//! geodabs world  [--trajectories N] [--cities C] [--seed S]
//! geodabs bench  [--scenario NAME] [--threads T] [--out DIR] [--seed S]
//!                [--baseline FILE] [--max-regress PCT]
//! geodabs serve    --addr HOST:PORT (--snapshot FILE | --scenario NAME | --wal-dir DIR) …
//! geodabs loadtest --addr HOST:PORT [--connections N] [--duration SECS] …
//! geodabs wal      inspect|replay --dir DIR …
//! ```
//!
//! Datasets are synthetic and fully determined by `(routes,
//! per-direction, seed)`, so `search` regenerates the query workload
//! instead of shipping trajectories around. `bench` runs the named
//! workload scenario from [`geodabs_bench::workload`] and writes the
//! machine-readable `BENCH_<scenario>.json` report CI's perf gate
//! consumes. `serve` hosts any backend over the `geodabs-serve` wire
//! protocol (warm-started from a `GDAB` v2 snapshot or ingested from a
//! scenario); `loadtest` drives a connection ladder against it and
//! writes `BENCH_serve.json`, failing on any response mismatch. With
//! `--wal-dir` the server is durable: mutations are logged before they
//! are acknowledged, boot replays the log suffix beyond the latest
//! compacted snapshot's watermark, and `wal inspect`/`wal replay`
//! examine or reconstruct that state offline.

// `deny` rather than `forbid`: the signals module scopes one audited
// `#[allow(unsafe_code)]` around the POSIX `signal(2)` declaration.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod signals;

pub use args::{Args, ParseError};
