//! Implementation of the `geodabs` command-line tool.
//!
//! The binary wraps the workspace crates into five subcommands:
//!
//! ```text
//! geodabs build  --out FILE [--routes N] [--per-direction M] [--seed S]
//! geodabs stats  --index FILE
//! geodabs search --index FILE [--routes N] [--per-direction M] [--seed S]
//!                [--query Q] [--limit K]
//! geodabs tune   [--routes N] [--seed S] [--steps T]
//! geodabs world  [--trajectories N] [--cities C] [--seed S]
//! ```
//!
//! Datasets are synthetic and fully determined by `(routes,
//! per-direction, seed)`, so `search` regenerates the query workload
//! instead of shipping trajectories around.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{Args, ParseError};
