//! A small dependency-free `--flag value` argument parser.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors parsing the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// No subcommand was given.
    MissingCommand,
    /// An unknown subcommand.
    UnknownCommand(String),
    /// A flag without the `--` prefix or without a value.
    MalformedFlag(String),
    /// A flag the subcommand does not understand (likely a typo that
    /// would otherwise silently change behavior).
    UnknownFlag(String),
    /// An action token the subcommand does not understand (e.g.
    /// `snapshot savee`), or a missing one where required.
    UnknownAction {
        /// The subcommand.
        command: String,
        /// The offending action, if any was given.
        action: Option<String>,
    },
    /// The same flag was given twice.
    DuplicateFlag(String),
    /// A flag value failed to parse.
    InvalidValue {
        /// The flag name (without `--`).
        flag: String,
        /// The offending value.
        value: String,
    },
    /// A required flag is missing.
    MissingFlag(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingCommand => write!(f, "missing subcommand (try `geodabs help`)"),
            ParseError::UnknownCommand(c) => write!(f, "unknown subcommand {c:?}"),
            ParseError::MalformedFlag(s) => {
                write!(f, "malformed flag {s:?} (expected --name value)")
            }
            ParseError::UnknownFlag(s) => write!(f, "unknown flag --{s}"),
            ParseError::UnknownAction { command, action } => match action {
                Some(action) => write!(f, "unknown action {action:?} for `{command}`"),
                None => write!(f, "`{command}` needs an action (e.g. `{command} save`)"),
            },
            ParseError::DuplicateFlag(s) => write!(f, "flag --{s} given more than once"),
            ParseError::InvalidValue { flag, value } => {
                write!(f, "invalid value {value:?} for --{flag}")
            }
            ParseError::MissingFlag(s) => write!(f, "missing required flag --{s}"),
        }
    }
}

impl Error for ParseError {}

/// The parsed command line: a subcommand, an optional action token (for
/// commands like `snapshot save`) plus `--flag value` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    command: String,
    action: Option<String>,
    flags: HashMap<String, String>,
}

/// Subcommands the binary understands.
pub const COMMANDS: &[&str] = &[
    "build", "stats", "search", "tune", "world", "export", "bench", "snapshot", "serve",
    "frontend", "loadtest", "metrics", "wal", "help",
];

/// Commands taking a bare action token before the flags, with the actions
/// they accept.
const ACTIONS: &[(&str, &[&str])] = &[
    ("snapshot", &["save", "load", "inspect"]),
    ("wal", &["inspect", "replay"]),
];

/// Flags that take no value: their presence is the whole message (read
/// with [`Args::has`]). Everything else requires `--name value`.
const BOOLEAN_FLAGS: &[&str] = &["json", "server-metrics", "text"];

impl Args {
    /// Parses a raw argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on unknown commands or actions, malformed
    /// or duplicated flags.
    pub fn parse<I, S>(argv: I) -> Result<Args, ParseError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = argv.into_iter().map(Into::into).peekable();
        let command = iter.next().ok_or(ParseError::MissingCommand)?;
        if !COMMANDS.contains(&command.as_str()) {
            return Err(ParseError::UnknownCommand(command));
        }
        let mut action = None;
        if let Some((_, allowed)) = ACTIONS.iter().find(|&&(c, _)| c == command) {
            // The action is the first token when it does not look like a
            // flag; it is validated here so a typo'd action fails loudly.
            let candidate = iter.peek().filter(|a| !a.starts_with("--")).cloned();
            match candidate {
                Some(a) if allowed.contains(&a.as_str()) => {
                    iter.next();
                    action = Some(a);
                }
                other => {
                    return Err(ParseError::UnknownAction {
                        command,
                        action: other,
                    });
                }
            }
        }
        let mut flags = HashMap::new();
        while let Some(flag) = iter.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| ParseError::MalformedFlag(flag.clone()))?
                .to_string();
            if name.is_empty() {
                return Err(ParseError::MalformedFlag(flag));
            }
            let value = if BOOLEAN_FLAGS.contains(&name.as_str()) {
                "true".to_string()
            } else {
                iter.next()
                    .ok_or_else(|| ParseError::MalformedFlag(flag.clone()))?
            };
            if flags.insert(name.clone(), value).is_some() {
                return Err(ParseError::DuplicateFlag(name));
            }
        }
        Ok(Args {
            command,
            action,
            flags,
        })
    }

    /// The subcommand.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// The action token, for subcommands that take one (e.g.
    /// `snapshot save`).
    pub fn action(&self) -> Option<&str> {
        self.action.as_deref()
    }

    /// Whether any flag was given at all.
    pub fn has_flags(&self) -> bool {
        !self.flags.is_empty()
    }

    /// Whether a specific flag was given.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    /// Rejects flags outside `allowed` — a typo'd flag must fail loudly
    /// instead of silently falling back to a default (fatal when the
    /// default skips a CI gate).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::UnknownFlag`] naming the first offender.
    pub fn reject_unknown_flags(&self, allowed: &[&str]) -> Result<(), ParseError> {
        let mut names: Vec<&String> = self.flags.keys().collect();
        names.sort_unstable();
        for name in names {
            if !allowed.contains(&name.as_str()) {
                return Err(ParseError::UnknownFlag(name.clone()));
            }
        }
        Ok(())
    }

    /// A string flag, or `default` when absent.
    pub fn string_or(&self, flag: &str, default: &str) -> String {
        self.flags
            .get(flag)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::MissingFlag`] when absent.
    pub fn string_required(&self, flag: &str) -> Result<String, ParseError> {
        self.flags
            .get(flag)
            .cloned()
            .ok_or_else(|| ParseError::MissingFlag(flag.to_string()))
    }

    /// An integer flag, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::InvalidValue`] when present but unparsable.
    pub fn u64_or(&self, flag: &str, default: u64) -> Result<u64, ParseError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ParseError::InvalidValue {
                flag: flag.to_string(),
                value: v.clone(),
            }),
        }
    }

    /// A `usize` flag, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::InvalidValue`] when present but unparsable.
    pub fn usize_or(&self, flag: &str, default: usize) -> Result<usize, ParseError> {
        self.u64_or(flag, default as u64).map(|v| v as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(["build", "--routes", "10", "--out", "x.gdab"]).unwrap();
        assert_eq!(a.command(), "build");
        assert_eq!(a.usize_or("routes", 0).unwrap(), 10);
        assert_eq!(a.string_required("out").unwrap(), "x.gdab");
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = Args::parse(["world"]).unwrap();
        assert_eq!(a.u64_or("seed", 7).unwrap(), 7);
        assert_eq!(a.string_or("mode", "fast"), "fast");
    }

    #[test]
    fn rejects_unknown_command_and_missing_command() {
        assert_eq!(
            Args::parse(["frobnicate"]),
            Err(ParseError::UnknownCommand("frobnicate".into()))
        );
        assert_eq!(
            Args::parse(Vec::<String>::new()),
            Err(ParseError::MissingCommand)
        );
    }

    #[test]
    fn rejects_malformed_flags() {
        assert!(matches!(
            Args::parse(["build", "routes", "10"]),
            Err(ParseError::MalformedFlag(_))
        ));
        assert!(matches!(
            Args::parse(["build", "--routes"]),
            Err(ParseError::MalformedFlag(_))
        ));
        assert!(matches!(
            Args::parse(["build", "--", "x"]),
            Err(ParseError::MalformedFlag(_))
        ));
    }

    #[test]
    fn rejects_duplicates_and_bad_values() {
        assert_eq!(
            Args::parse(["build", "--seed", "1", "--seed", "2"]),
            Err(ParseError::DuplicateFlag("seed".into()))
        );
        let a = Args::parse(["build", "--seed", "banana"]).unwrap();
        assert_eq!(
            a.u64_or("seed", 0),
            Err(ParseError::InvalidValue {
                flag: "seed".into(),
                value: "banana".into()
            })
        );
    }

    #[test]
    fn unknown_flags_are_rejected_when_asked() {
        let a = Args::parse(["bench", "--scenario", "smoke", "--basline", "f"]).unwrap();
        assert_eq!(
            a.reject_unknown_flags(&["scenario", "baseline"]),
            Err(ParseError::UnknownFlag("basline".into()))
        );
        assert_eq!(a.reject_unknown_flags(&["scenario", "basline"]), Ok(()));
        assert!(!Args::parse(["bench"]).unwrap().has_flags());
        assert!(a.has_flags());
        assert!(ParseError::UnknownFlag("x".into())
            .to_string()
            .contains("--x"));
    }

    #[test]
    fn snapshot_actions_parse_and_validate() {
        let a = Args::parse(["snapshot", "save", "--out", "x.gdab"]).unwrap();
        assert_eq!(a.command(), "snapshot");
        assert_eq!(a.action(), Some("save"));
        assert_eq!(a.string_required("out").unwrap(), "x.gdab");
        // A typo'd or missing action fails loudly instead of being read
        // as a flag soup.
        assert!(matches!(
            Args::parse(["snapshot", "savee"]),
            Err(ParseError::UnknownAction {
                action: Some(_),
                ..
            })
        ));
        assert!(matches!(
            Args::parse(["snapshot"]),
            Err(ParseError::UnknownAction { action: None, .. })
        ));
        assert!(matches!(
            Args::parse(["snapshot", "--out", "x"]),
            Err(ParseError::UnknownAction { .. })
        ));
        // The wal command follows the same action discipline.
        let a = Args::parse(["wal", "inspect", "--dir", "logs"]).unwrap();
        assert_eq!(a.command(), "wal");
        assert_eq!(a.action(), Some("inspect"));
        assert_eq!(
            Args::parse(["wal", "replay"]).unwrap().action(),
            Some("replay")
        );
        assert!(matches!(
            Args::parse(["wal", "compact"]),
            Err(ParseError::UnknownAction {
                action: Some(_),
                ..
            })
        ));
        // Action-less commands stay action-less.
        assert_eq!(Args::parse(["world"]).unwrap().action(), None);
        assert!(ParseError::UnknownAction {
            command: "snapshot".into(),
            action: None
        }
        .to_string()
        .contains("needs an action"));
        assert!(ParseError::UnknownAction {
            command: "snapshot".into(),
            action: Some("savee".into())
        }
        .to_string()
        .contains("savee"));
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let a = Args::parse(["snapshot", "inspect", "--json", "--in", "x.gdab"]).unwrap();
        assert!(a.has("json"));
        assert_eq!(a.string_required("in").unwrap(), "x.gdab");
        // Trailing position works too (nothing left to swallow).
        let a = Args::parse(["snapshot", "inspect", "--in", "x.gdab", "--json"]).unwrap();
        assert!(a.has("json"));
        assert_eq!(
            Args::parse(["snapshot", "inspect", "--json", "--json"]),
            Err(ParseError::DuplicateFlag("json".into()))
        );
    }

    #[test]
    fn missing_required_flag_is_reported() {
        let a = Args::parse(["stats"]).unwrap();
        assert_eq!(
            a.string_required("index"),
            Err(ParseError::MissingFlag("index".into()))
        );
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(ParseError::MissingCommand
            .to_string()
            .contains("subcommand"));
        assert!(ParseError::DuplicateFlag("x".into())
            .to_string()
            .contains("--x"));
    }
}
