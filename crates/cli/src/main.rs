use geodabs_cli::{commands, Args};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", commands::HELP);
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    if let Err(e) = commands::run(&args, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
