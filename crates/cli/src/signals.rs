//! Minimal SIGINT/SIGTERM trapping for `geodabs serve`, so a durable
//! server flushes its write-ahead log and exits through the clean
//! shutdown path instead of being torn mid-append.
//!
//! The handler does the only async-signal-safe thing possible: it
//! stores into a process-global atomic. A watcher thread owned by the
//! caller polls that flag and triggers [`geodabs_serve::ServerHandle::
//! shutdown`], which the serving loop already honors.
//!
//! `libc` stays out of the dependency tree: the two signal numbers and
//! the `signal(2)` prototype are POSIX-stable, declared here directly.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler on the first SIGINT/SIGTERM; reset by
/// [`install`].
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Serializes tests that touch the process-global flag against the
/// in-process `serve` tests that watch it: a stray `true` would shut a
/// test server down mid-run.
#[cfg(test)]
pub(crate) static TEST_FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(unix)]
mod os {
    /// POSIX `SIGINT` (Ctrl-C at a terminal).
    const SIGINT: i32 = 2;
    /// POSIX `SIGTERM` (the default `kill`, and what orchestrators send
    /// before escalating to SIGKILL).
    const SIGTERM: i32 = 15;

    // `signal(2)` returns the previous handler; it is modelled as a
    // `usize` because the previous disposition may be `SIG_DFL` (0) or
    // `SIG_IGN` (1), neither of which is a valid Rust fn pointer.
    #[allow(unsafe_code)]
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub(super) extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work is allowed here: one atomic store.
        super::SHUTDOWN_REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    #[allow(unsafe_code)]
    pub(super) fn install_handlers() {
        // SAFETY: `signal` is the POSIX prototype; `on_signal` is an
        // `extern "C" fn(i32)` that only performs an atomic store, which
        // is async-signal-safe. The returned previous handler is
        // deliberately discarded — the process keeps these handlers for
        // its remaining lifetime.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod os {
    pub(super) fn install_handlers() {
        // No POSIX signals; Ctrl-C terminates the process directly and
        // the WAL's torn-tail recovery covers the abrupt exit.
    }
}

/// Installs SIGINT/SIGTERM handlers (idempotent) and returns the flag
/// they set. The caller polls it — typically from a small watcher
/// thread — and routes `true` into the server's clean-shutdown path.
pub fn install() -> &'static AtomicBool {
    SHUTDOWN_REQUESTED.store(false, Ordering::SeqCst);
    os::install_handlers();
    &SHUTDOWN_REQUESTED
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_resets_the_flag_and_is_idempotent() {
        let _guard = TEST_FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let flag = install();
        assert!(!flag.load(Ordering::SeqCst));
        flag.store(true, Ordering::SeqCst);
        // Reinstalling (e.g. a second in-process `serve` run in tests)
        // clears a stale request instead of shutting the new server
        // down immediately.
        let flag = install();
        assert!(!flag.load(Ordering::SeqCst));
    }

    #[cfg(unix)]
    #[test]
    fn the_handler_sets_the_flag() {
        // The handler is invoked directly: sending a *real* SIGTERM to
        // the test binary would race the in-process serve tests sharing
        // this process. End-to-end delivery (kill -TERM against the
        // actual binary) is pinned by the crash-recovery integration
        // test, which owns its child process.
        let _guard = TEST_FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let flag = install();
        os::on_signal(15);
        assert!(flag.load(Ordering::SeqCst));
        // Leave the flag clear for any serve test that starts next.
        let flag = install();
        assert!(!flag.load(Ordering::SeqCst));
    }
}
