//! Crash-recovery e2e against the real `geodabs` binary: a durable
//! server is SIGKILLed mid-stream and must come back with **zero acked
//! writes lost**; replay must be idempotent across repeated crashes;
//! and SIGTERM must flush even a `--sync-policy never` log through the
//! clean-shutdown path.

#![cfg(unix)]

use geodabs_bench::workload;
use geodabs_index::SearchOptions;
use geodabs_serve::Client;
use geodabs_traj::{TrajId, Trajectory};
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "geodabs-crash-recovery-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create wal dir");
    dir
}

/// Spawns `geodabs serve` on an OS-assigned port and waits for the
/// `listening on` line. Returns the child and the resolved address.
fn spawn_serve(dir: &Path, sync_policy: &str) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_geodabs"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--scenario",
            "micro",
            "--threads",
            "2",
            "--wal-dir",
            dir.to_str().expect("utf8 dir"),
            "--sync-policy",
            sync_policy,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn geodabs serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        assert!(Instant::now() < deadline, "server never came up");
        let line = lines
            .next()
            .expect("server exited before listening")
            .expect("read server stdout");
        if let Some(rest) = line.strip_prefix("listening on") {
            break rest
                .split_whitespace()
                .next()
                .expect("addr token")
                .parse::<SocketAddr>()
                .expect("valid addr");
        }
    };
    // Keep draining in the background so the child never blocks on a
    // full pipe.
    std::thread::spawn(move || for _ in lines.by_ref() {});
    (child, addr)
}

fn connect(addr: SocketAddr) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(addr) {
            Ok(client) => return client,
            Err(e) => {
                assert!(Instant::now() < deadline, "could not connect: {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// The micro scenario's corpus, reused as a source of trajectories to
/// insert under fresh ids the server has never seen.
fn micro_corpus() -> Vec<Trajectory> {
    let scenario = workload::find("micro").expect("catalog has micro");
    workload::generate(&scenario)
        .records()
        .iter()
        .map(|r| r.trajectory.clone())
        .collect()
}

#[test]
fn sigkill_loses_no_acked_writes_and_replay_is_idempotent() {
    let dir = wal_dir("sigkill");
    let corpus = micro_corpus();
    let base = corpus.len() as u64; // 40: the scenario ingest

    // Serve durably and stream acknowledged mutations: 12 fresh
    // inserts, one replace, one remove — every ack fsynced.
    let (mut child, addr) = spawn_serve(&dir, "always");
    let mut client = connect(addr);
    for i in 0..12u32 {
        client
            .insert(TrajId::new(1000 + i), &corpus[i as usize])
            .expect("insert acked");
    }
    client
        .insert(TrajId::new(1001), &corpus[5])
        .expect("replace acked");
    assert!(client.remove(TrajId::new(1000)).expect("remove acked"));
    let stats = client.stats_durable().expect("stats");
    assert_eq!(stats.trajectories, base + 12 - 1);
    assert_eq!(
        stats.durability.expect("durable server").last_durable_seq,
        14
    );

    // SIGKILL: no flush, no destructor, nothing. The acks above were
    // durable *before* they were sent, so nothing may be lost.
    child.kill().expect("SIGKILL the server");
    child.wait().expect("reap");

    for round in 0..2 {
        let (mut child, addr) = spawn_serve(&dir, "always");
        let mut client = connect(addr);
        let stats = client.stats_durable().expect("stats after recovery");
        assert_eq!(
            stats.trajectories,
            base + 12 - 1,
            "round {round}: acked writes lost or duplicated"
        );
        // The replaced id must rank for its *new* trajectory…
        let hits = client
            .query(&corpus[5], &SearchOptions::default().limit(10))
            .expect("query");
        assert!(
            hits.iter().any(|h| h.id == TrajId::new(1001)),
            "round {round}: replaced id lost its new shape: {hits:?}"
        );
        // …and the removed id must stay removed.
        assert!(
            !client.remove(TrajId::new(1000)).expect("re-remove"),
            "round {round}: removed id came back"
        );
        // That re-remove was a no-op server-side mutation of a missing
        // id; put the count beyond doubt before the next crash.
        assert_eq!(
            client.stats_durable().expect("stats").trajectories,
            base + 12 - 1
        );
        // Crash again: the second round replays the same log over a
        // fresh scenario ingest — idempotency, not accumulation.
        child.kill().expect("SIGKILL the server");
        child.wait().expect("reap");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigterm_flushes_a_never_synced_log_through_clean_shutdown() {
    let dir = wal_dir("sigterm");
    let corpus = micro_corpus();
    let base = corpus.len() as u64;

    // `--sync-policy never`: acks do NOT imply durability; only the
    // clean-shutdown flush makes these writes survive.
    let (mut child, addr) = spawn_serve(&dir, "never");
    let mut client = connect(addr);
    for i in 0..5u32 {
        client
            .insert(TrajId::new(2000 + i), &corpus[i as usize])
            .expect("insert acked");
    }
    drop(client);

    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "server ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(status.success(), "SIGTERM exit was not clean: {status}");

    // Restart: the flushed log must replay all five inserts.
    let (mut child, addr) = spawn_serve(&dir, "never");
    let mut client = connect(addr);
    let stats = client.stats_durable().expect("stats after restart");
    assert_eq!(stats.trajectories, base + 5, "flushed writes lost");
    assert_eq!(
        stats.durability.expect("durable server").last_durable_seq,
        5
    );
    child.kill().expect("cleanup kill");
    child.wait().expect("reap");
    let _ = std::fs::remove_dir_all(&dir);
}
