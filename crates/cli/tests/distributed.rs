//! Distributed-serving e2e against the real `geodabs` binary: a
//! frontend process over shard-server processes must answer every
//! scenario query **bit-identical** to an in-process monolithic index;
//! SIGKILLing a shard mid-load must surface the *typed* unavailable
//! error (never a silently partial ranking) and the frontend must
//! recover without a restart; and on a WAL-enabled shard no
//! acknowledged write may be lost across the kill.

#![cfg(unix)]

use geodabs_bench::workload;
use geodabs_cluster::ShardRouter;
use geodabs_core::{Fingerprinter, GeodabConfig};
use geodabs_index::{GeodabIndex, SearchOptions, TrajectoryIndex};
use geodabs_serve::{Client, WireError};
use geodabs_traj::Trajectory;
use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Spawns the binary with `args` and waits for its `listening on` line.
fn spawn_listening(args: &[&str]) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_geodabs"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn geodabs");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        assert!(Instant::now() < deadline, "process never came up");
        let line = lines
            .next()
            .expect("process exited before listening")
            .expect("read stdout");
        if let Some(rest) = line.strip_prefix("listening on") {
            break rest
                .split_whitespace()
                .next()
                .expect("addr token")
                .parse::<SocketAddr>()
                .expect("valid addr");
        }
    };
    // Keep draining so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines.by_ref() {});
    (child, addr)
}

fn spawn_shard(addr: &str, shard_id: usize, extra: &[&str]) -> (Child, SocketAddr) {
    let shard_id = shard_id.to_string();
    let mut args = vec![
        "serve",
        "--addr",
        addr,
        "--shard-id",
        &shard_id,
        "--nodes",
        "2",
        "--threads",
        "4",
    ];
    args.extend_from_slice(extra);
    spawn_listening(&args)
}

fn spawn_frontend(shard_addrs: &[SocketAddr]) -> (Child, SocketAddr) {
    let shards = shard_addrs
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    spawn_listening(&[
        "frontend",
        "--addr",
        "127.0.0.1:0",
        "--shards",
        &shards,
        "--threads",
        "4",
    ])
}

fn connect(addr: SocketAddr) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(addr) {
            Ok(client) => return client,
            Err(e) => {
                assert!(Instant::now() < deadline, "could not connect: {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

fn micro_queries() -> Vec<Trajectory> {
    let scenario = workload::find("micro").expect("catalog has micro");
    workload::generate(&scenario)
        .queries()
        .iter()
        .map(|q| q.trajectory.clone())
        .collect()
}

fn micro_monolith() -> GeodabIndex {
    let scenario = workload::find("micro").expect("catalog has micro");
    let dataset = workload::generate(&scenario);
    let mut index = GeodabIndex::new(GeodabConfig::default());
    index.insert_batch(
        dataset
            .records()
            .iter()
            .map(|r| (r.id, &r.trajectory))
            .collect::<Vec<_>>(),
    );
    index
}

#[test]
fn two_process_cluster_is_bit_identical_and_survives_a_sigkilled_shard() {
    let monolith = micro_monolith();
    let options = SearchOptions::default().limit(10);
    let queries = micro_queries();

    // Two shard processes, each ingesting its slice of the micro
    // corpus at boot, plus the frontend coordinator.
    let (mut shard0, addr0) = spawn_shard("127.0.0.1:0", 0, &["--scenario", "micro"]);
    let (mut shard1, addr1) = spawn_shard("127.0.0.1:0", 1, &["--scenario", "micro"]);
    let (mut frontend, frontend_addr) = spawn_frontend(&[addr0, addr1]);
    let mut client = connect(frontend_addr);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.backend, "frontend");
    assert_eq!(stats.terms, 2, "terms slot = shard-server count");

    for query in &queries {
        assert_eq!(
            client.query(query, &options).expect("query"),
            monolith.search(query, &options),
            "scattered ranking diverged from the monolith"
        );
    }

    // SIGKILL shard 0: the next query *touching node 0* must fail with
    // the typed unavailable error — never a partial ranking. A
    // geographically localized corpus may route every scenario query to
    // one node, so probe at the fingerprint level with a term the
    // frontend's own router sends to node 0. (Queries that skip node 0
    // legitimately keep succeeding.)
    let config = GeodabConfig::default();
    let router = ShardRouter::new(config.prefix_bits(), 10_000, 2).expect("router");
    let probe_term = (0..u32::MAX)
        .find(|&g| router.node_of_geodab(g) == 0)
        .expect("some geodab routes to node 0");
    shard0.kill().expect("SIGKILL shard 0");
    shard0.wait().expect("reap shard 0");
    match client.query_fingerprints(&[probe_term], &options) {
        Err(WireError::Unavailable { node: 0, message }) => {
            assert!(!message.is_empty());
        }
        other => panic!("expected a typed Unavailable for node 0, got {other:?}"),
    }
    // Queries that never touch the dead node still answer exactly.
    for query in &queries {
        let fp = Fingerprinter::new(config).normalize_and_fingerprint(query);
        if router
            .nodes_for_terms(fp.ordered().iter().copied())
            .contains(&0)
        {
            continue;
        }
        assert_eq!(
            client.query(query, &options).expect("survivor-only query"),
            monolith.search(query, &options)
        );
    }

    // Restart shard 0 on its old port: the frontend redials on the
    // next request and recovers with no restart of its own.
    let (mut reborn, _) = spawn_shard(&addr0.to_string(), 0, &["--scenario", "micro"]);
    let deadline = Instant::now() + Duration::from_secs(10);
    let expected = monolith.search_fingerprints(
        &geodabs_core::Fingerprints::from_ordered(vec![probe_term]),
        &options,
    );
    loop {
        match client.query_fingerprints(&[probe_term], &options) {
            Ok(hits) => {
                assert_eq!(hits, expected, "post-recovery ranking diverged");
                break;
            }
            Err(_) => {
                assert!(Instant::now() < deadline, "frontend never recovered");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }

    for child in [&mut reborn, &mut shard1, &mut frontend] {
        child.kill().expect("cleanup kill");
        child.wait().expect("reap");
    }
}

#[test]
fn acked_writes_on_wal_shards_survive_a_sigkill() {
    let scenario = workload::find("micro").expect("catalog has micro");
    let dataset = workload::generate(&scenario);
    let options = SearchOptions::default().limit(10);
    let queries = micro_queries();

    let dir = std::env::temp_dir().join(format!("geodabs-distributed-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let wal0 = dir.join("node0");
    let wal1 = dir.join("node1");
    std::fs::create_dir_all(&wal0).expect("mkdir");
    std::fs::create_dir_all(&wal1).expect("mkdir");

    // Both shards boot empty but durable (every acked mutation is
    // fsynced before the ack); all writes go through the frontend.
    let (mut shard0, addr0) = spawn_shard(
        "127.0.0.1:0",
        0,
        &[
            "--wal-dir",
            wal0.to_str().unwrap(),
            "--sync-policy",
            "always",
        ],
    );
    let (mut shard1, addr1) = spawn_shard(
        "127.0.0.1:0",
        1,
        &[
            "--wal-dir",
            wal1.to_str().unwrap(),
            "--sync-policy",
            "always",
        ],
    );
    let (mut frontend, frontend_addr) = spawn_frontend(&[addr0, addr1]);
    let mut client = connect(frontend_addr);

    let mut monolith = GeodabIndex::new(GeodabConfig::default());
    for record in dataset.records() {
        let len = client
            .insert(record.id, &record.trajectory)
            .expect("insert acked");
        monolith.insert(record.id, &record.trajectory);
        assert_eq!(len, monolith.len() as u64);
    }
    for query in &queries {
        assert_eq!(
            client.query(query, &options).expect("query"),
            monolith.search(query, &options)
        );
    }

    // SIGKILL shard 0 — no flush, no destructor — and bring it back on
    // the same port from its log alone. Every acknowledged write was
    // durable before its ack, so the rankings must be unchanged.
    shard0.kill().expect("SIGKILL shard 0");
    shard0.wait().expect("reap shard 0");
    let (mut reborn, _) = spawn_shard(
        &addr0.to_string(),
        0,
        &[
            "--wal-dir",
            wal0.to_str().unwrap(),
            "--sync-policy",
            "always",
        ],
    );

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.query(&queries[0], &options) {
            Ok(hits) => {
                assert_eq!(
                    hits,
                    monolith.search(&queries[0], &options),
                    "acked write lost in replay"
                );
                break;
            }
            Err(_) => {
                assert!(Instant::now() < deadline, "frontend never recovered");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    for query in &queries {
        assert_eq!(
            client.query(query, &options).expect("query"),
            monolith.search(query, &options),
            "post-recovery ranking diverged from the monolith"
        );
    }

    for child in [&mut reborn, &mut shard1, &mut frontend] {
        child.kill().expect("cleanup kill");
        child.wait().expect("reap");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
