//! Append-only, CRC-32-framed write-ahead log: the durability tier
//! between the in-memory index family and full `GDAB` snapshots.
//!
//! A log is a directory of segment files named `wal-<start-seq>.log`.
//! Each segment holds length-prefixed records, all integers
//! little-endian — the same framing discipline as the wire protocol and
//! the snapshot container:
//!
//! ```text
//! len      u32   body byte count (≤ MAX_RECORD_LEN)
//! crc32    u32   IEEE CRC-32 of the body
//! body:
//!   seq    u64   strictly contiguous, starts at the segment's name
//!   op     u8    1 = insert, 2 = remove, 3 = insert-fingerprints
//!   insert       id u32, points u32, points × (lat f64, lon f64)
//!   remove       id u32
//!   insert-fp    id u32, terms u32, terms × (term u32)
//! ```
//!
//! The length prefix is validated against [`MAX_RECORD_LEN`] **before**
//! any allocation, and the checksum before the body is decoded.
//!
//! # Torn tails vs corruption
//!
//! A crash can leave a prefix of the final record on disk. On open,
//! such a **torn tail on the last segment** is silently discarded (the
//! record was never acknowledged — per the ack protocol a record is
//! only acknowledged after it is durable). Anything else — a checksum
//! mismatch, an oversized length, a sequence gap, or a torn record
//! followed by more segments — is a hard [`WalError`]: the log cannot
//! be trusted and the operator must intervene.
//!
//! # Sync policies and group commit
//!
//! [`SyncPolicy`] decides when appends become durable: `always` fsyncs
//! every append (acknowledged ⇒ crash-safe), `interval:<ms>` amortizes
//! the fsync over a time window, `never` leaves syncing to the OS and
//! clean shutdown. [`Wal::append_batch`] writes many records with one
//! write and at most one fsync — the group-commit path.
//!
//! # Examples
//!
//! ```
//! use geodabs_geo::Point;
//! use geodabs_traj::{TrajId, Trajectory};
//! use geodabs_wal::{SyncPolicy, Wal, WalOp};
//!
//! # fn main() -> Result<(), geodabs_wal::WalError> {
//! let dir = std::env::temp_dir().join(format!("geodabs-wal-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut wal = Wal::open(&dir, SyncPolicy::Always)?;
//!
//! let start = Point::new(48.8566, 2.3522).expect("valid coordinate");
//! let path: Trajectory = (0..10).map(|i| start.destination(90.0, i as f64 * 80.0)).collect();
//! let seq = wal.append(&WalOp::Insert { id: TrajId::new(7), trajectory: path })?;
//! assert_eq!(wal.last_durable_seq(), seq, "`always` acks only durable records");
//!
//! // A reopened log replays exactly what was acknowledged.
//! drop(wal);
//! let records = Wal::records(&dir)?;
//! assert_eq!(records.len(), 1);
//! assert_eq!(records[0].seq, seq);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use geodabs_geo::Point;
use geodabs_index::store::{crc32, Cursor, ReadError};
use geodabs_traj::{TrajId, Trajectory};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// The largest record body a segment may carry (64 MiB — matching the
/// wire frame cap, so anything the server accepted can be logged).
/// Records claiming more are rejected before any allocation.
pub const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// Bytes of record framing preceding every body: `len u32, crc32 u32`.
const RECORD_HEADER: usize = 8;

/// Segment file names: `wal-<start-seq, 20 digits>.log`.
const SEGMENT_PREFIX: &str = "wal-";
const SEGMENT_SUFFIX: &str = ".log";

const OP_INSERT: u8 = 1;
const OP_REMOVE: u8 = 2;
const OP_INSERT_FINGERPRINTS: u8 = 3;

/// Errors opening, appending to, or scanning a log. Torn tails on the
/// final segment are **not** errors — they are repaired on open and
/// skipped on read; every variant here means the log needs attention.
#[derive(Debug)]
pub enum WalError {
    /// A filesystem operation failed.
    Io(std::io::Error),
    /// A record or segment is structurally invalid (sequence gap, torn
    /// record in a non-final segment, undecodable body, bad op tag…).
    Corrupt {
        /// The offending segment's file name.
        segment: String,
        /// Byte offset of the offending record within the segment.
        offset: u64,
        /// What was wrong.
        what: &'static str,
    },
    /// A record header claimed more than [`MAX_RECORD_LEN`] body bytes.
    RecordTooLarge {
        /// The offending segment's file name.
        segment: String,
        /// Byte offset of the offending record within the segment.
        offset: u64,
        /// The claimed body length.
        claimed: u32,
    },
    /// A record body does not match its CRC-32.
    ChecksumMismatch {
        /// The offending segment's file name.
        segment: String,
        /// Byte offset of the offending record within the segment.
        offset: u64,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt {
                segment,
                offset,
                what,
            } => write!(
                f,
                "corrupt wal record in {segment} at byte {offset}: {what}"
            ),
            WalError::RecordTooLarge {
                segment,
                offset,
                claimed,
            } => write!(
                f,
                "wal record in {segment} at byte {offset} claims {claimed} bytes \
                 (max {MAX_RECORD_LEN})"
            ),
            WalError::ChecksumMismatch { segment, offset } => {
                write!(
                    f,
                    "wal record in {segment} at byte {offset} fails its checksum"
                )
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> WalError {
        WalError::Io(e)
    }
}

/// When appended records are fsynced — i.e. when an append may be
/// acknowledged as durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Fsync on every append (and batch): an acknowledged write is
    /// always crash-safe. The slowest and safest policy.
    Always,
    /// Fsync when at least this long has passed since the last sync:
    /// a crash loses at most the final window of acknowledged writes.
    Interval(Duration),
    /// Never fsync on append; durability only at rotation and clean
    /// shutdown. A crash may lose everything the OS had not flushed.
    Never,
}

/// The default window for `interval` when no duration is given.
pub const DEFAULT_SYNC_INTERVAL: Duration = Duration::from_millis(25);

impl SyncPolicy {
    /// Parses `always`, `never`, `interval`, or `interval:<ms>`.
    ///
    /// # Errors
    ///
    /// A human-readable message for anything else.
    pub fn parse(s: &str) -> Result<SyncPolicy, String> {
        match s {
            "always" => Ok(SyncPolicy::Always),
            "never" => Ok(SyncPolicy::Never),
            "interval" => Ok(SyncPolicy::Interval(DEFAULT_SYNC_INTERVAL)),
            other => match other.strip_prefix("interval:") {
                Some(ms) => match ms.parse::<u64>() {
                    Ok(ms) if ms > 0 => Ok(SyncPolicy::Interval(Duration::from_millis(ms))),
                    _ => Err(format!(
                        "invalid sync interval {ms:?}: expected a positive millisecond count"
                    )),
                },
                None => Err(format!(
                    "unknown sync policy {other:?}: expected always, interval[:<ms>] or never"
                )),
            },
        }
    }
}

impl std::str::FromStr for SyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<SyncPolicy, String> {
        SyncPolicy::parse(s)
    }
}

impl fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncPolicy::Always => write!(f, "always"),
            SyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            SyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// A logged mutation — the write vocabulary of the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Index a trajectory (replace-on-reinsert, so replay is
    /// idempotent: re-applying an already-applied insert is a no-op).
    Insert {
        /// The trajectory id.
        id: TrajId,
        /// The raw trajectory.
        trajectory: Trajectory,
    },
    /// Remove a trajectory (removing an absent id is a no-op).
    Remove {
        /// The trajectory id.
        id: TrajId,
    },
    /// Index a pre-fingerprinted trajectory by its full ordered term
    /// sequence — the write vocabulary of a **shard server**, which
    /// receives fingerprints from the frontend rather than raw
    /// trajectories. Replace-on-reinsert, like [`WalOp::Insert`].
    InsertFingerprints {
        /// The trajectory id.
        id: TrajId,
        /// The full ordered fingerprint term sequence.
        terms: Vec<u32>,
    },
}

/// One decoded log record: a sequence number and its operation.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The record's log sequence number (contiguous, starting at 1).
    pub seq: u64,
    /// The logged mutation.
    pub op: WalOp,
}

/// Metadata for one segment file, as reported by [`Wal::segments`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// The segment's file name within the log directory.
    pub file_name: String,
    /// Sequence number of the segment's first record.
    pub start_seq: u64,
    /// Complete records in the segment.
    pub records: u64,
    /// Bytes of complete records (a repaired torn tail not included).
    pub bytes: u64,
}

impl SegmentInfo {
    /// Sequence number of the segment's last record, if it has any.
    pub fn last_seq(&self) -> Option<u64> {
        self.records.checked_sub(1).map(|n| self.start_seq + n)
    }
}

fn segment_file_name(start_seq: u64) -> String {
    format!("{SEGMENT_PREFIX}{start_seq:020}{SEGMENT_SUFFIX}")
}

/// Parses a segment file name back to its start sequence.
fn segment_start_seq(file_name: &str) -> Option<u64> {
    let digits = file_name
        .strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn encode_op(out: &mut Vec<u8>, op: &WalOp) {
    match op {
        WalOp::Insert { id, trajectory } => {
            out.push(OP_INSERT);
            out.extend_from_slice(&id.raw().to_le_bytes());
            out.extend_from_slice(&(trajectory.len() as u32).to_le_bytes());
            for p in trajectory.iter() {
                out.extend_from_slice(&p.lat().to_bits().to_le_bytes());
                out.extend_from_slice(&p.lon().to_bits().to_le_bytes());
            }
        }
        WalOp::Remove { id } => {
            out.push(OP_REMOVE);
            out.extend_from_slice(&id.raw().to_le_bytes());
        }
        WalOp::InsertFingerprints { id, terms } => {
            out.push(OP_INSERT_FINGERPRINTS);
            out.extend_from_slice(&id.raw().to_le_bytes());
            out.extend_from_slice(&(terms.len() as u32).to_le_bytes());
            for term in terms {
                out.extend_from_slice(&term.to_le_bytes());
            }
        }
    }
}

/// Decodes a record body (everything after the 8-byte framing header).
fn decode_body(body: &[u8]) -> Result<WalRecord, &'static str> {
    fn read(body: &[u8]) -> Result<WalRecord, ReadError> {
        let mut cursor = Cursor::new(body);
        let seq = cursor.u64()?;
        let op = match cursor.u8()? {
            OP_INSERT => {
                let id = TrajId::new(cursor.u32()?);
                let count = cursor.u32()? as usize;
                // Never reserve more points than the remaining bytes
                // could hold — the count is untrusted input.
                let cap = count.min(cursor.remaining() / 16);
                let mut points = Vec::with_capacity(cap);
                for _ in 0..count {
                    let lat = cursor.f64()?;
                    let lon = cursor.f64()?;
                    points.push(
                        Point::new(lat, lon)
                            .map_err(|_| ReadError::Corrupt("invalid coordinate"))?,
                    );
                }
                WalOp::Insert {
                    id,
                    trajectory: Trajectory::new(points),
                }
            }
            OP_REMOVE => WalOp::Remove {
                id: TrajId::new(cursor.u32()?),
            },
            OP_INSERT_FINGERPRINTS => {
                let id = TrajId::new(cursor.u32()?);
                let count = cursor.u32()? as usize;
                let cap = count.min(cursor.remaining() / 4);
                let mut terms = Vec::with_capacity(cap);
                for _ in 0..count {
                    terms.push(cursor.u32()?);
                }
                WalOp::InsertFingerprints { id, terms }
            }
            _ => return Err(ReadError::Corrupt("unknown wal op tag")),
        };
        cursor.expect_end()?;
        Ok(WalRecord { seq, op })
    }
    read(body).map_err(|e| match e {
        ReadError::Truncated => "record body ends early",
        ReadError::Corrupt(what) => what,
    })
}

/// Frames one record: header then body.
fn encode_record(seq: u64, op: &WalOp) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&seq.to_le_bytes());
    encode_op(&mut body, op);
    let mut out = Vec::with_capacity(RECORD_HEADER + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// What a segment scan found: complete records (collected on demand),
/// the byte length of the complete prefix, and whether a torn tail
/// follows it.
struct ScanOutcome {
    records: u64,
    valid_len: u64,
    torn: bool,
}

/// Walks a segment's bytes record by record, validating framing,
/// checksums, bodies and sequence contiguity. A clean EOF mid-record is
/// reported as `torn` (the caller decides whether that is tolerable);
/// everything else is a hard error.
fn scan_segment(
    segment: &str,
    bytes: &[u8],
    expect_first: u64,
    mut collect: Option<&mut Vec<WalRecord>>,
) -> Result<ScanOutcome, WalError> {
    let mut offset = 0usize;
    let mut records = 0u64;
    let mut next_seq = expect_first;
    loop {
        let remaining = &bytes[offset..];
        if remaining.is_empty() {
            return Ok(ScanOutcome {
                records,
                valid_len: offset as u64,
                torn: false,
            });
        }
        if remaining.len() < RECORD_HEADER {
            return Ok(ScanOutcome {
                records,
                valid_len: offset as u64,
                torn: true,
            });
        }
        let len = u32::from_le_bytes(remaining[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(remaining[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            return Err(WalError::RecordTooLarge {
                segment: segment.to_string(),
                offset: offset as u64,
                claimed: len,
            });
        }
        let body_end = RECORD_HEADER + len as usize;
        if remaining.len() < body_end {
            return Ok(ScanOutcome {
                records,
                valid_len: offset as u64,
                torn: true,
            });
        }
        let body = &remaining[RECORD_HEADER..body_end];
        if crc32(body) != crc {
            return Err(WalError::ChecksumMismatch {
                segment: segment.to_string(),
                offset: offset as u64,
            });
        }
        let record = decode_body(body).map_err(|what| WalError::Corrupt {
            segment: segment.to_string(),
            offset: offset as u64,
            what,
        })?;
        if record.seq != next_seq {
            return Err(WalError::Corrupt {
                segment: segment.to_string(),
                offset: offset as u64,
                what: "sequence number out of order",
            });
        }
        if let Some(out) = collect.as_deref_mut() {
            out.push(record);
        }
        next_seq += 1;
        records += 1;
        offset += body_end;
    }
}

/// Lists `wal-*.log` files in `dir`, sorted by start sequence. Foreign
/// files (snapshots live in the same directory) are ignored.
fn list_segments(dir: &Path) -> Result<Vec<(u64, String)>, WalError> {
    let mut found = Vec::new();
    match fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let entry = entry?;
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(start) = segment_start_seq(name) {
                    found.push((start, name.to_string()));
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e.into()),
    }
    found.sort_unstable();
    Ok(found)
}

/// Scans every segment of a log directory in order, enforcing
/// cross-segment sequence contiguity. Torn tails are tolerated only on
/// the final segment; `valid_len` there excludes the torn bytes.
fn scan_dir(
    dir: &Path,
    mut collect: Option<&mut Vec<WalRecord>>,
) -> Result<Vec<SegmentInfo>, WalError> {
    let listed = list_segments(dir)?;
    let mut infos = Vec::with_capacity(listed.len());
    let mut next_seq: Option<u64> = None;
    let last = listed.len().saturating_sub(1);
    for (i, (start, name)) in listed.iter().enumerate() {
        if let Some(expected) = next_seq {
            if *start != expected {
                return Err(WalError::Corrupt {
                    segment: name.clone(),
                    offset: 0,
                    what: "segment start does not continue the previous segment",
                });
            }
        }
        let bytes = fs::read(dir.join(name))?;
        let outcome = scan_segment(name, &bytes, *start, collect.as_deref_mut())?;
        if outcome.torn && i != last {
            return Err(WalError::Corrupt {
                segment: name.clone(),
                offset: outcome.valid_len,
                what: "torn record in a non-final segment",
            });
        }
        next_seq = Some(start + outcome.records);
        infos.push(SegmentInfo {
            file_name: name.clone(),
            start_seq: *start,
            records: outcome.records,
            bytes: outcome.valid_len,
        });
    }
    Ok(infos)
}

/// Best-effort directory fsync, so renames and segment creation survive
/// a crash of the machine, not just the process.
fn sync_dir(dir: &Path) -> Result<(), WalError> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// An open write-ahead log: the single writer for a log directory.
///
/// See the [crate docs](crate) for the record format and recovery
/// semantics, and [`Wal::records`] for the read-only replay path.
pub struct Wal {
    dir: PathBuf,
    policy: SyncPolicy,
    file: File,
    /// Closed segments, oldest first; the open segment is `current`.
    closed: Vec<SegmentInfo>,
    current: SegmentInfo,
    next_seq: u64,
    last_synced: u64,
    unsynced: bool,
    last_sync: Instant,
}

impl Wal {
    /// Opens (creating if necessary) the log in `dir` for appending,
    /// scanning and validating every existing segment. A torn final
    /// record — the signature of a crash mid-append — is truncated
    /// away; it was never acknowledged.
    ///
    /// # Errors
    ///
    /// I/O failures, or any corruption other than a torn tail on the
    /// final segment.
    pub fn open(dir: &Path, policy: SyncPolicy) -> Result<Wal, WalError> {
        fs::create_dir_all(dir)?;
        let mut infos = scan_dir(dir, None)?;
        let current = match infos.pop() {
            Some(info) => info,
            None => {
                let info = SegmentInfo {
                    file_name: segment_file_name(1),
                    start_seq: 1,
                    records: 0,
                    bytes: 0,
                };
                File::create(dir.join(&info.file_name))?.sync_all()?;
                sync_dir(dir)?;
                info
            }
        };
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(dir.join(&current.file_name))?;
        // Discard the torn tail, if any, then append after the last
        // complete record.
        file.set_len(current.bytes)?;
        file.seek(SeekFrom::Start(current.bytes))?;
        let next_seq = current.start_seq + current.records;
        Ok(Wal {
            dir: dir.to_path_buf(),
            policy,
            file,
            closed: infos,
            current,
            // Everything that survived the scan is on disk and will
            // survive a process crash; treat it as durable.
            last_synced: next_seq - 1,
            next_seq,
            unsynced: false,
            last_sync: Instant::now(),
        })
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured sync policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Sequence number of the last appended record (0 if none).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Sequence number of the last record known durable (0 if none).
    pub fn last_durable_seq(&self) -> u64 {
        self.last_synced
    }

    /// Total bytes of complete records across all segments.
    pub fn size_bytes(&self) -> u64 {
        self.closed.iter().map(|s| s.bytes).sum::<u64>() + self.current.bytes
    }

    /// Appends one operation; returns its sequence number. The record
    /// is durable on return under [`SyncPolicy::Always`] — under the
    /// other policies, durability lags per the policy's contract.
    ///
    /// # Errors
    ///
    /// I/O failures; the log's in-memory state is not advanced then, so
    /// the operation can be retried or the write refused upstream.
    pub fn append(&mut self, op: &WalOp) -> Result<u64, WalError> {
        let seq = self.next_seq;
        let record = encode_record(seq, op);
        self.file.write_all(&record)?;
        self.next_seq += 1;
        self.current.records += 1;
        self.current.bytes += record.len() as u64;
        self.unsynced = true;
        self.policy_sync()?;
        Ok(seq)
    }

    /// Appends a batch of operations with one write and (per policy) at
    /// most one fsync — the group-commit path. Returns the sequence
    /// numbers of the first and last record, or `None` for an empty
    /// batch.
    ///
    /// # Errors
    ///
    /// I/O failures; on error none of the batch is acknowledged.
    pub fn append_batch(&mut self, ops: &[WalOp]) -> Result<Option<(u64, u64)>, WalError> {
        if ops.is_empty() {
            return Ok(None);
        }
        let first = self.next_seq;
        let mut buf = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            buf.extend_from_slice(&encode_record(first + i as u64, op));
        }
        self.file.write_all(&buf)?;
        let last = first + ops.len() as u64 - 1;
        self.next_seq = last + 1;
        self.current.records += ops.len() as u64;
        self.current.bytes += buf.len() as u64;
        self.unsynced = true;
        self.policy_sync()?;
        Ok(Some((first, last)))
    }

    fn policy_sync(&mut self) -> Result<(), WalError> {
        match self.policy {
            SyncPolicy::Always => self.sync(),
            SyncPolicy::Interval(window) => {
                if self.last_sync.elapsed() >= window {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            SyncPolicy::Never => Ok(()),
        }
    }

    /// Forces all appended records to disk, regardless of policy.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if self.unsynced {
            self.file.sync_data()?;
            self.unsynced = false;
        }
        self.last_synced = self.next_seq - 1;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Closes the current segment (fsyncing it) and opens a fresh one,
    /// returning the **watermark**: the sequence number of the last
    /// record in the closed segments. A snapshot taken from the same
    /// consistent view covers exactly the records `≤ watermark`, so
    /// after the snapshot lands, [`Wal::prune`] with this watermark
    /// drops the folded-in segments. A no-op (still returning the
    /// watermark) when the current segment is empty.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn rotate(&mut self) -> Result<u64, WalError> {
        let watermark = self.next_seq - 1;
        if self.current.records == 0 {
            return Ok(watermark);
        }
        self.sync()?;
        let fresh = SegmentInfo {
            file_name: segment_file_name(self.next_seq),
            start_seq: self.next_seq,
            records: 0,
            bytes: 0,
        };
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(self.dir.join(&fresh.file_name))?;
        file.sync_all()?;
        sync_dir(&self.dir)?;
        let closed = std::mem::replace(&mut self.current, fresh);
        self.closed.push(closed);
        self.file = file;
        Ok(watermark)
    }

    /// Deletes closed segments whose records are all covered by a
    /// durable snapshot at `watermark`; returns how many were removed.
    /// The open segment is never deleted.
    ///
    /// # Errors
    ///
    /// I/O failures (segments already removed stay removed).
    pub fn prune(&mut self, watermark: u64) -> Result<usize, WalError> {
        let mut removed = 0usize;
        while let Some(first) = self.closed.first() {
            match first.last_seq() {
                Some(last) if last <= watermark => {
                    fs::remove_file(self.dir.join(&first.file_name))?;
                    self.closed.remove(0);
                    removed += 1;
                }
                // An empty closed segment can only be the artifact of a
                // crash between rotation steps; covered iff the next
                // segment starts at or before the watermark boundary.
                None if first.start_seq <= watermark + 1 => {
                    fs::remove_file(self.dir.join(&first.file_name))?;
                    self.closed.remove(0);
                    removed += 1;
                }
                _ => break,
            }
        }
        if removed > 0 {
            sync_dir(&self.dir)?;
        }
        Ok(removed)
    }

    /// Reads every complete record of the log in `dir`, in sequence
    /// order — the replay path. Read-only: a torn tail on the final
    /// segment is skipped but **not** repaired (that happens on
    /// [`Wal::open`]). An absent directory reads as an empty log.
    ///
    /// # Errors
    ///
    /// I/O failures, or any corruption other than a final torn tail.
    pub fn records(dir: &Path) -> Result<Vec<WalRecord>, WalError> {
        let mut records = Vec::new();
        scan_dir(dir, Some(&mut records))?;
        Ok(records)
    }

    /// Per-segment metadata for the log in `dir`, in sequence order —
    /// the inspection path. Read-only, like [`Wal::records`].
    ///
    /// # Errors
    ///
    /// I/O failures, or any corruption other than a final torn tail.
    pub fn segments(dir: &Path) -> Result<Vec<SegmentInfo>, WalError> {
        scan_dir(dir, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    /// A unique scratch directory, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(name: &str) -> Scratch {
            let dir = std::env::temp_dir().join(format!(
                "geodabs-wal-test-{}-{}-{name}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&dir);
            Scratch(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn sample_trajectory(seed: u32) -> Trajectory {
        let start = Point::new(51.5074, -0.1278).unwrap();
        (0..4 + seed % 3)
            .map(|i| start.destination(90.0 + seed as f64, i as f64 * 75.0))
            .collect()
    }

    fn insert(id: u32) -> WalOp {
        WalOp::Insert {
            id: TrajId::new(id),
            trajectory: sample_trajectory(id),
        }
    }

    #[test]
    fn sync_policy_parses_and_renders() {
        assert_eq!(SyncPolicy::parse("always"), Ok(SyncPolicy::Always));
        assert_eq!(SyncPolicy::parse("never"), Ok(SyncPolicy::Never));
        assert_eq!(
            SyncPolicy::parse("interval"),
            Ok(SyncPolicy::Interval(DEFAULT_SYNC_INTERVAL))
        );
        assert_eq!(
            SyncPolicy::parse("interval:5"),
            Ok(SyncPolicy::Interval(Duration::from_millis(5)))
        );
        assert!(SyncPolicy::parse("interval:0").is_err());
        assert!(SyncPolicy::parse("interval:x").is_err());
        assert!(SyncPolicy::parse("sometimes").is_err());
        for (policy, rendered) in [
            (SyncPolicy::Always, "always"),
            (SyncPolicy::Never, "never"),
            (SyncPolicy::Interval(Duration::from_millis(7)), "interval:7"),
        ] {
            assert_eq!(policy.to_string(), rendered);
            assert_eq!(rendered.parse::<SyncPolicy>().unwrap(), policy);
        }
    }

    #[test]
    fn append_reopen_replay_roundtrip() {
        let scratch = Scratch::new("roundtrip");
        let ops = [insert(1), insert(2), WalOp::Remove { id: TrajId::new(1) }];
        {
            let mut wal = Wal::open(scratch.path(), SyncPolicy::Always).unwrap();
            assert_eq!(wal.last_seq(), 0);
            for (i, op) in ops.iter().enumerate() {
                let seq = wal.append(op).unwrap();
                assert_eq!(seq, i as u64 + 1);
                assert_eq!(wal.last_durable_seq(), seq);
            }
            assert!(wal.size_bytes() > 0);
        }
        let records = Wal::records(scratch.path()).unwrap();
        assert_eq!(records.len(), 3);
        for (i, record) in records.iter().enumerate() {
            assert_eq!(record.seq, i as u64 + 1);
            assert_eq!(record.op, ops[i]);
        }
        // Reopening continues the sequence.
        let mut wal = Wal::open(scratch.path(), SyncPolicy::Always).unwrap();
        assert_eq!(wal.last_seq(), 3);
        assert_eq!(wal.append(&insert(9)).unwrap(), 4);
    }

    #[test]
    fn fingerprint_ops_roundtrip_alongside_trajectory_ops() {
        let scratch = Scratch::new("fingerprints");
        let ops = [
            insert(1),
            WalOp::InsertFingerprints {
                id: TrajId::new(2),
                terms: vec![7, 7, 42, 1_000_000],
            },
            // An empty term sequence is legal (too-short trajectory).
            WalOp::InsertFingerprints {
                id: TrajId::new(3),
                terms: Vec::new(),
            },
            WalOp::Remove { id: TrajId::new(2) },
        ];
        {
            let mut wal = Wal::open(scratch.path(), SyncPolicy::Always).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
        }
        let records = Wal::records(scratch.path()).unwrap();
        assert_eq!(records.len(), ops.len());
        for (record, op) in records.iter().zip(&ops) {
            assert_eq!(&record.op, op);
        }
    }

    #[test]
    fn batch_appends_are_contiguous_and_durable() {
        let scratch = Scratch::new("batch");
        let mut wal = Wal::open(scratch.path(), SyncPolicy::Always).unwrap();
        assert_eq!(wal.append_batch(&[]).unwrap(), None);
        let ops = vec![insert(1), insert(2), insert(3)];
        assert_eq!(wal.append_batch(&ops).unwrap(), Some((1, 3)));
        assert_eq!(wal.last_durable_seq(), 3);
        assert_eq!(Wal::records(scratch.path()).unwrap().len(), 3);
    }

    #[test]
    fn never_policy_defers_durability_to_explicit_sync() {
        let scratch = Scratch::new("never");
        let mut wal = Wal::open(scratch.path(), SyncPolicy::Never).unwrap();
        wal.append(&insert(1)).unwrap();
        assert_eq!(wal.last_durable_seq(), 0, "no fsync has happened");
        wal.sync().unwrap();
        assert_eq!(wal.last_durable_seq(), 1);
    }

    #[test]
    fn zero_interval_syncs_every_append() {
        let scratch = Scratch::new("interval");
        let mut wal = Wal::open(scratch.path(), SyncPolicy::Interval(Duration::ZERO)).unwrap();
        wal.append(&insert(1)).unwrap();
        assert_eq!(wal.last_durable_seq(), 1);
    }

    /// Every possible crash point inside the final record — from one
    /// missing byte to a bare header — must recover to the acknowledged
    /// prefix, both on the read-only path and on open (which repairs).
    #[test]
    fn torn_tail_recovers_at_every_truncation_point() {
        let scratch = Scratch::new("torn");
        let mut wal = Wal::open(scratch.path(), SyncPolicy::Always).unwrap();
        wal.append(&insert(1)).unwrap();
        wal.append(&insert(2)).unwrap();
        let boundary = wal.size_bytes();
        wal.append(&insert(3)).unwrap();
        let full = wal.size_bytes();
        drop(wal);
        let segment = scratch.path().join(segment_file_name(1));
        let pristine = fs::read(&segment).unwrap();
        for cut in boundary..full {
            fs::write(&segment, &pristine[..cut as usize]).unwrap();
            let records = Wal::records(scratch.path()).unwrap();
            assert_eq!(records.len(), 2, "cut at byte {cut}");
            let mut wal = Wal::open(scratch.path(), SyncPolicy::Always).unwrap();
            assert_eq!(wal.last_seq(), 2, "cut at byte {cut}");
            // The repaired log appends cleanly over the discarded tail.
            assert_eq!(wal.append(&insert(7)).unwrap(), 3);
            drop(wal);
            fs::write(&segment, &pristine).unwrap();
        }
    }

    #[test]
    fn torn_record_in_non_final_segment_is_corruption() {
        let scratch = Scratch::new("torn-mid");
        let mut wal = Wal::open(scratch.path(), SyncPolicy::Always).unwrap();
        wal.append(&insert(1)).unwrap();
        wal.rotate().unwrap();
        wal.append(&insert(2)).unwrap();
        drop(wal);
        let first = scratch.path().join(segment_file_name(1));
        let bytes = fs::read(&first).unwrap();
        fs::write(&first, &bytes[..bytes.len() - 1]).unwrap();
        assert!(matches!(
            Wal::records(scratch.path()),
            Err(WalError::Corrupt {
                what: "torn record in a non-final segment",
                ..
            })
        ));
        assert!(Wal::open(scratch.path(), SyncPolicy::Always).is_err());
    }

    #[test]
    fn flipped_bit_is_a_hard_checksum_error() {
        let scratch = Scratch::new("bitflip");
        let mut wal = Wal::open(scratch.path(), SyncPolicy::Always).unwrap();
        wal.append(&insert(1)).unwrap();
        wal.append(&insert(2)).unwrap();
        drop(wal);
        let segment = scratch.path().join(segment_file_name(1));
        let pristine = fs::read(&segment).unwrap();
        // Flip one bit in the first record's body: not a torn tail, so
        // recovery must refuse rather than silently drop data.
        let mut corrupted = pristine.clone();
        corrupted[RECORD_HEADER + 3] ^= 0x40;
        fs::write(&segment, &corrupted).unwrap();
        assert!(matches!(
            Wal::records(scratch.path()),
            Err(WalError::ChecksumMismatch { offset: 0, .. })
        ));
        assert!(Wal::open(scratch.path(), SyncPolicy::Always).is_err());
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let scratch = Scratch::new("oversized");
        fs::create_dir_all(scratch.path()).unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        fs::write(scratch.path().join(segment_file_name(1)), &bytes).unwrap();
        assert!(matches!(
            Wal::records(scratch.path()),
            Err(WalError::RecordTooLarge {
                claimed: u32::MAX,
                ..
            })
        ));
    }

    #[test]
    fn sequence_gaps_are_corruption() {
        let scratch = Scratch::new("seq-gap");
        fs::create_dir_all(scratch.path()).unwrap();
        // A well-formed record whose seq (3) does not match the
        // segment's start (1).
        let record = encode_record(3, &insert(1));
        fs::write(scratch.path().join(segment_file_name(1)), &record).unwrap();
        assert!(matches!(
            Wal::records(scratch.path()),
            Err(WalError::Corrupt {
                what: "sequence number out of order",
                ..
            })
        ));
    }

    #[test]
    fn rotation_and_pruning_drop_folded_segments() {
        let scratch = Scratch::new("rotate");
        let mut wal = Wal::open(scratch.path(), SyncPolicy::Always).unwrap();
        for i in 1..=3 {
            wal.append(&insert(i)).unwrap();
        }
        let watermark = wal.rotate().unwrap();
        assert_eq!(watermark, 3);
        // Rotating an empty current segment is a no-op.
        assert_eq!(wal.rotate().unwrap(), 3);
        wal.append(&insert(4)).unwrap();
        wal.append(&insert(5)).unwrap();
        assert_eq!(wal.prune(watermark).unwrap(), 1);
        assert_eq!(wal.prune(watermark).unwrap(), 0, "pruning is idempotent");
        // The suffix beyond the watermark survives, still contiguous.
        let records = Wal::records(scratch.path()).unwrap();
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![4, 5]
        );
        drop(wal);
        // And a pruned log reopens cleanly, continuing the sequence.
        let wal = Wal::open(scratch.path(), SyncPolicy::Always).unwrap();
        assert_eq!(wal.last_seq(), 5);
    }

    #[test]
    fn segment_metadata_reflects_layout() {
        let scratch = Scratch::new("segments");
        let mut wal = Wal::open(scratch.path(), SyncPolicy::Always).unwrap();
        wal.append(&insert(1)).unwrap();
        wal.append(&insert(2)).unwrap();
        wal.rotate().unwrap();
        wal.append(&insert(3)).unwrap();
        let total = wal.size_bytes();
        drop(wal);
        let segments = Wal::segments(scratch.path()).unwrap();
        assert_eq!(segments.len(), 2);
        assert_eq!(segments[0].start_seq, 1);
        assert_eq!(segments[0].records, 2);
        assert_eq!(segments[0].last_seq(), Some(2));
        assert_eq!(segments[1].start_seq, 3);
        assert_eq!(segments[1].records, 1);
        assert_eq!(segments.iter().map(|s| s.bytes).sum::<u64>(), total);
    }

    #[test]
    fn missing_directory_reads_as_empty() {
        let scratch = Scratch::new("missing");
        assert_eq!(Wal::records(scratch.path()).unwrap(), Vec::new());
        assert_eq!(Wal::segments(scratch.path()).unwrap(), Vec::new());
    }

    #[test]
    fn foreign_files_in_the_directory_are_ignored() {
        let scratch = Scratch::new("foreign");
        let mut wal = Wal::open(scratch.path(), SyncPolicy::Always).unwrap();
        wal.append(&insert(1)).unwrap();
        drop(wal);
        fs::write(scratch.path().join("snapshot.gdab"), b"not a segment").unwrap();
        fs::write(scratch.path().join("wal-12.log"), b"bad name shape").unwrap();
        assert_eq!(Wal::records(scratch.path()).unwrap().len(), 1);
    }

    #[test]
    fn errors_render() {
        for e in [
            WalError::Io(std::io::Error::other("io")),
            WalError::Corrupt {
                segment: "wal-x".into(),
                offset: 4,
                what: "bad",
            },
            WalError::RecordTooLarge {
                segment: "wal-x".into(),
                offset: 0,
                claimed: u32::MAX,
            },
            WalError::ChecksumMismatch {
                segment: "wal-x".into(),
                offset: 8,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
