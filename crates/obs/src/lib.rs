//! Lock-free metrics, request tracing and slow-query capture for the
//! serving stack.
//!
//! Everything here is plain `std`: handles are `Arc`'d atomics updated
//! with relaxed ordering on the hot path, and the only locks are a
//! registration-time mutex in [`Registry`] and the bounded ring buffer
//! in [`SlowLog`] — nothing a request ever blocks on for long.
//!
//! The three metric kinds:
//!
//! - [`Counter`] — a monotone `u64`.
//! - [`Gauge`] — a settable `u64` that also remembers its high-water
//!   mark, so saturation ("how busy did the mux get?") survives the
//!   moment it happened.
//! - [`Histogram`] — log-bucketed with 8 sub-buckets per power of two
//!   (values below 16 are exact), so any recorded value lands in a
//!   bucket whose upper bound overshoots it by at most 1/8th. Snapshots
//!   are plain bucket vectors: mergeable across shards, subtractable
//!   for before/after deltas, with nearest-rank quantiles matching
//!   `geodabs_serve::percentile` semantics.
//!
//! [`Registry`] names the instruments and renders them in the
//! Prometheus text exposition format; [`TraceId`] mints the id a
//! frontend stamps on a request before scattering it to shards; and
//! [`SlowLog`] keeps the last N requests that crossed a latency
//! threshold, each with its trace id and per-stage timings.
//!
//! # Examples
//!
//! ```
//! use geodabs_obs::{Registry, TraceId};
//!
//! let registry = Registry::new();
//! let requests = registry.counter("geodabs_requests_total", "requests served");
//! let latency = registry.histogram("geodabs_request_latency_us", "request latency");
//! requests.inc();
//! latency.record(250);
//!
//! let snap = latency.snapshot();
//! assert_eq!(snap.count(), 1);
//! let p50 = snap.quantile(50.0);
//! assert!((250..=250 + 250 / 8 + 1).contains(&p50));
//!
//! let trace = TraceId::mint();
//! assert_ne!(trace.raw(), 0, "trace ids are never zero");
//! let text = registry.expose();
//! assert!(text.contains("geodabs_requests_total 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per power of two, which
/// bounds a bucket's relative width (and so any quantile's relative
/// overshoot) by 1/8.
const SUB_BITS: u32 = 3;

/// Values below this are their own bucket (exact).
const LINEAR_LIMIT: u64 = 1 << (SUB_BITS + 1);

/// Total buckets needed to cover the full `u64` range:
/// 16 exact + 8 per remaining power of two.
pub const NUM_BUCKETS: usize =
    (LINEAR_LIMIT + (64 - SUB_BITS as u64 - 1) * (1 << SUB_BITS)) as usize;

/// Maps a value to its bucket index.
fn bucket_index(value: u64) -> usize {
    if value < LINEAR_LIMIT {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as u64;
    let sub = (value >> (msb - SUB_BITS as u64)) - (1 << SUB_BITS);
    (LINEAR_LIMIT + (msb - SUB_BITS as u64 - 1) * (1 << SUB_BITS) + sub) as usize
}

/// The largest value a bucket covers — the representative a quantile
/// reports, so quantiles never understate a latency.
fn bucket_upper_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < LINEAR_LIMIT {
        return index;
    }
    let msb = (index - LINEAR_LIMIT) / (1 << SUB_BITS) + SUB_BITS as u64 + 1;
    let sub = (index - LINEAR_LIMIT) % (1 << SUB_BITS);
    let lower = ((1 << SUB_BITS) + sub) << (msb - SUB_BITS as u64);
    lower + ((1u64 << (msb - SUB_BITS as u64)) - 1)
}

/// A monotone counter; cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable gauge that also tracks its high-water mark; cloning
/// shares the underlying cells.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
    peak: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge, advancing the peak if the value exceeds it.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
        self.peak.fetch_max(value, Ordering::Relaxed);
    }

    /// Adds `n`, advancing the peak past the new value if needed.
    pub fn add(&self, n: u64) {
        let now = self.value.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Subtracts `n` (saturating at zero under races: a concurrent
    /// decrement past zero clamps rather than wraps).
    pub fn sub(&self, n: u64) {
        let mut current = self.value.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(n);
            match self.value.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The highest value ever set or reached.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

struct HistogramCells {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log-bucketed histogram; cloning shares the underlying cells.
///
/// Values below 16 are recorded exactly; above that, buckets widen
/// geometrically with 8 sub-buckets per power of two, so a bucket's
/// upper bound overshoots any value it holds by at most 1/8th. Updates
/// are two relaxed atomic adds; reads go through [`Histogram::snapshot`].
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCells>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramCells {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.0.count.load(Ordering::Relaxed))
            .finish()
    }
}

impl Histogram {
    /// A fresh, unregistered histogram with no observations.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts. Concurrent updates
    /// may straddle the copy (the snapshot is not an atomic cut), but
    /// every bucket count is individually monotone, so deltas between
    /// two snapshots never go negative.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a histogram's buckets: mergeable across shards,
/// subtractable for before/after deltas, and queryable for
/// nearest-rank quantiles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Rebuilds a snapshot from sparse `(bucket index, count)` pairs
    /// and a sum — the wire shape. Out-of-range indices are ignored.
    pub fn from_sparse(pairs: &[(u16, u64)], sum: u64) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty();
        for &(index, count) in pairs {
            if let Some(bucket) = snap.buckets.get_mut(index as usize) {
                *bucket += count;
                snap.count += count;
            }
        }
        snap.sum = sum;
        snap
    }

    /// The non-empty buckets as `(bucket index, count)` pairs — the
    /// compact shape the wire protocol carries.
    pub fn to_sparse(&self) -> Vec<(u16, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| (index as u16, count))
            .collect()
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds another snapshot's observations into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The observations recorded since `earlier` — the before/after
    /// delta two snapshots of the same histogram support because bucket
    /// counts are monotone. Saturates at zero per bucket, so a snapshot
    /// pair from *different* histograms degrades rather than panics.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(&earlier.buckets)
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// The nearest-rank `p`-th percentile (0 for an empty snapshot),
    /// using the same rank rule as `geodabs_serve::percentile`: the
    /// `ceil(p/100 · n)`-th smallest observation, clamped into `1..=n`.
    /// Reports the containing bucket's upper bound, so the answer
    /// overshoots the exact sample quantile by at most 1/8th.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_upper_bound(index);
            }
        }
        bucket_upper_bound(NUM_BUCKETS - 1)
    }

    /// Mean of the recorded values (0 for an empty snapshot).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Renders the cumulative non-empty buckets as Prometheus
    /// `_bucket{le="…"}` lines into `out`. `base` is the metric name
    /// without labels; `labels` the pre-rendered label list (may be
    /// empty).
    fn expose_into(&self, out: &mut String, base: &str, labels: &str) {
        use std::fmt::Write;
        let mut cumulative = 0u64;
        for (index, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            cumulative += count;
            let le = bucket_upper_bound(index);
            if labels.is_empty() {
                let _ = writeln!(out, "{base}_bucket{{le=\"{le}\"}} {cumulative}");
            } else {
                let _ = writeln!(out, "{base}_bucket{{{labels},le=\"{le}\"}} {cumulative}");
            }
        }
        let braces = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        if labels.is_empty() {
            let _ = writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {cumulative}");
        } else {
            let _ = writeln!(out, "{base}_bucket{{{labels},le=\"+Inf\"}} {cumulative}");
        }
        let _ = writeln!(out, "{base}_sum{braces} {}", self.sum);
        let _ = writeln!(out, "{base}_count{braces} {}", self.count);
    }
}

/// One registered instrument's current reading, in typed form — what
/// the `Metrics` wire frame carries alongside the text exposition.
#[derive(Clone, Debug)]
pub struct Sample {
    /// The full metric name, labels included.
    pub name: String,
    /// The reading.
    pub value: SampleValue,
}

/// A typed metric reading.
#[derive(Clone, Debug)]
pub enum SampleValue {
    /// A counter's total.
    Counter(u64),
    /// A gauge's value and high-water mark.
    Gauge {
        /// Current value.
        value: u64,
        /// Highest value ever reached.
        peak: u64,
    },
    /// A histogram's buckets.
    Histogram(HistogramSnapshot),
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Registered {
    name: String,
    help: String,
    instrument: Instrument,
}

/// Names and renders a process's instruments.
///
/// Registration takes a mutex; the handles it returns are lock-free.
/// Metric names may embed Prometheus labels (`name{kind="query"}`) —
/// the exposition groups same-base-name siblings under one `# TYPE`
/// header.
pub struct Registry {
    entries: Mutex<Vec<Registered>>,
    enabled: bool,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An enabled registry.
    pub fn new() -> Registry {
        Registry {
            entries: Mutex::new(Vec::new()),
            enabled: true,
        }
    }

    /// A disabled registry: handles still work (they are plain
    /// atomics), but [`Registry::enabled`] reports `false` so callers
    /// can skip the clock reads that dominate instrumentation cost.
    pub fn disabled() -> Registry {
        Registry {
            entries: Mutex::new(Vec::new()),
            enabled: false,
        }
    }

    /// Whether instrumentation should spend clock reads on this
    /// registry.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Registers (or re-joins) a counter under `name`. Registering the
    /// same name twice returns a handle to the same cell.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut entries = self.entries.lock().expect("registry poisoned");
        for entry in entries.iter() {
            if entry.name == name {
                if let Instrument::Counter(c) = &entry.instrument {
                    return c.clone();
                }
            }
        }
        let counter = Counter::new();
        entries.push(Registered {
            name: name.to_string(),
            help: help.to_string(),
            instrument: Instrument::Counter(counter.clone()),
        });
        counter
    }

    /// Registers (or re-joins) a gauge under `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut entries = self.entries.lock().expect("registry poisoned");
        for entry in entries.iter() {
            if entry.name == name {
                if let Instrument::Gauge(g) = &entry.instrument {
                    return g.clone();
                }
            }
        }
        let gauge = Gauge::new();
        entries.push(Registered {
            name: name.to_string(),
            help: help.to_string(),
            instrument: Instrument::Gauge(gauge.clone()),
        });
        gauge
    }

    /// Registers (or re-joins) a histogram under `name`.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        let mut entries = self.entries.lock().expect("registry poisoned");
        for entry in entries.iter() {
            if entry.name == name {
                if let Instrument::Histogram(h) = &entry.instrument {
                    return h.clone();
                }
            }
        }
        let histogram = Histogram::new();
        entries.push(Registered {
            name: name.to_string(),
            help: help.to_string(),
            instrument: Instrument::Histogram(histogram.clone()),
        });
        histogram
    }

    /// Every registered instrument's current reading, in registration
    /// order.
    pub fn samples(&self) -> Vec<Sample> {
        let entries = self.entries.lock().expect("registry poisoned");
        entries
            .iter()
            .map(|entry| Sample {
                name: entry.name.clone(),
                value: match &entry.instrument {
                    Instrument::Counter(c) => SampleValue::Counter(c.get()),
                    Instrument::Gauge(g) => SampleValue::Gauge {
                        value: g.get(),
                        peak: g.peak(),
                    },
                    Instrument::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Renders every instrument in the Prometheus text exposition
    /// format (`# HELP` / `# TYPE` headers, one per base name, then
    /// sample lines; histograms as cumulative `_bucket{le=…}` series).
    pub fn expose(&self) -> String {
        use std::fmt::Write;
        let entries = self.entries.lock().expect("registry poisoned");
        let mut out = String::new();
        let mut typed: Vec<&str> = Vec::new();
        for entry in entries.iter() {
            let (base, labels) = split_labels(&entry.name);
            if !typed.contains(&base) {
                typed.push(base);
                let kind = match &entry.instrument {
                    Instrument::Counter(_) => "counter",
                    Instrument::Gauge(_) => "gauge",
                    Instrument::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# HELP {base} {}", entry.help);
                let _ = writeln!(out, "# TYPE {base} {kind}");
            }
            match &entry.instrument {
                Instrument::Counter(c) => {
                    let _ = writeln!(out, "{} {}", entry.name, c.get());
                }
                Instrument::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", entry.name, g.get());
                    if labels.is_empty() {
                        let _ = writeln!(out, "{base}_peak {}", g.peak());
                    } else {
                        let _ = writeln!(out, "{base}_peak{{{labels}}} {}", g.peak());
                    }
                }
                Instrument::Histogram(h) => {
                    h.snapshot().expose_into(&mut out, base, labels);
                }
            }
        }
        out
    }
}

/// Splits `name{labels}` into its base name and label list.
fn split_labels(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.strip_suffix('}').unwrap_or(rest)),
        None => (name, ""),
    }
}

/// A nonzero 64-bit request trace id, minted once at the serving edge
/// and propagated with the request wherever it fans out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// Mints a fresh id: a process-wide counter seeded from the clock,
    /// finalized through a 64-bit mix so consecutive ids don't share
    /// prefixes. Never zero — zero is the wire's "no trace" marker.
    pub fn mint() -> TraceId {
        static STATE: AtomicU64 = AtomicU64::new(0);
        if STATE.load(Ordering::Relaxed) == 0 {
            let seed = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x9E37_79B9_7F4A_7C15)
                ^ (u64::from(std::process::id()) << 32);
            let _ = STATE.compare_exchange(0, seed | 1, Ordering::Relaxed, Ordering::Relaxed);
        }
        let raw = STATE.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        let mixed = splitmix64(raw);
        TraceId(if mixed == 0 { 1 } else { mixed })
    }

    /// Wraps a raw wire value; `None` for zero (the "no trace" marker).
    pub fn from_raw(raw: u64) -> Option<TraceId> {
        if raw == 0 {
            None
        } else {
            Some(TraceId(raw))
        }
    }

    /// The raw id, as the wire carries it.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One request that crossed the slow-query threshold.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowQuery {
    /// The request's trace id (0 if the request carried none).
    pub trace_id: u64,
    /// The request kind (frame type name).
    pub kind: String,
    /// End-to-end service time, microseconds.
    pub total_us: u64,
    /// Per-stage timings: `(stage name, microseconds)`.
    pub stages: Vec<(String, u64)>,
}

/// A bounded ring buffer of the most recent requests slower than a
/// threshold. Writers take a short mutex only when a request actually
/// crossed the threshold, so the fast path costs one comparison.
pub struct SlowLog {
    capacity: usize,
    threshold_us: u64,
    entries: Mutex<VecDeque<SlowQuery>>,
}

impl SlowLog {
    /// A log keeping at most `capacity` entries, admitting requests
    /// that took at least `threshold_us` microseconds.
    pub fn new(capacity: usize, threshold_us: u64) -> SlowLog {
        SlowLog {
            capacity: capacity.max(1),
            threshold_us,
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// The admission threshold, microseconds.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us
    }

    /// Records `query` if it crossed the threshold, evicting the
    /// oldest entry once full.
    pub fn observe(&self, query: SlowQuery) {
        if query.total_us < self.threshold_us {
            return;
        }
        let mut entries = self.entries.lock().expect("slow log poisoned");
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(query);
    }

    /// The `n` slowest retained entries, slowest first.
    pub fn top(&self, n: usize) -> Vec<SlowQuery> {
        let entries = self.entries.lock().expect("slow log poisoned");
        let mut all: Vec<SlowQuery> = entries.iter().cloned().collect();
        all.sort_by_key(|entry| std::cmp::Reverse(entry.total_us));
        all.truncate(n);
        all
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("slow log poisoned").len()
    }

    /// Whether no entry is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        for v in (0..200u64).chain([1 << 20, u64::MAX / 2, u64::MAX]) {
            let index = bucket_index(v);
            assert!(index < NUM_BUCKETS, "value {v} -> bucket {index}");
            let upper = bucket_upper_bound(index);
            assert!(upper >= v, "upper bound {upper} below value {v}");
            // The bound overshoots by at most 1/8th.
            assert!(upper - v <= v / 8 + 1, "value {v}, upper {upper}");
        }
        // Bucket upper bounds strictly increase, so cumulative walks
        // are well ordered.
        for i in 1..NUM_BUCKETS {
            assert!(
                bucket_upper_bound(i) > bucket_upper_bound(i - 1),
                "index {i}"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..LINEAR_LIMIT {
            assert_eq!(bucket_upper_bound(bucket_index(v)), v);
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let clone = c.clone();
        clone.inc();
        assert_eq!(c.get(), 6, "clones share the cell");

        let g = Gauge::new();
        g.set(7);
        g.sub(3);
        assert_eq!(g.get(), 4);
        assert_eq!(g.peak(), 7, "peak survives the decrement");
        g.add(10);
        assert_eq!(g.peak(), 14);
        g.sub(100);
        assert_eq!(g.get(), 0, "sub saturates at zero");
    }

    #[test]
    fn empty_snapshot_quantile_is_zero() {
        let h = Histogram::new();
        let snap = h.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.quantile(50.0), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn sparse_roundtrip_preserves_the_snapshot() {
        let h = Histogram::new();
        for v in [0, 3, 17, 250, 4096, 1 << 40] {
            h.record(v);
        }
        let snap = h.snapshot();
        let rebuilt = HistogramSnapshot::from_sparse(&snap.to_sparse(), snap.sum());
        assert_eq!(rebuilt, snap);
        // An out-of-range sparse index is dropped, not a panic.
        let odd = HistogramSnapshot::from_sparse(&[(u16::MAX, 3)], 9);
        assert_eq!(odd.count(), 0);
    }

    #[test]
    fn delta_subtracts_an_earlier_snapshot() {
        let h = Histogram::new();
        h.record(10);
        h.record(100);
        let before = h.snapshot();
        h.record(10);
        h.record(1000);
        let delta = h.snapshot().delta(&before);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum(), 1010);
        // Mismatched snapshots saturate instead of wrapping.
        let zero = HistogramSnapshot::empty().delta(&h.snapshot());
        assert_eq!(zero.count(), 0);
    }

    #[test]
    fn registry_exposes_prometheus_text() {
        let registry = Registry::new();
        let c = registry.counter("geodabs_requests_total{kind=\"query\"}", "requests");
        let g = registry.gauge("geodabs_connections", "open connections");
        let h = registry.histogram("geodabs_latency_us", "latency");
        c.add(3);
        g.set(2);
        h.record(40);
        let text = registry.expose();
        assert!(text.contains("# TYPE geodabs_requests_total counter"));
        assert!(text.contains("geodabs_requests_total{kind=\"query\"} 3"));
        assert!(text.contains("# TYPE geodabs_connections gauge"));
        assert!(text.contains("geodabs_connections 2"));
        assert!(text.contains("geodabs_connections_peak 2"));
        assert!(text.contains("# TYPE geodabs_latency_us histogram"));
        assert!(text.contains("geodabs_latency_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("geodabs_latency_us_count 1"));
        // Re-registering a name joins the same cell, and the TYPE
        // header appears once per base name.
        registry
            .counter("geodabs_requests_total{kind=\"query\"}", "requests")
            .inc();
        assert_eq!(c.get(), 4);
        let text = registry.expose();
        assert_eq!(
            text.matches("# TYPE geodabs_requests_total counter")
                .count(),
            1
        );
    }

    #[test]
    fn disabled_registry_reports_so() {
        assert!(Registry::new().enabled());
        assert!(!Registry::disabled().enabled());
        // Handles from a disabled registry still function.
        let registry = Registry::disabled();
        let c = registry.counter("x_total", "x");
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn trace_ids_are_distinct_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = TraceId::mint();
            assert_ne!(id.raw(), 0);
            assert!(seen.insert(id.raw()), "duplicate trace id {id}");
        }
        assert_eq!(TraceId::from_raw(0), None);
        assert_eq!(TraceId::from_raw(7).map(TraceId::raw), Some(7));
    }

    #[test]
    fn slow_log_keeps_the_slowest_within_capacity() {
        let log = SlowLog::new(3, 100);
        assert!(log.is_empty());
        for (i, total) in [(1u64, 50u64), (2, 150), (3, 300), (4, 200), (5, 900)] {
            log.observe(SlowQuery {
                trace_id: i,
                kind: "query".into(),
                total_us: total,
                stages: vec![("engine".into(), total / 2)],
            });
        }
        // 50 was under the threshold; the ring kept the last 3 slow
        // ones and `top` sorts them slowest first.
        assert_eq!(log.len(), 3);
        let top = log.top(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].total_us, 900);
        assert_eq!(top[0].trace_id, 5);
        assert_eq!(top[1].total_us, 300);
    }

    #[test]
    fn concurrent_updates_never_lose_counts() {
        let h = Histogram::new();
        let c = Counter::new();
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = h.clone();
                let c = c.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record((t * PER_THREAD + i) as u64 % 5000);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), (THREADS * PER_THREAD) as u64);
        assert_eq!(h.snapshot().count(), (THREADS * PER_THREAD) as u64);
    }

    /// The exact nearest-rank percentile of a sorted sample — the
    /// reference `HistogramSnapshot::quantile` is compared against.
    fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    proptest! {
        /// Histogram quantiles must bracket the exact sample quantile
        /// from above, within the bucketing's 1/8th relative error.
        #[test]
        fn quantiles_track_the_exact_reference(
            values in proptest::collection::vec(0u64..2_000_000, 1..300),
            p in 0.0f64..100.0,
        ) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let exact = exact_percentile(&sorted, p);
            let approx = h.snapshot().quantile(p);
            prop_assert!(approx >= exact, "approx {approx} under exact {exact}");
            prop_assert!(
                approx <= exact + exact / 8 + 1,
                "approx {approx} overshoots exact {exact} by more than 1/8"
            );
        }

        /// Merging snapshots is associative and order-independent:
        /// (a ∪ b) ∪ c == a ∪ (b ∪ c), and both equal one histogram
        /// fed everything.
        #[test]
        fn snapshot_merge_is_associative(
            a in proptest::collection::vec(0u64..100_000, 0..80),
            b in proptest::collection::vec(0u64..100_000, 0..80),
            c in proptest::collection::vec(0u64..100_000, 0..80),
        ) {
            let snap = |values: &[u64]| {
                let h = Histogram::new();
                for &v in values {
                    h.record(v);
                }
                h.snapshot()
            };
            let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));

            let mut left = sa.clone();
            left.merge(&sb);
            left.merge(&sc);

            let mut bc = sb.clone();
            bc.merge(&sc);
            let mut right = sa.clone();
            right.merge(&bc);

            prop_assert_eq!(&left, &right);

            let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
            prop_assert_eq!(&left, &snap(&all));
        }
    }
}
