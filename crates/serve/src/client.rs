//! The client side: a blocking [`Client`] speaking the wire protocol
//! (with explicit pipelining support) and a [`LoadClient`] that drives N
//! concurrent connections and reports QPS and latency percentiles.

use geodabs_index::{SearchOptions, SearchResult};
use geodabs_traj::{TrajId, Trajectory};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::proto::{
    write_frame, FrameReader, MetricsReport, QueryBody, Request, Response, StatsBody, WireError,
};

/// A blocking connection to a `geodabs-serve` server.
///
/// [`Client::request`] is the one-in-one-out convenience;
/// [`Client::send`] / [`Client::recv`] split the two halves so callers
/// can pipeline: enqueue several requests back to back, then collect the
/// responses, which the server returns **in request order**.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader<TcpStream>,
}

impl Client {
    /// Connects (with `TCP_NODELAY`, so small frames are not Nagle-delayed).
    ///
    /// # Errors
    ///
    /// Socket-level connect failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = FrameReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Sets the read timeout on the underlying socket — how long
    /// [`Client::recv`] blocks before the peer counts as unreachable
    /// (`None` waits forever). The frontend uses this to bound how
    /// long a dead shard can stall a scatter.
    ///
    /// # Errors
    ///
    /// Socket-level failures.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request frame without waiting for the response.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on socket failures.
    pub fn send(&mut self, request: &Request) -> Result<(), WireError> {
        write_frame(&mut self.stream, &request.encode())
    }

    /// Receives the next response frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] when the server hung up; any frame or
    /// decode error otherwise.
    pub fn recv(&mut self) -> Result<Response, WireError> {
        match self.reader.read_frame()? {
            Some(payload) => Response::decode(&payload),
            None => Err(WireError::Closed),
        }
    }

    /// Sends a request and waits for its response.
    ///
    /// # Errors
    ///
    /// See [`Client::send`] and [`Client::recv`].
    pub fn request(&mut self, request: &Request) -> Result<Response, WireError> {
        self.send(request)?;
        self.recv()
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Wire errors, or [`WireError::Remote`] if the server reported one.
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Index statistics (the legacy shape — [`StatsBody::durability`]
    /// is always `None`; see [`Client::stats_durable`]).
    ///
    /// # Errors
    ///
    /// Wire errors, or [`WireError::Remote`] if the server reported one.
    pub fn stats(&mut self) -> Result<StatsBody, WireError> {
        match self.request(&Request::Stats { durability: false })? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// Index statistics including the durability fields. Servers that
    /// predate the flag answer the flagged request with an error; this
    /// falls back to the legacy request then, so against an old server
    /// (or a WAL-less new one) the call succeeds with
    /// [`StatsBody::durability`] `= None`.
    ///
    /// # Errors
    ///
    /// Wire errors, or [`WireError::Remote`] if even the legacy
    /// request failed.
    pub fn stats_durable(&mut self) -> Result<StatsBody, WireError> {
        match self.request(&Request::Stats { durability: true })? {
            Response::Stats(stats) => Ok(stats),
            Response::Error(_) => self.stats(),
            other => Err(unexpected(other)),
        }
    }

    /// Ranked retrieval for one raw trajectory.
    ///
    /// # Errors
    ///
    /// Wire errors, or [`WireError::Remote`] if the server reported one.
    pub fn query(
        &mut self,
        query: &Trajectory,
        options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, WireError> {
        match self.request(&Request::Query {
            query: QueryBody::Trajectory(query.clone()),
            options: *options,
        })? {
            Response::Hits(hits) => Ok(hits),
            other => Err(unexpected(other)),
        }
    }

    /// Ranked retrieval from pre-computed geodab fingerprints.
    ///
    /// # Errors
    ///
    /// Wire errors, or [`WireError::Remote`] — e.g. when the backend
    /// cannot score fingerprint queries.
    pub fn query_fingerprints(
        &mut self,
        ordered: &[u32],
        options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, WireError> {
        match self.request(&Request::Query {
            query: QueryBody::Fingerprints(ordered.to_vec()),
            options: *options,
        })? {
            Response::Hits(hits) => Ok(hits),
            other => Err(unexpected(other)),
        }
    }

    /// Several ranked retrievals in one round trip; rankings come back in
    /// query order.
    ///
    /// # Errors
    ///
    /// Wire errors, or [`WireError::Remote`] if the server reported one.
    pub fn query_batch(
        &mut self,
        queries: &[Trajectory],
        options: &SearchOptions,
    ) -> Result<Vec<Vec<SearchResult>>, WireError> {
        match self.request(&Request::QueryBatch {
            queries: queries
                .iter()
                .map(|t| QueryBody::Trajectory(t.clone()))
                .collect(),
            options: *options,
        })? {
            Response::HitsBatch(batches) => Ok(batches),
            other => Err(unexpected(other)),
        }
    }

    /// Indexes a trajectory; returns the server's post-insert count.
    ///
    /// # Errors
    ///
    /// Wire errors, or [`WireError::Remote`] if the server reported one.
    pub fn insert(&mut self, id: TrajId, trajectory: &Trajectory) -> Result<u64, WireError> {
        match self.request(&Request::Insert {
            id,
            trajectory: trajectory.clone(),
        })? {
            Response::Inserted { len } => Ok(len),
            other => Err(unexpected(other)),
        }
    }

    /// Removes a trajectory; returns whether the id was indexed.
    ///
    /// # Errors
    ///
    /// Wire errors, or [`WireError::Remote`] if the server reported one.
    pub fn remove(&mut self, id: TrajId) -> Result<bool, WireError> {
        match self.request(&Request::Remove { id })? {
            Response::Removed { was_present } => Ok(was_present),
            other => Err(unexpected(other)),
        }
    }

    /// A frontend's scatter sub-query against one shard server: the
    /// node's exact top-k heap for the full ordered term sequence.
    ///
    /// # Errors
    ///
    /// Wire errors, or [`WireError::Remote`] — e.g. against a server
    /// that is not hosting a shard node.
    pub fn shard_query(
        &mut self,
        ordered: &[u32],
        options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, WireError> {
        match self.request(&Request::ShardQuery {
            terms: ordered.to_vec(),
            options: *options,
            trace: 0,
        })? {
            Response::ShardTopK(hits) => Ok(hits),
            other => Err(unexpected(other)),
        }
    }

    /// A frontend's scatter sub-query carrying a trace id, so the shard
    /// server files its slow-log entry under the frontend's trace. Falls
    /// back to the untraced frame against servers that predate the trace
    /// extension (their strict decoders reject the trailing bytes).
    ///
    /// # Errors
    ///
    /// Wire errors, or [`WireError::Remote`] if even the untraced
    /// request failed.
    pub fn shard_query_traced(
        &mut self,
        ordered: &[u32],
        options: &SearchOptions,
        trace: u64,
    ) -> Result<Vec<SearchResult>, WireError> {
        match self.request(&Request::ShardQuery {
            terms: ordered.to_vec(),
            options: *options,
            trace,
        })? {
            Response::ShardTopK(hits) => Ok(hits),
            Response::Error(_) => self.shard_query(ordered, options),
            other => Err(unexpected(other)),
        }
    }

    /// The server's telemetry snapshot: counters, gauges, histogram
    /// buckets, the slow-query log and the rendered Prometheus text.
    /// Servers that predate the metrics frame answer with an error,
    /// surfaced here as [`WireError::Remote`].
    ///
    /// # Errors
    ///
    /// Wire errors, or [`WireError::Remote`] against a pre-metrics
    /// server.
    pub fn metrics(&mut self) -> Result<MetricsReport, WireError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(report) => Ok(report),
            other => Err(unexpected(other)),
        }
    }

    /// A frontend's broadcast insert against one shard server; returns
    /// the node's post-insert replica count.
    ///
    /// # Errors
    ///
    /// Wire errors, or [`WireError::Remote`] — e.g. against a server
    /// that is not hosting a shard node.
    pub fn shard_insert(&mut self, id: TrajId, ordered: &[u32]) -> Result<u64, WireError> {
        match self.request(&Request::ShardInsert {
            id,
            terms: ordered.to_vec(),
        })? {
            Response::Inserted { len } => Ok(len),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(response: Response) -> WireError {
    match response {
        Response::Error(message) => WireError::Remote(message),
        Response::Unavailable { node, message } => WireError::Unavailable { node, message },
        _ => WireError::Corrupt("response type does not match the request"),
    }
}

/// One load point: everything [`LoadClient::run`] measured at a given
/// connection count.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadRun {
    /// Concurrent connections driven.
    pub connections: usize,
    /// Requests completed across all connections.
    pub requests: u64,
    /// Responses that differed from the expected in-process ranking
    /// (always 0 unless expectations were installed).
    pub mismatches: u64,
    /// Wall-clock seconds the point ran.
    pub seconds: f64,
    /// Completed requests per second.
    pub qps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile request latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
}

/// A closed-loop load generator: N connections, each sending one query
/// at a time round-robin over a prepared query set, for a fixed
/// duration.
///
/// Connection `i` starts at query `i` and steps by `connections`, so the
/// set is covered evenly regardless of per-connection speed. When
/// expectations are installed ([`LoadClient::expect_results`]), every response
/// is compared **bit-identically** against the in-process ranking and
/// divergences are counted per run — the serve smoke test in CI fails on
/// any mismatch.
///
/// # Examples
///
/// ```
/// use geodabs_core::GeodabConfig;
/// use geodabs_geo::Point;
/// use geodabs_index::{GeodabIndex, SearchOptions, TrajectoryIndex};
/// use geodabs_serve::{LoadClient, Server, ServerConfig};
/// use geodabs_traj::{TrajId, Trajectory};
/// use std::time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let start = Point::new(51.5074, -0.1278)?;
/// let path: Trajectory = (0..40).map(|i| start.destination(90.0, i as f64 * 90.0)).collect();
/// let mut index = GeodabIndex::new(GeodabConfig::default());
/// index.insert(TrajId::new(0), &path);
/// let options = SearchOptions::default().limit(5);
/// let expected = vec![index.search(&path, &options)];
///
/// let running = Server::bind("127.0.0.1:0", index, ServerConfig::default())?.spawn();
/// let load = LoadClient::new(running.addr().to_string(), vec![path], options)
///     .expect_results(expected);
/// let run = load.run(2, Duration::from_millis(200))?;
/// assert!(run.requests > 0);
/// assert_eq!(run.mismatches, 0);
/// running.shutdown()?;
/// # Ok(())
/// # }
/// ```
pub struct LoadClient {
    addr: String,
    queries: Vec<Trajectory>,
    options: SearchOptions,
    expected: Option<Vec<Vec<SearchResult>>>,
}

impl LoadClient {
    /// A load generator for `addr` cycling over `queries` under
    /// `options`.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty.
    pub fn new(addr: String, queries: Vec<Trajectory>, options: SearchOptions) -> LoadClient {
        assert!(!queries.is_empty(), "need at least one query");
        LoadClient {
            addr,
            queries,
            options,
            expected: None,
        }
    }

    /// Installs per-query expected rankings (aligned with the query
    /// list); every response is then compared bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn expect_results(mut self, expected: Vec<Vec<SearchResult>>) -> LoadClient {
        assert_eq!(
            expected.len(),
            self.queries.len(),
            "one expected ranking per query"
        );
        self.expected = Some(expected);
        self
    }

    /// Drives `connections` concurrent connections for `duration` and
    /// aggregates the point.
    ///
    /// # Errors
    ///
    /// The first connection or wire error any connection hit — a load
    /// run with broken connections must fail loudly, not report partial
    /// throughput.
    ///
    /// # Panics
    ///
    /// Panics if `connections` is zero.
    pub fn run(&self, connections: usize, duration: Duration) -> Result<LoadRun, WireError> {
        assert!(connections > 0, "need at least one connection");
        struct ThreadStats {
            latencies_ms: Vec<f64>,
            mismatches: u64,
        }
        let started = Instant::now();
        let deadline = started + duration;
        let results: Vec<Result<ThreadStats, WireError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..connections)
                .map(|conn_index| {
                    scope.spawn(move || {
                        let mut client = Client::connect(&self.addr)?;
                        let mut stats = ThreadStats {
                            latencies_ms: Vec::new(),
                            mismatches: 0,
                        };
                        let mut qi = conn_index % self.queries.len();
                        while Instant::now() < deadline {
                            let begun = Instant::now();
                            let hits = client.query(&self.queries[qi], &self.options)?;
                            stats.latencies_ms.push(begun.elapsed().as_secs_f64() * 1e3);
                            if let Some(expected) = &self.expected {
                                if hits != expected[qi] {
                                    stats.mismatches += 1;
                                }
                            }
                            qi = (qi + connections) % self.queries.len();
                        }
                        Ok(stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("load thread panicked"))
                .collect()
        });
        let seconds = started.elapsed().as_secs_f64();
        let mut latencies_ms: Vec<f64> = Vec::new();
        let mut mismatches = 0u64;
        for result in results {
            let stats = result?;
            latencies_ms.extend(stats.latencies_ms);
            mismatches += stats.mismatches;
        }
        latencies_ms.sort_by(f64::total_cmp);
        let requests = latencies_ms.len() as u64;
        Ok(LoadRun {
            connections,
            requests,
            mismatches,
            seconds,
            qps: requests as f64 / seconds.max(1e-9),
            p50_ms: percentile(&latencies_ms, 50.0),
            p95_ms: percentile(&latencies_ms, 95.0),
            p99_ms: percentile(&latencies_ms, 99.0),
        })
    }
}

/// Nearest-rank percentile of an **already sorted** sample (`0.0` for an
/// empty one) — the one percentile definition shared by the load client
/// and the bench harness, so latency numbers stay comparable across
/// both.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sample: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sample, 50.0), 50.0);
        assert_eq!(percentile(&sample, 95.0), 95.0);
        assert_eq!(percentile(&sample, 99.0), 99.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn empty_query_set_panics() {
        let _ = LoadClient::new("127.0.0.1:1".into(), vec![], SearchOptions::default());
    }

    /// End-to-end pin of the new-client/old-server direction: a mock
    /// pre-durability server rejects the flagged request (its strict
    /// decoder saw trailing bytes) and only understands the bare-tag
    /// one; `stats_durable` must come back `Ok` with no durability.
    #[test]
    fn stats_durable_falls_back_against_an_old_server() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = FrameReader::new(stream.try_clone().unwrap());
            for _ in 0..2 {
                let payload = reader.read_frame().unwrap().unwrap();
                // Frozen old behavior: request tag 2 alone is Stats;
                // anything longer failed the trailing-bytes check.
                let reply: Vec<u8> = if payload == [2u8] {
                    let mut out = vec![2u8];
                    out.extend_from_slice(&6u32.to_le_bytes());
                    out.extend_from_slice(b"geodab");
                    out.extend_from_slice(&10u64.to_le_bytes());
                    out.extend_from_slice(&20u64.to_le_bytes());
                    out.extend_from_slice(&4u64.to_le_bytes());
                    out
                } else {
                    Response::Error("bad request: corrupt wire data".into()).encode()
                };
                write_frame(&mut &stream, &reply).unwrap();
            }
        });
        let mut client = Client::connect(addr).unwrap();
        let stats = client.stats_durable().unwrap();
        assert_eq!(stats.backend, "geodab");
        assert_eq!(stats.trajectories, 10);
        assert_eq!(stats.durability, None);
        server.join().unwrap();
    }

    /// New-client/old-server direction for the metrics frame: a server
    /// that predates tag 9 answers it with an error, which surfaces as
    /// [`WireError::Remote`] rather than a corrupt-wire failure.
    #[test]
    fn metrics_surfaces_a_remote_error_against_an_old_server() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = FrameReader::new(stream.try_clone().unwrap());
            let payload = reader.read_frame().unwrap().unwrap();
            // Frozen old behavior: tag 9 was unknown.
            assert_eq!(payload, [9u8]);
            let reply = Response::Error("bad request: unknown request tag".into()).encode();
            write_frame(&mut &stream, &reply).unwrap();
        });
        let mut client = Client::connect(addr).unwrap();
        match client.metrics() {
            Err(WireError::Remote(message)) => assert!(message.contains("unknown request tag")),
            other => panic!("expected a remote error, got {other:?}"),
        }
        server.join().unwrap();
    }

    /// New-client/old-server direction for the traced shard query: an old
    /// server rejects the trailing trace bytes, and the client retries
    /// with the untraced legacy frame.
    #[test]
    fn traced_shard_query_falls_back_against_an_old_server() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let legacy = Request::ShardQuery {
            terms: vec![1, 2, 3],
            options: SearchOptions::default(),
            trace: 0,
        }
        .encode();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = FrameReader::new(stream.try_clone().unwrap());
            for _ in 0..2 {
                let payload = reader.read_frame().unwrap().unwrap();
                // Frozen old behavior: the bare shard-query shape decodes,
                // the traced one failed the trailing-bytes check.
                let reply: Vec<u8> = if payload == legacy {
                    Response::ShardTopK(Vec::new()).encode()
                } else {
                    Response::Error("bad request: corrupt wire data".into()).encode()
                };
                write_frame(&mut &stream, &reply).unwrap();
            }
        });
        let mut client = Client::connect(addr).unwrap();
        let hits = client
            .shard_query_traced(&[1, 2, 3], &SearchOptions::default(), 0xDEAD_BEEF)
            .unwrap();
        assert!(hits.is_empty());
        server.join().unwrap();
    }
}
