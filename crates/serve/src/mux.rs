//! The connection multiplexer: a fixed worker pool sweeping many
//! non-blocking connections each, instead of one worker owning one
//! connection for its lifetime.
//!
//! The acceptor (the thread calling [`serve_connections`]) hands each
//! accepted stream — switched to non-blocking mode — to a worker over a
//! per-worker channel, round-robin. A worker keeps its connections in a
//! flat list and sweeps them: the incremental
//! [`FrameReader`](crate::proto::FrameReader) resumes mid-frame across
//! `WouldBlock`, so a slow sender costs one failed `read` per sweep,
//! never a parked thread. Idle connections therefore cost nothing but a
//! list slot — thousands of them can share a pool sized to the cores.
//!
//! A sweep decodes at most [`FRAMES_PER_SWEEP`] frames per connection
//! before moving on, so one pipelining client cannot starve its
//! neighbours on the same worker. Responses are written with the socket
//! momentarily switched back to blocking mode (bounded by a write
//! timeout): a response frame is either written whole or the connection
//! is dropped — never interleaved or torn.
//!
//! When no connection makes progress, a worker backs off adaptively:
//! `yield_now` for short idle streaks (keeping closed-loop latency in
//! the microseconds), escalating to sub-millisecond sleeps so a fully
//! idle pool does not spin a core.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use crate::metrics::{kind_index, ServeMetrics};
use crate::proto::{is_timeout, write_frame, FrameReader, Request, Response, WireError};

/// Frames decoded from one connection per sweep before the worker moves
/// on — the fairness bound between pipelining neighbours.
const FRAMES_PER_SWEEP: usize = 32;

/// No-progress sweeps before a worker escalates from `yield_now` to
/// sleeping. Yields keep a closed request/response loop fast; the
/// threshold keeps a quiet pool off the scheduler.
const SPIN_SWEEPS: u32 = 1_000;

/// The idle sleep once spinning has not paid off. Short enough that a
/// single closed-loop client still sees thousands of requests per
/// second out of a sleeping worker.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// Upper bound on one response write once the socket is switched to
/// blocking mode; a peer that stops draining for this long is dropped.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// The error sent when a response would blow the frame cap.
pub(crate) const RESPONSE_TOO_LARGE: &str =
    "response exceeds the frame cap; narrow the query with a result limit";

/// One multiplexed connection: the reader owns the stream.
struct Conn {
    reader: FrameReader<TcpStream>,
}

enum Sweep {
    /// At least one frame was answered.
    Progress,
    /// No bytes ready; keep the connection.
    Idle,
    /// Closed, errored, or lost framing; drop the connection.
    Closed,
}

/// Accepts connections on `listener` and serves them over `workers`
/// multiplexing workers until `shutdown` flips (use
/// [`crate::server::ServerHandle::shutdown`] or any equivalent
/// flag-plus-listener-poke). Each worker builds its private state once
/// via `state` (e.g. a frontend's lazy shard connections) and answers
/// every decoded request through `respond`; `requests` counts answered
/// frames. A panicking `respond` is caught at the request boundary and
/// answered with an error frame.
///
/// # Errors
///
/// A persistent accept-error streak (e.g. fd exhaustion) is fatal and
/// returned after flipping `shutdown`; per-connection errors only drop
/// that connection.
pub(crate) fn serve_connections<S, N, H>(
    listener: &TcpListener,
    workers: usize,
    shutdown: &AtomicBool,
    requests: &AtomicU64,
    metrics: &ServeMetrics,
    state: N,
    respond: H,
) -> std::io::Result<()>
where
    N: Fn() -> S + Sync,
    H: Fn(&mut S, Request) -> Response + Sync,
{
    let workers = workers.max(1);
    let mut fatal: Option<std::io::Error> = None;
    std::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            senders.push(tx);
            let state = &state;
            let respond = &respond;
            scope.spawn(move || worker_loop(rx, shutdown, requests, metrics, state(), respond));
        }
        // Transient accept() errors (a peer resetting mid-handshake)
        // are retried with a small back-off; a persistent error streak
        // is fatal rather than a silent 100%-CPU spin.
        let mut error_streak = 0u32;
        let mut next_worker = 0usize;
        for conn in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    error_streak = 0;
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    if senders[next_worker % workers].send(stream).is_err() {
                        break;
                    }
                    next_worker = next_worker.wrapping_add(1);
                }
                Err(e) => {
                    error_streak += 1;
                    if error_streak >= 100 {
                        fatal = Some(e);
                        shutdown.store(true, Ordering::SeqCst);
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        drop(senders);
    });
    match fatal {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn worker_loop<S, H>(
    rx: mpsc::Receiver<TcpStream>,
    shutdown: &AtomicBool,
    requests: &AtomicU64,
    metrics: &ServeMetrics,
    mut state: S,
    respond: &H,
) where
    H: Fn(&mut S, Request) -> Response,
{
    let mut conns: Vec<Conn> = Vec::new();
    let mut idle_streak = 0u32;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Intake. With nothing to sweep, block on the channel (with a
        // timeout to keep polling the shutdown flag) instead of
        // spinning on an empty list.
        let mut disconnected = false;
        if conns.is_empty() {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(stream) => {
                    metrics.connections.add(1);
                    conns.push(Conn {
                        reader: FrameReader::new(stream),
                    });
                }
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        loop {
            match rx.try_recv() {
                Ok(stream) => {
                    metrics.connections.add(1);
                    conns.push(Conn {
                        reader: FrameReader::new(stream),
                    });
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        let mut progress = false;
        conns.retain_mut(
            |conn| match sweep(conn, &mut state, respond, requests, metrics) {
                Sweep::Progress => {
                    progress = true;
                    true
                }
                Sweep::Idle => true,
                Sweep::Closed => {
                    metrics.connections.sub(1);
                    false
                }
            },
        );
        if disconnected && conns.is_empty() {
            break;
        }
        if progress {
            idle_streak = 0;
        } else {
            idle_streak = idle_streak.saturating_add(1);
            if idle_streak < SPIN_SWEEPS {
                std::thread::yield_now();
            } else {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
    }
    // Connections still held at shutdown close with the worker.
    metrics.connections.sub(conns.len() as u64);
}

/// Answers up to [`FRAMES_PER_SWEEP`] complete frames from one
/// connection; a read that would block ends the sweep.
fn sweep<S, H>(
    conn: &mut Conn,
    state: &mut S,
    respond: &H,
    requests: &AtomicU64,
    metrics: &ServeMetrics,
) -> Sweep
where
    H: Fn(&mut S, Request) -> Response,
{
    let mut answered = false;
    for _ in 0..FRAMES_PER_SWEEP {
        match conn.reader.read_frame() {
            Ok(None) => return Sweep::Closed,
            Ok(Some(payload)) => {
                metrics.frames_in_flight.add(1);
                let started = metrics.now();
                let decoded = Request::decode(&payload);
                metrics.record_since(&metrics.decode_us, started);
                let (kind, response) = match decoded {
                    // A panicking handler must not take the worker (and
                    // every connection it sweeps) down with it: catch
                    // at the request boundary and answer with an error.
                    Ok(request) => {
                        let kind = kind_index(&request);
                        metrics.workers_busy.add(1);
                        let response =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                respond(state, request)
                            }))
                            .unwrap_or_else(|_| {
                                Response::Error("request handler panicked".to_string())
                            });
                        metrics.workers_busy.sub(1);
                        (Some(kind), response)
                    }
                    Err(e) => (None, Response::Error(format!("bad request: {e}"))),
                };
                requests.fetch_add(1, Ordering::Relaxed);
                answered = true;
                let usable = write_response(conn, &response, metrics);
                if let Some(kind) = kind {
                    metrics.requests[kind].inc();
                    if let Some(started) = started {
                        metrics.latency_us[kind].record(started.elapsed().as_micros() as u64);
                    }
                }
                metrics.frames_in_flight.sub(1);
                if !usable {
                    return Sweep::Closed;
                }
            }
            Err(WireError::Io(e)) if is_timeout(&e) => break,
            Err(e) => {
                // Framing is lost (bad checksum, oversized length, EOF
                // mid-frame): answer best-effort, then drop the
                // connection — later bytes cannot be trusted.
                let response = Response::Error(format!("bad frame: {e}"));
                let _ = write_response(conn, &response, metrics);
                return Sweep::Closed;
            }
        }
    }
    if answered {
        Sweep::Progress
    } else {
        Sweep::Idle
    }
}

/// Writes one response frame whole, with the socket temporarily in
/// blocking mode (bounded by [`WRITE_TIMEOUT`]). Returns whether the
/// connection is still usable.
fn write_response(conn: &mut Conn, response: &Response, metrics: &ServeMetrics) -> bool {
    let stream = conn.reader.get_ref();
    if stream.set_nonblocking(false).is_err() {
        return false;
    }
    let started = metrics.now();
    let encoded = response.encode();
    metrics.record_since(&metrics.encode_us, started);
    let ok = match write_frame(&mut &*stream, &encoded) {
        Ok(()) => true,
        // write_frame validates the cap before touching the socket, so
        // an oversized response (a batch of many empty rankings can
        // exceed the cap on record overhead alone) can still be
        // answered with a small typed error instead of a silent
        // hang-up.
        Err(WireError::FrameTooLarge { .. }) => {
            let fallback = Response::Error(RESPONSE_TOO_LARGE.to_string());
            write_frame(&mut &*stream, &fallback.encode()).is_ok()
        }
        Err(_) => false,
    };
    conn.reader.get_ref().set_nonblocking(true).is_ok() && ok
}
