//! The scatter/gather frontend: the coordinator of a distributed
//! deployment, routing queries and mutations to remote shard servers.
//!
//! # Topology
//!
//! A frontend owns the [`ShardRouter`] and the [`Fingerprinter`]; each
//! shard server is a plain `Server<ShardNode>` hosting one node's slice
//! of the index (routed-subset postings plus full fingerprint
//! replicas). A query is fingerprinted once at the frontend, the
//! router names the nodes its terms touch, and a `ShardQuery` carrying
//! the **full** ordered term sequence is pipelined to each of them;
//! every node answers its exact local top-k heap (`ShardTopK`), and the
//! frontend merges the heaps with [`merge_heaps`] — the same merge the
//! in-process [`ClusterIndex`](geodabs_cluster::ClusterIndex)
//! coordinator uses, so the distributed ranking is **bit-identical** to
//! the monolithic one by construction.
//!
//! # Lifecycle
//!
//! The frontend shares the server's lifecycle shapes: `bind(...)` →
//! [`Frontend::run`] / [`Frontend::spawn`] →
//! [`RunningServer`](crate::RunningServer), controlled through the same
//! [`ServerHandle`](crate::ServerHandle). Client connections are served
//! by the same multiplexer as the single-process server — a fixed pool
//! of [`FrontendConfig::mux_workers`] workers sweeping many non-blocking
//! connections each; every worker owns one lazy private connection per
//! shard server.
//!
//! # Mutations
//!
//! `Insert` is fingerprinted once and **broadcast** to every node as a
//! `ShardInsert`: each node keeps the routed subset (replace-on-
//! reinsert scrubs stale replicas on nodes the new shape no longer
//! touches). `Remove` broadcasts too — any node might hold the id. The
//! frontend tracks the indexed id set so `Removed { was_present }` and
//! `Inserted { len }` match the monolithic answers; queries hold that
//! set's read lock across the scatter, mutations hold the write lock
//! across the broadcast, so pipelined clients observe the same
//! read-your-writes ordering a single-process server gives them.
//!
//! # Degraded mode
//!
//! Results are exact or refused — never silently partial. When a shard
//! cannot be reached (connect, send, or receive failure) the frontend
//! reconnects and retries per [`FrontendConfig::retries`]; if the node
//! still cannot answer, the whole request is answered with the typed
//! [`Response::Unavailable`] naming the dead node. The failed
//! connection is dropped from the pool, so the next request redials —
//! a shard coming back is picked up without restarting the frontend.
//! A mutation refused this way may have been applied by a subset of
//! the nodes; re-issuing it (the op is idempotent) converges the
//! cluster once the node is back.

use geodabs_cluster::{merge_heaps, ShardRouter};
use geodabs_core::{Fingerprinter, Fingerprints};
use geodabs_index::batch::default_threads;
use geodabs_index::{SearchOptions, SearchResult};
use geodabs_traj::TrajId;
use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use geodabs_obs::TraceId;

use crate::client::Client;
use crate::metrics::ServeMetrics;
use crate::mux::{self, RESPONSE_TOO_LARGE};
use crate::proto::{QueryBody, Request, Response, StatsBody, WireError, MAX_FRAME_LEN};
use crate::server::{RunningServer, ServerConfigError, ServerHandle};

/// Upper bound on hits across one response — the same frame-cap
/// arithmetic the single-process server enforces.
const MAX_RESPONSE_HITS: usize = MAX_FRAME_LEN as usize / 12;

/// Frontend tuning knobs; build with [`FrontendConfig::builder`].
///
/// ```
/// use geodabs_serve::FrontendConfig;
/// use std::time::Duration;
///
/// # fn main() -> Result<(), geodabs_serve::ServerConfigError> {
/// let config = FrontendConfig::builder()
///     .mux_workers(2)
///     .retries(3)
///     .shard_timeout(Some(Duration::from_secs(10)))
///     .build()?;
/// assert_eq!(config.mux_workers(), 2);
/// assert_eq!(config.retries(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontendConfig {
    mux_workers: usize,
    retries: u32,
    shard_timeout: Option<Duration>,
}

impl FrontendConfig {
    /// A builder starting from the defaults (one mux worker per core,
    /// one retry, a five-second shard timeout).
    pub fn builder() -> FrontendConfigBuilder {
        FrontendConfigBuilder::default()
    }

    /// Worker threads in the client-connection multiplexer. Each worker
    /// sweeps many connections (and owns one private connection per
    /// shard server), so this sizes parallelism, not the concurrent-
    /// connection capacity.
    pub fn mux_workers(&self) -> usize {
        self.mux_workers
    }

    /// Reconnect-and-retry attempts per shard per request before the
    /// request is refused as [`Response::Unavailable`].
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Read timeout on shard connections: a shard silent for this long
    /// counts as unreachable. `None` waits forever.
    pub fn shard_timeout(&self) -> Option<Duration> {
        self.shard_timeout
    }
}

impl Default for FrontendConfig {
    fn default() -> FrontendConfig {
        FrontendConfig {
            mux_workers: default_threads(),
            retries: 1,
            shard_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// Chainable builder for [`FrontendConfig`], mirroring
/// [`ServerConfig::builder`](crate::ServerConfig::builder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontendConfigBuilder {
    mux_workers: usize,
    retries: u32,
    shard_timeout: Option<Duration>,
}

impl Default for FrontendConfigBuilder {
    fn default() -> FrontendConfigBuilder {
        let defaults = FrontendConfig::default();
        FrontendConfigBuilder {
            mux_workers: defaults.mux_workers,
            retries: defaults.retries,
            shard_timeout: defaults.shard_timeout,
        }
    }
}

impl FrontendConfigBuilder {
    /// Sets the multiplexer worker count (see
    /// [`FrontendConfig::mux_workers`]).
    pub fn mux_workers(mut self, mux_workers: usize) -> FrontendConfigBuilder {
        self.mux_workers = mux_workers;
        self
    }

    /// Sets the per-shard retry budget (see
    /// [`FrontendConfig::retries`]).
    pub fn retries(mut self, retries: u32) -> FrontendConfigBuilder {
        self.retries = retries;
        self
    }

    /// Sets the shard read timeout (see
    /// [`FrontendConfig::shard_timeout`]).
    pub fn shard_timeout(mut self, shard_timeout: Option<Duration>) -> FrontendConfigBuilder {
        self.shard_timeout = shard_timeout;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// [`ServerConfigError::ZeroMuxWorkers`] when the worker count is
    /// zero.
    pub fn build(self) -> Result<FrontendConfig, ServerConfigError> {
        if self.mux_workers == 0 {
            return Err(ServerConfigError::ZeroMuxWorkers);
        }
        Ok(FrontendConfig {
            mux_workers: self.mux_workers,
            retries: self.retries,
            shard_timeout: self.shard_timeout,
        })
    }
}

struct FrontendShared {
    fingerprinter: Fingerprinter,
    router: ShardRouter,
    shard_addrs: Vec<String>,
    /// Ids acknowledged by the cluster, so `Inserted { len }` /
    /// `Removed { was_present }` answer exactly like a monolithic
    /// server. Queries hold the read lock across their scatter,
    /// mutations the write lock across their broadcast.
    indexed: RwLock<BTreeSet<TrajId>>,
    retries: u32,
    shard_timeout: Option<Duration>,
    workers: usize,
    shutdown: Arc<AtomicBool>,
    requests: AtomicU64,
    metrics: ServeMetrics,
}

/// A frontend bound to its socket but not yet serving; call
/// [`Frontend::run`] (blocking) or [`Frontend::spawn`] (background
/// thread). The module-level docs sketch the topology.
pub struct Frontend {
    listener: TcpListener,
    addr: SocketAddr,
    workers: usize,
    shared: Arc<FrontendShared>,
}

impl Frontend {
    /// Binds to `addr`, coordinating the shard servers at
    /// `shard_addrs` (index `i` hosts the router's node `i`).
    /// Connections to the shards are opened lazily, per worker, on
    /// first use — the shards need not be up yet.
    ///
    /// # Errors
    ///
    /// Any socket-level failure binding the listener.
    ///
    /// # Panics
    ///
    /// Panics unless `shard_addrs` has exactly `router.num_nodes()`
    /// entries — the address list *is* the node list.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        fingerprinter: Fingerprinter,
        router: ShardRouter,
        shard_addrs: Vec<String>,
        config: FrontendConfig,
    ) -> std::io::Result<Frontend> {
        assert_eq!(
            shard_addrs.len(),
            router.num_nodes(),
            "one shard server address per router node"
        );
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let workers = config.mux_workers().max(1);
        let shared = Arc::new(FrontendShared {
            fingerprinter,
            router,
            shard_addrs,
            indexed: RwLock::new(BTreeSet::new()),
            retries: config.retries(),
            shard_timeout: config.shard_timeout(),
            workers,
            shutdown: Arc::new(AtomicBool::new(false)),
            requests: AtomicU64::new(0),
            metrics: ServeMetrics::from_env(),
        });
        Ok(Frontend {
            listener,
            addr,
            workers,
            shared,
        })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote-control handle usable from any thread — the same
    /// [`ServerHandle`] a single-process server hands out.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle::new(self.addr, Arc::clone(&self.shared.shutdown))
    }

    /// Serves until [`ServerHandle::shutdown`]; returns the number of
    /// requests served. Client connections run through the same
    /// multiplexer as the single-process server; each worker
    /// additionally owns one lazy connection per shard server.
    ///
    /// # Errors
    ///
    /// Fatal listener errors; per-connection errors only drop that
    /// connection.
    pub fn run(self) -> std::io::Result<u64> {
        let shared = &self.shared;
        mux::serve_connections(
            &self.listener,
            self.workers,
            &shared.shutdown,
            &shared.requests,
            &shared.metrics,
            || ShardPool::new(shared),
            |pool, request| execute(shared, pool, request),
        )
        .map(|()| self.shared.requests.load(Ordering::SeqCst))
    }

    /// Moves the frontend onto a background thread and returns its
    /// controls — a [`RunningServer`], just like [`crate::Server::spawn`].
    pub fn spawn(self) -> RunningServer {
        let handle = self.handle();
        let join = std::thread::spawn(move || self.run());
        RunningServer::from_parts(handle, join)
    }
}

/// One worker's private connections to the shard servers, opened
/// lazily and dropped on failure (the next use redials — that is the
/// recovery path after a shard restart).
struct ShardPool<'a> {
    shared: &'a FrontendShared,
    clients: Vec<Option<Client>>,
    /// Nodes that rejected a trace-carrying `ShardQuery` (a pre-trace
    /// server build): once latched, this worker sends them the legacy
    /// frame shape instead of failing every traced query.
    legacy_trace: Vec<bool>,
}

impl<'a> ShardPool<'a> {
    fn new(shared: &'a FrontendShared) -> ShardPool<'a> {
        ShardPool {
            clients: (0..shared.shard_addrs.len()).map(|_| None).collect(),
            legacy_trace: vec![false; shared.shard_addrs.len()],
            shared,
        }
    }

    /// The live connection to `node`, dialing if needed.
    fn client(&mut self, node: usize) -> Result<&mut Client, WireError> {
        if self.clients[node].is_none() {
            let client =
                Client::connect(self.shared.shard_addrs[node].as_str()).map_err(WireError::Io)?;
            client
                .set_read_timeout(self.shared.shard_timeout)
                .map_err(WireError::Io)?;
            self.clients[node] = Some(client);
        }
        Ok(self.clients[node].as_mut().expect("just connected"))
    }

    /// One request/response against `node`, reconnecting and retrying
    /// on connection-level failure per the configured retry budget. A
    /// *remote* error (the shard answered, but refused) is returned
    /// as-is — retrying cannot change a typed refusal.
    fn exchange(&mut self, node: usize, request: &Request) -> Result<Response, WireError> {
        let mut last: Option<WireError> = None;
        for _ in 0..=self.shared.retries {
            match self.try_exchange(node, request) {
                Ok(response) => return Ok(response),
                Err(e) => {
                    self.clients[node] = None;
                    last = Some(e);
                }
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    fn try_exchange(&mut self, node: usize, request: &Request) -> Result<Response, WireError> {
        let client = self.client(node)?;
        client.send(request)?;
        client.recv()
    }

    /// Scatter one request to every node in `nodes` (pipelined sends,
    /// then in-order receives) and gather the responses. Nodes whose
    /// pipelined leg failed are retried individually; a node that
    /// still cannot answer fails the whole scatter with its error.
    ///
    /// `legacy` is the trace-less shape of `request`, when it has one:
    /// nodes latched as pre-trace builds receive it instead, and a node
    /// that rejects the traced frame as malformed is retried with it
    /// (and latched on success) — so a mixed-version cluster degrades
    /// to untraced queries instead of failing.
    fn scatter(
        &mut self,
        nodes: &[usize],
        request: &Request,
        legacy: Option<&Request>,
    ) -> Result<Vec<Response>, (usize, WireError)> {
        let metrics = &self.shared.metrics;
        let started = metrics.now();
        let mut sent = vec![false; nodes.len()];
        for (slot, &node) in nodes.iter().enumerate() {
            let outgoing = match legacy {
                Some(legacy) if self.legacy_trace[node] => legacy,
                _ => request,
            };
            sent[slot] = match self.client(node) {
                Ok(client) => client.send(outgoing).is_ok(),
                Err(_) => false,
            };
        }
        let mut responses = Vec::with_capacity(nodes.len());
        for (slot, &node) in nodes.iter().enumerate() {
            let outgoing = match legacy {
                Some(legacy) if self.legacy_trace[node] => legacy,
                _ => request,
            };
            let first = if sent[slot] {
                match self.clients[node].as_mut().expect("sent on it").recv() {
                    Ok(response) => Some(response),
                    Err(_) => {
                        self.clients[node] = None;
                        None
                    }
                }
            } else {
                self.clients[node] = None;
                None
            };
            let mut response = match first {
                Some(response) => response,
                // The pipelined leg failed: fall back to the serial
                // reconnect-and-retry path for this node alone.
                None => match self.exchange(node, outgoing) {
                    Ok(response) => response,
                    Err(e) => return Err((node, e)),
                },
            };
            // A pre-trace build cannot decode the trace tail and
            // answers "bad request": resend the legacy shape once and
            // remember the node's vintage.
            if let (Some(legacy), Response::Error(message)) = (legacy, &response) {
                if !self.legacy_trace[node] && message.starts_with("bad request") {
                    match self.exchange(node, legacy) {
                        Ok(retried) => {
                            self.legacy_trace[node] = true;
                            response = retried;
                        }
                        Err(e) => return Err((node, e)),
                    }
                }
            }
            if let Some(started) = started {
                // Time-to-answer per scatter leg, measured from the
                // scatter's start: leg i includes draining legs < i,
                // which is exactly the tail the merge waits on.
                metrics
                    .scatter_shard_us
                    .record(started.elapsed().as_micros() as u64);
            }
            responses.push(response);
        }
        metrics.scatter_fanout.record(nodes.len() as u64);
        Ok(responses)
    }
}

/// Maps a failed scatter leg to the typed degraded response.
fn unavailable(node: usize, error: WireError) -> Response {
    match error {
        // The shard answered with a typed refusal: forward it verbatim
        // — the node is alive, the request is at fault.
        WireError::Remote(message) => Response::Error(message),
        other => Response::Unavailable {
            node: node as u32,
            message: other.to_string(),
        },
    }
}

/// The fingerprints a query body denotes (the frontend fingerprints raw
/// trajectories exactly once; pre-fingerprinted bodies pass through).
fn query_fingerprints(shared: &FrontendShared, query: &QueryBody) -> Fingerprints {
    match query {
        QueryBody::Trajectory(trajectory) => {
            shared.fingerprinter.normalize_and_fingerprint(trajectory)
        }
        QueryBody::Fingerprints(ordered) => Fingerprints::from_ordered(ordered.clone()),
    }
}

/// One scatter/gather ranked retrieval, tagged with `trace` on the
/// wire. The caller holds the indexed set's read lock; `stages` gains
/// the scatter and merge spans when metrics are enabled.
fn scatter_query(
    shared: &FrontendShared,
    pool: &mut ShardPool<'_>,
    fp: &Fingerprints,
    options: &SearchOptions,
    trace: u64,
    stages: &mut Vec<(String, u64)>,
) -> Result<Vec<SearchResult>, Response> {
    if fp.is_empty() {
        return Ok(Vec::new());
    }
    let metrics = &shared.metrics;
    let nodes = shared.router.nodes_for_terms(fp.ordered().iter().copied());
    let request = Request::ShardQuery {
        terms: fp.ordered().to_vec(),
        options: *options,
        trace,
    };
    // The trace-less twin, for nodes running a pre-trace build (see
    // ShardPool::scatter). Built only when a trace is actually carried.
    let legacy = (trace != 0).then(|| Request::ShardQuery {
        terms: fp.ordered().to_vec(),
        options: *options,
        trace: 0,
    });
    let scatter_started = metrics.now();
    let responses = pool
        .scatter(&nodes, &request, legacy.as_ref())
        .map_err(|(node, e)| unavailable(node, e))?;
    if let Some(started) = scatter_started {
        stages.push(("scatter".to_string(), started.elapsed().as_micros() as u64));
    }
    let mut heaps = Vec::with_capacity(responses.len());
    for (response, &node) in responses.into_iter().zip(&nodes) {
        match response {
            Response::ShardTopK(heap) => heaps.push(heap),
            Response::Error(message) => return Err(Response::Error(message)),
            _ => {
                return Err(Response::Unavailable {
                    node: node as u32,
                    message: "shard answered with the wrong response type".to_string(),
                })
            }
        }
    }
    let merge_started = metrics.now();
    let merged = merge_heaps(heaps, options);
    let merge_us = metrics.record_since(&metrics.stage_merge_us, merge_started);
    if merge_started.is_some() {
        stages.push(("merge".to_string(), merge_us));
    }
    Ok(merged)
}

/// Broadcast one mutation to **all** nodes; every node must ack. The
/// caller holds the indexed set's write lock.
fn broadcast(
    shared: &FrontendShared,
    pool: &mut ShardPool<'_>,
    request: &Request,
) -> Result<(), Response> {
    let nodes: Vec<usize> = (0..shared.shard_addrs.len()).collect();
    let responses = pool
        .scatter(&nodes, request, None)
        .map_err(|(node, e)| unavailable(node, e))?;
    for (response, node) in responses.into_iter().zip(nodes) {
        match response {
            Response::Inserted { .. } | Response::Removed { .. } => {}
            Response::Error(message) => return Err(Response::Error(message)),
            _ => {
                return Err(Response::Unavailable {
                    node: node as u32,
                    message: "shard answered with the wrong response type".to_string(),
                })
            }
        }
    }
    Ok(())
}

fn execute(shared: &FrontendShared, pool: &mut ShardPool<'_>, request: Request) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Stats { .. } => match shared.indexed.read() {
            Ok(indexed) => Response::Stats(StatsBody {
                backend: "frontend".to_string(),
                trajectories: indexed.len() as u64,
                terms: shared.shard_addrs.len() as u64,
                workers: shared.workers as u64,
                durability: None,
            }),
            Err(_) => poisoned(),
        },
        Request::Query { query, options } => match shared.indexed.read() {
            Ok(_indexed) => {
                let metrics = &shared.metrics;
                let trace = TraceId::mint().raw();
                let started = metrics.now();
                let mut stages = Vec::new();
                let fp = query_fingerprints(shared, &query);
                let result = scatter_query(shared, pool, &fp, &options, trace, &mut stages);
                if let Some(started) = started {
                    let total_us = started.elapsed().as_micros() as u64;
                    metrics.observe_slow(trace, "query", total_us, stages);
                }
                match result {
                    Ok(hits) if hits.len() > MAX_RESPONSE_HITS => {
                        Response::Error(RESPONSE_TOO_LARGE.to_string())
                    }
                    Ok(hits) => Response::Hits(hits),
                    Err(refusal) => refusal,
                }
            }
            Err(_) => poisoned(),
        },
        Request::QueryBatch { queries, options } => match shared.indexed.read() {
            Ok(_indexed) => {
                let metrics = &shared.metrics;
                let trace = TraceId::mint().raw();
                let started = metrics.now();
                let mut stages = Vec::new();
                let mut batches = Vec::with_capacity(queries.len());
                let mut total_hits = 0usize;
                for query in &queries {
                    let fp = query_fingerprints(shared, query);
                    match scatter_query(shared, pool, &fp, &options, trace, &mut stages) {
                        Ok(hits) => {
                            total_hits += hits.len();
                            if total_hits > MAX_RESPONSE_HITS {
                                return Response::Error(RESPONSE_TOO_LARGE.to_string());
                            }
                            batches.push(hits);
                        }
                        Err(refusal) => return refusal,
                    }
                }
                if let Some(started) = started {
                    let total_us = started.elapsed().as_micros() as u64;
                    metrics.observe_slow(trace, "query_batch", total_us, stages);
                }
                Response::HitsBatch(batches)
            }
            Err(_) => poisoned(),
        },
        Request::Insert { id, trajectory } => match shared.indexed.write() {
            Ok(mut indexed) => {
                let fp = shared.fingerprinter.normalize_and_fingerprint(&trajectory);
                if !fp.is_empty() {
                    let request = Request::ShardInsert {
                        id,
                        terms: fp.ordered().to_vec(),
                    };
                    if let Err(refusal) = broadcast(shared, pool, &request) {
                        return refusal;
                    }
                } else if indexed.contains(&id) {
                    // Replace-on-reinsert with an unindexable shape:
                    // scrub the previous shape from the shards.
                    if let Err(refusal) = broadcast(shared, pool, &Request::Remove { id }) {
                        return refusal;
                    }
                }
                indexed.insert(id);
                Response::Inserted {
                    len: indexed.len() as u64,
                }
            }
            Err(_) => poisoned(),
        },
        Request::Remove { id } => match shared.indexed.write() {
            Ok(mut indexed) => {
                if !indexed.contains(&id) {
                    return Response::Removed { was_present: false };
                }
                if let Err(refusal) = broadcast(shared, pool, &Request::Remove { id }) {
                    return refusal;
                }
                indexed.remove(&id);
                Response::Removed { was_present: true }
            }
            Err(_) => poisoned(),
        },
        Request::Metrics => Response::Metrics(shared.metrics.report()),
        Request::ShardQuery { .. } | Request::ShardInsert { .. } => Response::Error(
            "the frontend does not answer shard frames; address them to a shard server".to_string(),
        ),
    }
}

/// The indexed-set lock only poisons if a broadcast panicked midway —
/// refuse rather than answer from unknown state. (The frontend holds no
/// index of its own, so unlike the single-process server there is no
/// state worth shutting down to protect.)
fn poisoned() -> Response {
    Response::Error("frontend state is poisoned".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_core::GeodabConfig;

    #[test]
    fn config_builder_validates_and_defaults() {
        let config = FrontendConfig::default();
        assert_eq!(config.mux_workers(), default_threads());
        assert_eq!(config.retries(), 1);
        assert_eq!(config.shard_timeout(), Some(Duration::from_secs(5)));

        let built = FrontendConfig::builder()
            .mux_workers(3)
            .retries(2)
            .shard_timeout(None)
            .build()
            .expect("valid config");
        assert_eq!(built.mux_workers(), 3);
        assert_eq!(built.retries(), 2);
        assert_eq!(built.shard_timeout(), None);

        assert_eq!(
            FrontendConfig::builder().mux_workers(0).build(),
            Err(ServerConfigError::ZeroMuxWorkers)
        );
    }

    #[test]
    #[should_panic(expected = "one shard server address per router node")]
    fn address_count_must_match_node_count() {
        let router = ShardRouter::new(16, 100, 2).unwrap();
        let _ = Frontend::bind(
            "127.0.0.1:0",
            Fingerprinter::new(GeodabConfig::default()),
            router,
            vec!["127.0.0.1:1".to_string()],
            FrontendConfig::default(),
        );
    }

    #[test]
    fn bind_run_shutdown_without_traffic() {
        let router = ShardRouter::new(16, 100, 1).unwrap();
        let frontend = Frontend::bind(
            "127.0.0.1:0",
            Fingerprinter::new(GeodabConfig::default()),
            router,
            vec!["127.0.0.1:1".to_string()],
            FrontendConfig::builder()
                .mux_workers(2)
                .build()
                .expect("valid config"),
        )
        .expect("bind loopback");
        assert_ne!(frontend.local_addr().port(), 0);
        let running = frontend.spawn();
        let served = running.shutdown().expect("clean shutdown");
        assert_eq!(served, 0);
    }
}
