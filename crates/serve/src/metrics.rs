//! The serving stack's instrument panel: one [`ServeMetrics`] per
//! server (or frontend) process, wiring the `geodabs-obs` registry into
//! every layer — mux sweep, request execution, shards, WAL, engine —
//! and assembling the [`MetricsReport`] the `Metrics` frame answers
//! with.
//!
//! Instrumentation cost is governed by the `GEODABS_METRICS`
//! environment variable: `off`/`0`/`false` builds a disabled registry,
//! and every timing site checks [`ServeMetrics::now`] (which then
//! returns `None`) before reading the clock — the counters themselves
//! are relaxed atomics and stay live either way, so the kill switch
//! removes the clock reads that dominate the overhead.

use std::time::Instant;

use geodabs_obs::{Counter, Gauge, Histogram, Registry, SampleValue, SlowLog, SlowQuery};

use crate::proto::{MetricsHistogram, MetricsReport, MetricsSlowQuery, Request};

/// Request kinds, indexed by [`kind_index`]; the label vocabulary of
/// the per-kind request counters and latency histograms.
pub(crate) const KINDS: [&str; 9] = [
    "ping",
    "stats",
    "query",
    "query_batch",
    "insert",
    "remove",
    "shard_query",
    "shard_insert",
    "metrics",
];

/// Maps a request to its slot in [`KINDS`].
pub(crate) fn kind_index(request: &Request) -> usize {
    match request {
        Request::Ping => 0,
        Request::Stats { .. } => 1,
        Request::Query { .. } => 2,
        Request::QueryBatch { .. } => 3,
        Request::Insert { .. } => 4,
        Request::Remove { .. } => 5,
        Request::ShardQuery { .. } => 6,
        Request::ShardInsert { .. } => 7,
        Request::Metrics => 8,
    }
}

/// Slow-query log capacity: enough to hold the interesting tail
/// without unbounded memory.
const SLOW_LOG_CAPACITY: usize = 64;

/// Default slow-query admission threshold, microseconds. Override with
/// `GEODABS_SLOW_US`.
const SLOW_THRESHOLD_US: u64 = 1_000;

/// Every instrument the serving stack records into, pre-registered so
/// the hot path never takes the registry mutex.
pub(crate) struct ServeMetrics {
    registry: Registry,
    /// Per-kind request counters, indexed by [`kind_index`].
    pub requests: [Counter; KINDS.len()],
    /// Per-kind end-to-end service latency (µs), indexed by
    /// [`kind_index`].
    pub latency_us: [Histogram; KINDS.len()],
    /// Open multiplexed connections.
    pub connections: Gauge,
    /// Mux workers currently executing a request handler.
    pub workers_busy: Gauge,
    /// Frames decoded but not yet fully written back.
    pub frames_in_flight: Gauge,
    /// Request frame decode time, µs.
    pub decode_us: Histogram,
    /// Response frame encode time, µs.
    pub encode_us: Histogram,
    /// Lock / snapshot acquisition time before the engine runs, µs.
    pub stage_lock_us: Histogram,
    /// Engine scan time, µs.
    pub stage_engine_us: Histogram,
    /// Partial-ranking merge time (sharded and scatter paths), µs.
    pub stage_merge_us: Histogram,
    /// WAL append (including policy fsync) time, µs.
    pub wal_append_us: Histogram,
    /// Sequence number of the last record known durable.
    pub wal_last_durable_seq: Gauge,
    /// Acknowledged-but-not-yet-durable records (durability lag).
    pub wal_durable_lag: Gauge,
    /// Bytes of complete records across the log's segments.
    pub wal_bytes: Gauge,
    /// Completed compactions.
    pub compactions: Counter,
    /// Compaction duration, µs.
    pub compaction_us: Histogram,
    /// WAL bytes folded into snapshots by compaction.
    pub compaction_bytes_folded: Counter,
    /// CoW publish latency: one cell's swap, replay included, µs.
    pub shard_publish_us: Histogram,
    /// Missed ops replayed onto a spare copy per publish.
    pub shard_replay_depth: Histogram,
    /// Cells contacted per sharded query.
    pub shard_fanout_cells: Histogram,
    /// One shard server's scatter exchange time, µs.
    pub scatter_shard_us: Histogram,
    /// Remote shard servers contacted per scattered query.
    pub scatter_fanout: Histogram,
    /// Engine scans run (process-wide).
    pub engine_searches: Counter,
    /// Engine candidates scanned (distinct ids touched).
    pub engine_candidates_scanned: Counter,
    /// Engine candidates admitted into the final ranking.
    pub engine_candidates_admitted: Counter,
    /// Engine pruning-cutoff activations (new candidates refused).
    pub engine_prune_cutoffs: Counter,
    /// The slow-query ring buffer.
    pub slow: SlowLog,
}

impl ServeMetrics {
    /// Builds the full instrument panel on a fresh registry.
    /// `enabled == false` keeps the handles but marks the registry
    /// disabled, so timing sites skip their clock reads.
    pub fn new(enabled: bool, slow_threshold_us: u64) -> ServeMetrics {
        let registry = if enabled {
            Registry::new()
        } else {
            Registry::disabled()
        };
        let requests = std::array::from_fn(|i| {
            registry.counter(
                &format!("geodabs_requests_total{{kind=\"{}\"}}", KINDS[i]),
                "requests served by frame type",
            )
        });
        let latency_us = std::array::from_fn(|i| {
            registry.histogram(
                &format!("geodabs_request_latency_us{{kind=\"{}\"}}", KINDS[i]),
                "end-to-end request service time by frame type",
            )
        });
        ServeMetrics {
            requests,
            latency_us,
            connections: registry.gauge("geodabs_connections", "open multiplexed connections"),
            workers_busy: registry.gauge(
                "geodabs_mux_workers_busy",
                "mux workers currently executing a request",
            ),
            frames_in_flight: registry.gauge(
                "geodabs_mux_frames_in_flight",
                "frames decoded but not yet answered",
            ),
            decode_us: registry.histogram("geodabs_decode_us", "request frame decode time"),
            encode_us: registry.histogram("geodabs_encode_us", "response frame encode time"),
            stage_lock_us: registry.histogram(
                "geodabs_stage_lock_us",
                "lock or snapshot acquisition time before the engine runs",
            ),
            stage_engine_us: registry.histogram("geodabs_stage_engine_us", "engine scan time"),
            stage_merge_us: registry
                .histogram("geodabs_stage_merge_us", "partial-ranking merge time"),
            wal_append_us: registry.histogram(
                "geodabs_wal_append_us",
                "wal append time, policy fsync included",
            ),
            wal_last_durable_seq: registry.gauge(
                "geodabs_wal_last_durable_seq",
                "sequence number of the last durable record",
            ),
            wal_durable_lag: registry.gauge(
                "geodabs_wal_durable_lag",
                "appended records not yet known durable",
            ),
            wal_bytes: registry.gauge("geodabs_wal_bytes", "bytes of complete wal records"),
            compactions: registry.counter("geodabs_compactions_total", "completed compactions"),
            compaction_us: registry.histogram("geodabs_compaction_us", "compaction duration"),
            compaction_bytes_folded: registry.counter(
                "geodabs_compaction_bytes_folded_total",
                "wal bytes folded into snapshots",
            ),
            shard_publish_us: registry.histogram(
                "geodabs_shard_publish_us",
                "copy-on-write publish latency per cell",
            ),
            shard_replay_depth: registry.histogram(
                "geodabs_shard_replay_depth",
                "missed ops replayed per publish",
            ),
            shard_fanout_cells: registry.histogram(
                "geodabs_shard_fanout_cells",
                "cells contacted per sharded query",
            ),
            scatter_shard_us: registry.histogram(
                "geodabs_scatter_shard_us",
                "per-shard scatter exchange time",
            ),
            scatter_fanout: registry.histogram(
                "geodabs_scatter_fanout",
                "remote shards contacted per scattered query",
            ),
            engine_searches: registry.counter(
                "geodabs_engine_searches_total",
                "engine scans run in this process",
            ),
            engine_candidates_scanned: registry.counter(
                "geodabs_engine_candidates_scanned_total",
                "distinct candidates touched by engine scans",
            ),
            engine_candidates_admitted: registry.counter(
                "geodabs_engine_candidates_admitted_total",
                "candidates admitted into final rankings",
            ),
            engine_prune_cutoffs: registry.counter(
                "geodabs_engine_prune_cutoffs_total",
                "pruning-cutoff activations refusing new candidates",
            ),
            slow: SlowLog::new(SLOW_LOG_CAPACITY, slow_threshold_us),
            registry,
        }
    }

    /// Builds the panel per the process environment: `GEODABS_METRICS`
    /// = `off`/`0`/`false` disables timing, `GEODABS_SLOW_US` overrides
    /// the slow-query threshold (microseconds).
    pub fn from_env() -> ServeMetrics {
        let enabled = !matches!(
            std::env::var("GEODABS_METRICS").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        );
        let slow_threshold_us = std::env::var("GEODABS_SLOW_US")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(SLOW_THRESHOLD_US);
        ServeMetrics::new(enabled, slow_threshold_us)
    }

    /// Whether timing sites should read the clock.
    pub fn enabled(&self) -> bool {
        self.registry.enabled()
    }

    /// A timing start, or `None` when metrics are disabled — the one
    /// branch the kill switch hinges on.
    pub fn now(&self) -> Option<Instant> {
        if self.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Records the microseconds since `started` into `histogram` (a
    /// no-op when the start was skipped); returns the elapsed µs.
    pub fn record_since(&self, histogram: &Histogram, started: Option<Instant>) -> u64 {
        match started {
            Some(started) => {
                let us = started.elapsed().as_micros() as u64;
                histogram.record(us);
                us
            }
            None => 0,
        }
    }

    /// Raises the engine counters to the process-wide totals the engine
    /// itself tracks (the engine has no registry dependency, so the
    /// serve layer pulls its atomics in at scrape time). Counters are
    /// monotonic, so the sync adds only the delta.
    pub fn sync_engine(&self, searches: u64, scanned: u64, admitted: u64, cutoffs: u64) {
        for (counter, total) in [
            (&self.engine_searches, searches),
            (&self.engine_candidates_scanned, scanned),
            (&self.engine_candidates_admitted, admitted),
            (&self.engine_prune_cutoffs, cutoffs),
        ] {
            let current = counter.get();
            if total > current {
                counter.add(total - current);
            }
        }
    }

    /// Feeds a finished request into the slow-query log.
    pub fn observe_slow(
        &self,
        trace_id: u64,
        kind: &str,
        total_us: u64,
        stages: Vec<(String, u64)>,
    ) {
        self.slow.observe(SlowQuery {
            trace_id,
            kind: kind.to_string(),
            total_us,
            stages,
        });
    }

    /// Assembles the typed wire report plus the text exposition from
    /// the registry's current readings.
    pub fn report(&self) -> MetricsReport {
        let mut report = MetricsReport {
            text: self.registry.expose(),
            ..MetricsReport::default()
        };
        for sample in self.registry.samples() {
            match sample.value {
                SampleValue::Counter(value) => report.counters.push((sample.name, value)),
                SampleValue::Gauge { value, peak } => {
                    report.gauges.push((sample.name, value, peak))
                }
                SampleValue::Histogram(snapshot) => report.histograms.push(MetricsHistogram {
                    name: sample.name,
                    sum: snapshot.sum(),
                    buckets: snapshot.to_sparse(),
                }),
            }
        }
        report.slow_queries = self
            .slow
            .top(SLOW_LOG_CAPACITY)
            .into_iter()
            .map(|q| MetricsSlowQuery {
                trace_id: q.trace_id,
                kind: q.kind,
                total_us: q.total_us,
                stages: q.stages,
            })
            .collect();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_index::SearchOptions;

    #[test]
    fn kinds_cover_every_request_shape() {
        let requests = [
            Request::Ping,
            Request::Stats { durability: false },
            Request::Query {
                query: crate::proto::QueryBody::Fingerprints(vec![1]),
                options: SearchOptions::default(),
            },
            Request::QueryBatch {
                queries: vec![],
                options: SearchOptions::default(),
            },
            Request::Insert {
                id: geodabs_traj::TrajId::new(1),
                trajectory: geodabs_traj::Trajectory::default(),
            },
            Request::Remove {
                id: geodabs_traj::TrajId::new(1),
            },
            Request::ShardQuery {
                terms: vec![],
                options: SearchOptions::default(),
                trace: 0,
            },
            Request::ShardInsert {
                id: geodabs_traj::TrajId::new(1),
                terms: vec![],
            },
            Request::Metrics,
        ];
        let mut seen = std::collections::BTreeSet::new();
        for request in &requests {
            let index = kind_index(request);
            assert!(index < KINDS.len());
            seen.insert(index);
        }
        assert_eq!(seen.len(), KINDS.len(), "one distinct slot per kind");
    }

    #[test]
    fn report_carries_registry_readings_and_slow_queries() {
        let metrics = ServeMetrics::new(true, 100);
        metrics.requests[kind_index(&Request::Ping)].inc();
        metrics.latency_us[0].record(40);
        metrics.connections.set(3);
        metrics.observe_slow(7, "query", 5_000, vec![("engine".into(), 4_000)]);
        metrics.observe_slow(0, "query", 50, vec![]); // under threshold
        let report = metrics.report();
        assert_eq!(
            report.counter("geodabs_requests_total{kind=\"ping\"}"),
            Some(1)
        );
        assert_eq!(report.gauge("geodabs_connections"), Some((3, 3)));
        let histogram = report
            .histogram("geodabs_request_latency_us{kind=\"ping\"}")
            .unwrap();
        assert_eq!(histogram.snapshot().count(), 1);
        assert_eq!(report.slow_queries.len(), 1);
        assert_eq!(report.slow_queries[0].trace_id, 7);
        assert!(report.text.contains("geodabs_requests_total"));
    }

    #[test]
    fn disabled_metrics_skip_clock_reads() {
        let metrics = ServeMetrics::new(false, 100);
        assert!(!metrics.enabled());
        assert!(metrics.now().is_none());
        assert_eq!(metrics.record_since(&metrics.decode_us, None), 0);
        assert!(metrics.decode_us.snapshot().is_empty());
    }
}
