//! Shard-per-core ownership with a lock-free read path.
//!
//! [`ShardedIndex`] partitions one server's corpus into per-core shard
//! cells along the same `ClusterIndex`/`ShardNode` routing boundary the
//! distributed deployment uses, then publishes each cell's read state
//! through a left-right copy-on-write handle:
//!
//! ```text
//!            readers                        the one writer
//!   ┌──────────────────────┐      ┌───────────────────────────────┐
//!   │ front: RwLock<Arc> ──┼──┐   │ writer: Mutex<WriterState>    │
//!   │  (briefly read-lock, │  │   │   backs[i].stale: Arc<Node>   │
//!   │   clone Arc, release)│  │   │   backs[i].missing: Vec<Op>   │
//!   └──────────────────────┘  │   │   indexed: BTreeSet<TrajId>   │
//!                             │   └───────────────────────────────┘
//!      query runs against ────┘       apply missing + new op to the
//!      its private snapshot           spare copy, swap it in, record
//!                                     the op for the demoted copy
//! ```
//!
//! Each cell keeps **two** copies of its [`ShardNode`]. Queries clone
//! the front `Arc` (a pointer copy under a read lock held for
//! nanoseconds) and score against that immutable snapshot — they never
//! wait on ingest. The single writer owns the spare copy: it waits for
//! the last pre-swap reader to drop the spare's `Arc`, replays the ops
//! the spare missed while it was the front, applies the new op, and
//! swaps it in. Ingest therefore never blocks reads, and a read can
//! delay a write only for as long as one in-flight query.
//!
//! Mutations are **broadcast** to every cell (like the frontend's
//! insert broadcast): [`ShardNode::insert_fingerprints`] keeps only the
//! locally routed postings and scrubs any previous shape of the id, so
//! replace-on-reinsert stays exact. Queries fan out to the cells owning
//! the query's terms and the per-cell top-k heaps go through
//! [`merge_heaps`] — the same exact merge the cluster coordinator and
//! the network frontend use — so rankings are bit-identical to the
//! monolithic index by construction.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use geodabs_cluster::{merge_heaps, ClusterIndex, ShardNode, ShardRouter};
use geodabs_core::{Fingerprinter, Fingerprints};
use geodabs_index::store::Persist;
use geodabs_index::{SearchOptions, SearchResult};
use geodabs_obs::Histogram;
use geodabs_traj::{TrajId, Trajectory};

use crate::metrics::ServeMetrics;

/// The sharded layer's instrument handles, cloned off the server's
/// registry and installed before serving starts. `None` (the default,
/// and the state of every `ShardedIndex` built outside a server) keeps
/// the layer silent.
pub(crate) struct ShardTelemetry {
    /// One cell's copy-on-write publish (replay + apply + swap), µs.
    publish_us: Histogram,
    /// Missed ops replayed onto the spare copy per publish.
    replay_depth: Histogram,
    /// Cells contacted per query fan-out.
    fanout_cells: Histogram,
    /// Exact heap merge across the contacted cells, µs.
    merge_us: Histogram,
    /// Gates the clock reads, mirroring the registry's kill switch.
    clock: bool,
}

impl ShardTelemetry {
    pub(crate) fn from_metrics(metrics: &ServeMetrics) -> ShardTelemetry {
        ShardTelemetry {
            publish_us: metrics.shard_publish_us.clone(),
            replay_depth: metrics.shard_replay_depth.clone(),
            fanout_cells: metrics.shard_fanout_cells.clone(),
            merge_us: metrics.stage_merge_us.clone(),
            clock: metrics.enabled(),
        }
    }

    fn now(&self) -> Option<std::time::Instant> {
        if self.clock {
            Some(std::time::Instant::now())
        } else {
            None
        }
    }
}

/// The paper's fine-grained logical shard count, reused for in-process
/// cells: many more logical shards than cells keeps the router's
/// term→cell spread even at any cell count.
const NUM_LOGICAL_SHARDS: u64 = 10_000;

/// The error every write path returns once a mutation panicked
/// mid-broadcast: the cells may disagree, so the server treats this
/// like a poisoned write lock and shuts down rather than keep serving.
pub(crate) const POISONED: &str = "sharded index writer is poisoned";

/// One mutation, broadcast to every cell. The full fingerprint sequence
/// travels with the insert (not the routed slice) because each cell
/// keeps the full replica of every trajectory it references — that is
/// what makes per-cell scoring exact.
#[derive(Clone)]
enum ShardOp {
    Insert { id: TrajId, fp: Fingerprints },
    Remove { id: TrajId },
}

fn apply_op(node: &mut ShardNode, op: ShardOp) {
    match op {
        ShardOp::Insert { id, fp } => node.insert_fingerprints(id, fp),
        ShardOp::Remove { id } => {
            node.remove(id);
        }
    }
}

/// A cell's reader-visible state: queries briefly read-lock, clone the
/// `Arc`, release, and score against their private snapshot.
struct Cell {
    front: RwLock<Arc<ShardNode>>,
}

/// A cell's writer-owned state: the spare copy and the ops it missed
/// while it was the front.
struct BackCell {
    stale: Arc<ShardNode>,
    missing: Vec<ShardOp>,
}

/// Everything the single writer owns, under one mutex: the spare copies
/// and the coordinator's id set (which also records ids whose
/// fingerprint set is empty — indexed, but stored on no cell).
pub(crate) struct WriterState {
    backs: Vec<BackCell>,
    indexed: BTreeSet<TrajId>,
}

/// A per-core sharded index with copy-on-write read publication; see
/// the module docs for the concurrency protocol.
pub struct ShardedIndex {
    fingerprinter: Fingerprinter,
    router: ShardRouter,
    cells: Vec<Cell>,
    writer: Mutex<WriterState>,
    /// Mirror of `indexed.len()`, refreshed after every mutation, so
    /// `Stats` never touches the writer mutex.
    len: AtomicU64,
    /// Installed by the server before serving starts; `None` outside
    /// one.
    telemetry: Option<ShardTelemetry>,
}

impl ShardedIndex {
    /// Partitions a cluster's state into per-core cells, one per node
    /// of the cluster's router.
    pub fn from_cluster(cluster: ClusterIndex) -> ShardedIndex {
        let fingerprinter = Fingerprinter::new(*cluster.config());
        let router = *cluster.router();
        let indexed: BTreeSet<TrajId> = cluster.ids().collect();
        let mut cells = Vec::with_capacity(router.num_nodes());
        let mut backs = Vec::with_capacity(router.num_nodes());
        for node in 0..router.num_nodes() {
            let slice = cluster.shard_node(node).expect("node in range");
            // Both copies start identical with nothing missing.
            backs.push(BackCell {
                stale: Arc::new(slice.clone()),
                missing: Vec::new(),
            });
            cells.push(Cell {
                front: RwLock::new(Arc::new(slice)),
            });
        }
        let len = AtomicU64::new(indexed.len() as u64);
        ShardedIndex {
            fingerprinter,
            router,
            cells,
            writer: Mutex::new(WriterState { backs, indexed }),
            len,
            telemetry: None,
        }
    }

    /// Installs the server's instrument handles (before serving starts,
    /// while the index is still exclusively owned).
    pub(crate) fn set_telemetry(&mut self, telemetry: ShardTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Number of shard cells (the configured per-core parallelism).
    pub fn shards(&self) -> usize {
        self.cells.len()
    }

    /// The logical-shard router spreading terms over the cells.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Indexed trajectories (lock-free).
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    /// Whether no trajectory is indexed (lock-free).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct terms across all cells. Each term routes to exactly one
    /// cell, so the per-cell counts sum without overlap.
    pub fn term_count(&self) -> u64 {
        self.cells
            .iter()
            .map(|cell| snapshot(cell).term_count() as u64)
            .sum()
    }

    /// Ranked query from a raw trajectory; bit-identical to the
    /// monolithic index over the same corpus.
    pub fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        let query_fp = self.fingerprinter.normalize_and_fingerprint(query);
        self.search_fingerprints(&query_fp, options)
    }

    /// Ranked query from pre-computed fingerprints: fan out to the
    /// cells owning the query's terms, score each against its immutable
    /// snapshot, and merge the per-cell heaps exactly.
    pub fn search_fingerprints(
        &self,
        query_fp: &Fingerprints,
        options: &SearchOptions,
    ) -> Vec<SearchResult> {
        let nodes = self.router.nodes_for_terms(query_fp.set().iter());
        if let Some(t) = &self.telemetry {
            t.fanout_cells.record(nodes.len() as u64);
        }
        // The heaps iterator is lazy: scoring runs inside merge_heaps,
        // so the merge timer brackets scatter *and* merge. Collecting
        // first isolates the exact merge cost.
        let heaps: Vec<Vec<SearchResult>> = nodes
            .into_iter()
            .map(|node| snapshot(&self.cells[node]).search_fingerprints(query_fp, options))
            .collect();
        let merge_started = self.telemetry.as_ref().and_then(ShardTelemetry::now);
        let merged = merge_heaps(heaps, options);
        if let (Some(t), Some(started)) = (&self.telemetry, merge_started) {
            t.merge_us.record(started.elapsed().as_micros() as u64);
        }
        merged
    }

    /// Indexes a trajectory (replacing any previous shape of the id);
    /// returns the post-insert trajectory count.
    pub fn insert(&self, id: TrajId, trajectory: &Trajectory) -> u64 {
        self.insert_logged(id, trajectory, || Ok(()))
            .expect("no-op log never fails")
    }

    /// Indexes a trajectory after `log` succeeds. `log` runs inside the
    /// write critical section **before** the op is applied, so a WAL
    /// append observes mutations in exactly apply order and nothing
    /// unlogged ever becomes visible.
    ///
    /// # Errors
    ///
    /// Forwards `log`'s error verbatim; the index is unchanged then.
    pub fn insert_logged(
        &self,
        id: TrajId,
        trajectory: &Trajectory,
        log: impl FnOnce() -> Result<(), String>,
    ) -> Result<u64, String> {
        let fp = self.fingerprinter.normalize_and_fingerprint(trajectory);
        self.write(ShardOp::Insert { id, fp }, log, move |indexed| {
            indexed.insert(id);
            indexed.len() as u64
        })
    }

    /// Indexes pre-computed fingerprints (the client-side-fingerprinting
    /// twin of [`ShardedIndex::insert`]).
    pub fn insert_fingerprints(&self, id: TrajId, fp: Fingerprints) -> u64 {
        self.write(
            ShardOp::Insert { id, fp },
            || Ok(()),
            move |indexed| {
                indexed.insert(id);
                indexed.len() as u64
            },
        )
        .expect("no-op log never fails")
    }

    /// Bulk ingest. Each item takes the writer mutex independently, so
    /// concurrent queries interleave between items instead of waiting
    /// for the whole batch — the no-write-convoy property the stress
    /// suite pins.
    pub fn insert_batch(&self, items: impl IntoIterator<Item = (TrajId, Trajectory)>) {
        for (id, trajectory) in items {
            self.insert(id, &trajectory);
        }
    }

    /// Removes a trajectory; returns whether the id was indexed.
    pub fn remove(&self, id: TrajId) -> bool {
        self.remove_logged(id, || Ok(()))
            .expect("no-op log never fails")
    }

    /// Removes a trajectory after `log` succeeds (see
    /// [`ShardedIndex::insert_logged`] for the ordering contract).
    ///
    /// # Errors
    ///
    /// Forwards `log`'s error verbatim; the index is unchanged then.
    pub fn remove_logged(
        &self,
        id: TrajId,
        log: impl FnOnce() -> Result<(), String>,
    ) -> Result<bool, String> {
        self.write(ShardOp::Remove { id }, log, move |indexed| {
            indexed.remove(&id)
        })
    }

    /// Reassembles the corpus as a **cluster** snapshot (GDAB backend
    /// tag 3), so a sharded server's compaction artifact warm-starts
    /// any boot path that understands cluster snapshots — including a
    /// re-shard to a different cell count.
    ///
    /// # Errors
    ///
    /// The poisoned-writer message if a mutation panicked
    /// mid-broadcast.
    pub fn to_cluster_snapshot(&self) -> Result<Vec<u8>, String> {
        let writer = self.lock_writes()?;
        Ok(self.snapshot_locked(&writer))
    }

    /// Blocks mutations (and, because WAL appends happen inside the
    /// write critical section, WAL appends) until the guard drops. The
    /// compactor holds this across snapshot assembly *and* log
    /// rotation, so the rotated tail contains exactly the ops after the
    /// snapshot. Lock order is writer→wal, the same as the mutation
    /// path.
    ///
    /// # Errors
    ///
    /// The poisoned-writer message if a mutation panicked
    /// mid-broadcast.
    pub(crate) fn lock_writes(&self) -> Result<MutexGuard<'_, WriterState>, String> {
        self.writer.lock().map_err(|_| POISONED.to_string())
    }

    /// Assembles the cluster snapshot while `writer` freezes the fronts.
    pub(crate) fn snapshot_locked(&self, writer: &WriterState) -> Vec<u8> {
        let nodes: Vec<ShardNode> = self
            .cells
            .iter()
            .map(|cell| ShardNode::clone(&snapshot(cell)))
            .collect();
        ClusterIndex::from_shard_nodes(nodes, writer.indexed.clone()).to_snapshot()
    }

    /// The single write path: take the writer mutex, run `log`, update
    /// the coordinator's id set, then broadcast the op to every cell —
    /// replaying each spare copy's missed ops, applying the new one,
    /// and swapping it in under a momentary front write lock.
    fn write<R>(
        &self,
        op: ShardOp,
        log: impl FnOnce() -> Result<(), String>,
        outcome: impl FnOnce(&mut BTreeSet<TrajId>) -> R,
    ) -> Result<R, String> {
        let mut writer = self.lock_writes()?;
        log()?;
        let WriterState { backs, indexed } = &mut *writer;
        let result = outcome(indexed);
        for (cell, back) in self.cells.iter().zip(backs.iter_mut()) {
            let publish_started = self.telemetry.as_ref().and_then(ShardTelemetry::now);
            if let Some(t) = &self.telemetry {
                t.replay_depth.record(back.missing.len() as u64);
            }
            // Wait until the last pre-swap reader drops the spare's
            // Arc; bounded by the duration of one in-flight query.
            let mut spins = 0u32;
            while Arc::get_mut(&mut back.stale).is_none() {
                spins += 1;
                if spins < 1_000 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(std::time::Duration::from_micros(20));
                }
            }
            let node = Arc::get_mut(&mut back.stale).expect("sole owner after spin");
            for missed in back.missing.drain(..) {
                apply_op(node, missed);
            }
            apply_op(node, op.clone());
            {
                let mut front = cell
                    .front
                    .write()
                    .expect("front poisoned: readers never panic holding it");
                std::mem::swap(&mut *front, &mut back.stale);
            }
            // The demoted copy has seen everything but this op.
            back.missing.push(op.clone());
            if let (Some(t), Some(started)) = (&self.telemetry, publish_started) {
                t.publish_us.record(started.elapsed().as_micros() as u64);
            }
        }
        self.len.store(indexed.len() as u64, Ordering::Release);
        Ok(result)
    }
}

impl std::fmt::Debug for ShardedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedIndex")
            .field("shards", &self.cells.len())
            .field("len", &self.len())
            .finish()
    }
}

/// Clones a cell's current front `Arc` under a momentary read lock.
fn snapshot(cell: &Cell) -> Arc<ShardNode> {
    Arc::clone(
        &cell
            .front
            .read()
            .expect("front poisoned: readers never panic holding it"),
    )
}

/// Builds the cluster scaffold [`ShardedIndex::from_cluster`] expects
/// from a monolithic corpus iterator: `shards` cells over the paper's
/// fine-grained logical shard grid.
///
/// # Errors
///
/// Returns the router's configuration error message for `shards == 0`.
pub(crate) fn cluster_scaffold<'a>(
    config: geodabs_core::GeodabConfig,
    shards: usize,
    corpus: impl Iterator<Item = (TrajId, &'a Fingerprints)>,
) -> Result<ClusterIndex, String> {
    let mut cluster =
        ClusterIndex::new(config, NUM_LOGICAL_SHARDS, shards).map_err(|e| e.to_string())?;
    for (id, fp) in corpus {
        cluster.insert_fingerprints(id, fp.clone());
    }
    Ok(cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_core::GeodabConfig;
    use geodabs_geo::Point;
    use geodabs_index::{GeodabIndex, TrajectoryIndex};

    fn eastward(n: usize, offset_m: f64) -> Trajectory {
        let start = Point::new(51.5074, -0.1278).unwrap();
        (0..n)
            .map(|i| start.destination(90.0, offset_m + i as f64 * 90.0))
            .collect()
    }

    fn sharded(shards: usize) -> ShardedIndex {
        let cluster = ClusterIndex::new(GeodabConfig::default(), 1_000, shards).expect("cluster");
        ShardedIndex::from_cluster(cluster)
    }

    #[test]
    fn mutations_and_queries_match_the_monolith() {
        let index = sharded(4);
        let mut mono = GeodabIndex::new(GeodabConfig::default());
        for route in 0..6u32 {
            let path = eastward(40, route as f64 * 400.0);
            assert_eq!(
                index.insert(TrajId::new(route), &path),
                (route + 1) as u64,
                "insert acks the corpus count"
            );
            mono.insert(TrajId::new(route), &path);
        }
        assert_eq!(index.len(), 6);

        // Replace-on-reinsert must scrub the old shape on every cell.
        let replacement = eastward(40, 9_000.0);
        index.insert(TrajId::new(0), &replacement);
        mono.insert(TrajId::new(0), &replacement);
        assert!(index.remove(TrajId::new(3)));
        assert!(mono.remove(TrajId::new(3)));
        assert!(!index.remove(TrajId::new(99)));

        let options = SearchOptions::default().limit(10);
        for probe in 0..6 {
            let query = eastward(40, probe as f64 * 400.0);
            assert_eq!(
                index.search(&query, &options),
                mono.search(&query, &options),
                "probe {probe}"
            );
        }
    }

    #[test]
    fn failed_log_leaves_the_index_unchanged() {
        let index = sharded(2);
        index.insert(TrajId::new(1), &eastward(40, 0.0));
        let err = index
            .insert_logged(TrajId::new(2), &eastward(40, 400.0), || {
                Err("disk full".into())
            })
            .expect_err("log failure propagates");
        assert_eq!(err, "disk full");
        assert_eq!(index.len(), 1, "refused op must not apply");
        let err = index
            .remove_logged(TrajId::new(1), || Err("disk full".into()))
            .expect_err("log failure propagates");
        assert_eq!(err, "disk full");
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn cluster_snapshot_round_trips() {
        let index = sharded(3);
        for route in 0..5u32 {
            index.insert(TrajId::new(route), &eastward(40, route as f64 * 400.0));
        }
        // An id the spare copies have not caught up on yet must still
        // be in the snapshot (fronts are always newest).
        let bytes = index.to_cluster_snapshot().expect("writer not poisoned");
        let restored = ClusterIndex::from_snapshot(&bytes).expect("decode cluster");
        assert_eq!(restored.len(), 5);
        let options = SearchOptions::default().limit(10);
        let query = eastward(40, 400.0);
        assert_eq!(
            restored.search(&query, &options),
            index.search(&query, &options)
        );
    }
}
