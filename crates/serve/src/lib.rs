//! Network serving for the geodabs index family: a binary wire
//! protocol, a concurrent thread-pooled query server, and a
//! load-generation client.
//!
//! The paper's index answers top-k trajectory-similarity queries at
//! interactive latency; this crate turns the in-process engine into an
//! actual service — the ROADMAP's "serving heavy traffic" layer — using
//! nothing but `std::net` and scoped threads:
//!
//! * [`proto`] — length-prefixed, CRC-32-guarded frames carrying typed
//!   requests (`Ping`, `Stats`, `Query`, `QueryBatch`, `Insert`,
//!   `Remove`) and responses; malformed frames surface as typed
//!   [`WireError`]s, never panics.
//! * [`Server`] — hosts any [`ServeBackend`] (the geodab index, the
//!   geohash baseline, or the sharded cluster — typically warm-started
//!   from a `GDAB` v2 snapshot) behind a fixed pool of multiplexing
//!   workers, each sweeping many non-blocking pipelined connections.
//!   With `ServerConfig::builder().shards(n)` the backend is
//!   re-partitioned at bind time into a [`ShardedIndex`] — per-core
//!   shard cells publishing copy-on-write read snapshots, so queries
//!   never block on ingest while rankings stay bit-identical to the
//!   monolith. Shutdown is clean on both an explicit signal and a
//!   poisoned write path. With [`Server::with_durability`], every
//!   mutation is appended to a `geodabs-wal` write-ahead log **before**
//!   it is acknowledged, and a background thread compacts the log into
//!   watermark-stamped snapshots without blocking readers.
//! * [`Frontend`] — the distributed deployment's coordinator: it
//!   fingerprints queries, scatters `ShardQuery` frames to remote
//!   shard servers (each a `Server` hosting a
//!   [`ShardNode`](geodabs_cluster::ShardNode)), and merges the
//!   per-shard heaps exactly; shard loss yields the typed
//!   `Unavailable` response, never silently-partial rankings.
//! * [`Client`] / [`LoadClient`] — the blocking protocol client, and a
//!   closed-loop load generator reporting QPS plus p50/p95/p99 latency
//!   per connection count.
//!
//! Responses are **bit-identical** to in-process calls: hits carry the
//! exact IEEE-754 distance bits the engine produced, which the loopback
//! equivalence tests pin with `==` across concurrent pipelined clients.
//!
//! # Examples
//!
//! ```
//! use geodabs_core::GeodabConfig;
//! use geodabs_geo::Point;
//! use geodabs_index::{GeodabIndex, SearchOptions, TrajectoryIndex};
//! use geodabs_serve::{Client, Server, ServerConfig};
//! use geodabs_traj::{TrajId, Trajectory};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build (or `Persist::load_from` a snapshot of) an index…
//! let start = Point::new(51.5074, -0.1278)?;
//! let path: Trajectory = (0..40).map(|i| start.destination(90.0, i as f64 * 90.0)).collect();
//! let mut index = GeodabIndex::new(GeodabConfig::default());
//! index.insert(TrajId::new(0), &path);
//! let expected = index.search(&path, &SearchOptions::default().limit(3));
//!
//! // …serve it, query it over loopback, and get the same ranking back.
//! let running = Server::bind("127.0.0.1:0", index, ServerConfig::default())?.spawn();
//! let mut client = Client::connect(running.addr())?;
//! let hits = client.query(&path, &SearchOptions::default().limit(3))?;
//! assert_eq!(hits, expected);
//! running.shutdown()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod frontend;
mod metrics;
mod mux;
pub mod proto;
mod server;
mod shards;

pub use client::{percentile, Client, LoadClient, LoadRun};
pub use frontend::{Frontend, FrontendConfig, FrontendConfigBuilder};
pub use proto::{
    DurabilityStats, MetricsHistogram, MetricsReport, MetricsSlowQuery, QueryBody, Request,
    Response, StatsBody, WireError,
};
pub use server::{
    RunningServer, ServeBackend, Server, ServerConfig, ServerConfigBuilder, ServerConfigError,
    ServerHandle, WAL_SNAPSHOT_FILE,
};
pub use shards::ShardedIndex;
