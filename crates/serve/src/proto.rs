//! The binary wire protocol: length-prefixed, CRC-guarded frames
//! carrying typed requests and responses.
//!
//! # Frame layout
//!
//! Every message travels in one frame, all integers little-endian:
//!
//! ```text
//! len      u32   payload byte count (≤ MAX_FRAME_LEN)
//! crc32    u32   IEEE CRC-32 of the payload
//! payload  len bytes
//! ```
//!
//! The length prefix is validated against [`MAX_FRAME_LEN`] **before**
//! any allocation, so a crafted multi-gigabyte length is rejected as
//! [`WireError::FrameTooLarge`] instead of an OOM; the checksum is
//! verified before the payload is decoded, so a flipped bit surfaces as
//! [`WireError::ChecksumMismatch`] instead of a silently wrong answer —
//! the same discipline the `GDAB` snapshot container applies per section
//! (and the payload decoders reuse its bounds-checked [`Cursor`]
//! machinery).
//!
//! # Payload layout
//!
//! The first payload byte is a message tag; the body follows. Requests:
//!
//! ```text
//! 1 Ping
//! 2 Stats       [flags u8]   (0x01 = include durability fields)
//! 3 Query       options, query body
//! 4 QueryBatch  options, count u32, count × query body
//! 5 Insert      id u32, points u32, points × (lat f64, lon f64)
//! 6 Remove      id u32
//! 7 ShardQuery  options, terms u32, terms × geodab u32
//!               [flags u8, trace u64]   (0x01 = trace id follows)
//! 8 ShardInsert id u32, terms u32, terms × geodab u32
//! 9 Metrics
//! ```
//!
//! A query body is `1` (raw trajectory: `points u32, points × (lat f64,
//! lon f64)`, fingerprinted server-side) or `2` (pre-computed
//! fingerprints: `terms u32, terms × geodab u32`, the cluster paper's
//! client-side-fingerprinting mode). Options are `max_distance f64,
//! has_limit u8, limit u64`. Responses:
//!
//! ```text
//! 1 Pong
//! 2 Stats       name u32 + utf8, trajectories u64, terms u64, workers u64
//!               [durable seq u64, wal bytes u64, watermark u64]
//! 3 Hits        count u32, count × (id u32, distance f64)
//! 4 HitsBatch   batches u32, batches × Hits body
//! 5 Inserted    indexed trajectories u64
//! 6 Removed     was_present u8
//! 7 Error       message u32 + utf8
//! 8 ShardTopK   count u32, count × (id u32, distance f64)
//! 9 Unavailable node u32, message u32 + utf8
//! 10 Metrics    counters, gauges, histograms, slow queries, text
//! ```
//!
//! # Distributed frames
//!
//! `ShardQuery`/`ShardTopK` carry the scatter/gather leg of the
//! distributed deployment: the frontend ships the query's **full**
//! ordered fingerprints to each contacted shard server, which answers
//! with its node-local top-k heap (same hit encoding as `Hits`, tagged
//! separately so a frontend can never mistake a shard partial for a
//! final ranking). `ShardInsert` broadcasts a trajectory's full
//! fingerprints for node-local filtering. `Unavailable` is the
//! frontend's **typed degraded response**: a shard could not be
//! reached even after retrying, so the client gets the failing node's
//! id and a reason instead of a silently partial ranking. Servers
//! predating these tags reject them with their typed unknown-tag
//! error, never garbage.
//!
//! # Stats compatibility
//!
//! Both bracketed extensions above are **optional and symmetric**: a
//! legacy `Stats` request is the bare tag byte and always earns the
//! legacy response shape, while a request carrying the durability flag
//! asks a durability-aware server to append the three-field tail.
//! Decoders accept both shapes — an old client never sees the tail it
//! cannot parse, and a new client treats an absent tail (old server,
//! or no write-ahead log configured) as [`StatsBody::durability`] `=
//! None`. The compatibility tests pin both directions against frozen
//! v1-era byte strings.
//!
//! # Telemetry frames
//!
//! `Metrics` (request tag 9 / response tag 10) fetches the server's
//! observability state: every registered counter, gauge (with its
//! high-water mark) and histogram (sparse log-buckets, rebuildable
//! into a `geodabs_obs::HistogramSnapshot`), the slow-query log with
//! per-stage timings and trace ids, and the full Prometheus text
//! exposition. The tags are strictly additive — an old server answers
//! them with its typed unknown-tag error.
//!
//! `ShardQuery` grew an **optional trace tail** the same way `Stats`
//! grew its flag byte: a traceless request (`trace == 0`) encodes
//! byte-identically to the legacy shape, so old shard servers keep
//! answering untraced frontends; a nonzero trace id appends
//! `flags 0x01, trace u64`, which an old server's strict decoder
//! rejects typed — the frontend then falls back to untraced requests
//! for that shard.
//!
//! Distances are IEEE-754 bit patterns, so a hit decodes bit-identical
//! to the [`SearchResult`] the engine produced — the loopback
//! equivalence tests pin responses against direct in-process calls with
//! `==`, not a tolerance.

use geodabs_geo::Point;
use geodabs_index::store::{crc32, Cursor, ReadError};
use geodabs_index::{SearchOptions, SearchResult};
use geodabs_traj::{TrajId, Trajectory};
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

/// The largest payload a frame may carry (64 MiB). Frames claiming more
/// are rejected before any allocation.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Errors reading, writing or decoding wire traffic. Every malformed
/// input maps to a typed variant; nothing on this path panics.
#[derive(Debug)]
pub enum WireError {
    /// A socket read or write failed.
    Io(std::io::Error),
    /// The peer closed the connection between frames (clean EOF).
    Closed,
    /// A frame header claimed more than [`MAX_FRAME_LEN`] bytes.
    FrameTooLarge {
        /// The claimed payload length.
        claimed: u32,
    },
    /// The payload does not match the CRC-32 in the frame header.
    ChecksumMismatch,
    /// The input ended in the middle of a frame or record.
    Truncated,
    /// A payload is structurally invalid.
    Corrupt(&'static str),
    /// A message or body tag outside the protocol.
    UnknownTag {
        /// What was being decoded (`"request"`, `"response"`, …).
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// The server answered with its error response.
    Remote(String),
    /// A frontend answered with its typed degraded response: a shard
    /// server was unreachable, so no (possibly partial) ranking was
    /// returned.
    Unavailable {
        /// The unreachable shard's node id.
        node: u32,
        /// Why the shard could not be reached.
        message: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Closed => write!(f, "connection closed by peer"),
            WireError::FrameTooLarge { claimed } => {
                write!(f, "frame claims {claimed} bytes (max {MAX_FRAME_LEN})")
            }
            WireError::ChecksumMismatch => write!(f, "frame payload fails its checksum"),
            WireError::Truncated => write!(f, "truncated wire data"),
            WireError::Corrupt(what) => write!(f, "corrupt wire data: {what}"),
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::Remote(msg) => write!(f, "server error: {msg}"),
            WireError::Unavailable { node, message } => {
                write!(f, "shard node {node} unavailable: {message}")
            }
        }
    }
}

impl Error for WireError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl From<ReadError> for WireError {
    fn from(e: ReadError) -> WireError {
        match e {
            ReadError::Truncated => WireError::Truncated,
            ReadError::Corrupt(what) => WireError::Corrupt(what),
        }
    }
}

/// Whether an I/O error is a read timeout (the server's idle-poll tick).
pub(crate) fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Writes one frame: header (length + CRC-32) then payload.
///
/// # Errors
///
/// [`WireError::Io`] on socket failures; [`WireError::FrameTooLarge`] if
/// the payload exceeds [`MAX_FRAME_LEN`] (nothing is written then).
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(WireError::FrameTooLarge {
            claimed: payload.len().min(u32::MAX as usize) as u32,
        });
    }
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    writer.write_all(&header)?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

enum FrameState {
    /// Collecting the 8-byte header; `have` bytes arrived so far.
    Header { have: usize },
    /// Collecting the payload; length and expected CRC already parsed.
    Payload { crc: u32, buf: Vec<u8>, have: usize },
}

/// Incremental frame reader over any byte stream.
///
/// Partial reads (short socket reads, read timeouts used as idle polls)
/// leave the reader mid-frame; the next [`FrameReader::read_frame`] call
/// resumes where the last one stopped, so no byte is ever lost to a
/// timeout.
pub struct FrameReader<R> {
    inner: R,
    header: [u8; 8],
    state: FrameState,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader {
            inner,
            header: [0u8; 8],
            state: FrameState::Header { have: 0 },
        }
    }

    /// Borrows the underlying stream, e.g. to write responses back over
    /// the same socket the reader owns.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Reads the next complete frame's payload, verifying its length and
    /// checksum. Returns `Ok(None)` on a clean close (EOF exactly between
    /// frames).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on socket errors — including timeouts, after
    /// which the call can simply be retried; [`WireError::Truncated`] on
    /// EOF mid-frame; [`WireError::FrameTooLarge`] /
    /// [`WireError::ChecksumMismatch`] on malformed frames. Never
    /// panics and never allocates more than the validated length.
    pub fn read_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        loop {
            match &mut self.state {
                FrameState::Header { have } => {
                    let n = self.inner.read(&mut self.header[*have..])?;
                    if n == 0 {
                        return if *have == 0 {
                            Ok(None)
                        } else {
                            Err(WireError::Truncated)
                        };
                    }
                    *have += n;
                    if *have == 8 {
                        let len = u32::from_le_bytes(self.header[..4].try_into().expect("4 bytes"));
                        let crc = u32::from_le_bytes(self.header[4..].try_into().expect("4 bytes"));
                        if len > MAX_FRAME_LEN {
                            // Reset so a caller that survives the error
                            // does not reparse the poisoned header.
                            self.state = FrameState::Header { have: 0 };
                            return Err(WireError::FrameTooLarge { claimed: len });
                        }
                        self.state = FrameState::Payload {
                            crc,
                            buf: vec![0u8; len as usize],
                            have: 0,
                        };
                    }
                }
                FrameState::Payload { crc, buf, have } => {
                    if *have < buf.len() {
                        let n = self.inner.read(&mut buf[*have..])?;
                        if n == 0 {
                            return Err(WireError::Truncated);
                        }
                        *have += n;
                        if *have < buf.len() {
                            continue;
                        }
                    }
                    let expected = *crc;
                    let payload = std::mem::take(buf);
                    self.state = FrameState::Header { have: 0 };
                    if crc32(&payload) != expected {
                        return Err(WireError::ChecksumMismatch);
                    }
                    return Ok(Some(payload));
                }
            }
        }
    }
}

/// A query, in either of the two forms the paper's serving story needs.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryBody {
    /// A raw trajectory; the server normalizes and fingerprints it.
    Trajectory(Trajectory),
    /// Pre-computed geodab fingerprints (ordered sequence) — the
    /// client-side-fingerprinting mode; only the geodab and cluster
    /// backends can score these.
    Fingerprints(Vec<u32>),
}

/// A request message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Index statistics.
    Stats {
        /// Ask a durability-aware server to include the durability
        /// fields. `false` encodes byte-identically to the legacy
        /// request, so old servers keep answering it.
        durability: bool,
    },
    /// One ranked search.
    Query {
        /// The query, raw or pre-fingerprinted.
        query: QueryBody,
        /// Ranking options.
        options: SearchOptions,
    },
    /// Several ranked searches answered in one response, in order.
    QueryBatch {
        /// The queries, answered independently.
        queries: Vec<QueryBody>,
        /// Ranking options shared by the batch.
        options: SearchOptions,
    },
    /// Index a trajectory (replaces any previous contents of the id).
    Insert {
        /// The trajectory id.
        id: TrajId,
        /// The raw trajectory.
        trajectory: Trajectory,
    },
    /// Remove a trajectory.
    Remove {
        /// The trajectory id.
        id: TrajId,
    },
    /// A frontend's per-shard sub-query: the query's **full** ordered
    /// fingerprints, scored node-locally into a top-k heap.
    ShardQuery {
        /// The query's full ordered fingerprint sequence.
        terms: Vec<u32>,
        /// Ranking options (shared by every shard of one query).
        options: SearchOptions,
        /// The frontend's trace id, propagated so a shard's slow-query
        /// log entries correlate with the frontend's. `0` means "no
        /// trace" and encodes byte-identically to the legacy frame.
        trace: u64,
    },
    /// A frontend's insert broadcast: the trajectory's **full** ordered
    /// fingerprints; the shard server keeps its routed slice.
    ShardInsert {
        /// The trajectory id.
        id: TrajId,
        /// The trajectory's full ordered fingerprint sequence.
        terms: Vec<u32>,
    },
    /// Fetch the server's metrics registry, slow-query log and text
    /// exposition.
    Metrics,
}

/// Index statistics as reported over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsBody {
    /// The backend's stable name (`geodab`, `geohash`, `cluster`, …).
    pub backend: String,
    /// Indexed trajectories.
    pub trajectories: u64,
    /// Distinct terms (active shards for the cluster backend).
    pub terms: u64,
    /// Worker threads in the server's connection multiplexer. Each
    /// worker sweeps many connections, so this is a parallelism figure,
    /// not a concurrent-connection cap; load generators use it to
    /// report mux saturation (connections per worker).
    pub workers: u64,
    /// Durability state, when it was requested **and** the server runs
    /// with a write-ahead log. `None` from old servers and WAL-less
    /// ones — absent on the wire, not zeroed.
    pub durability: Option<DurabilityStats>,
}

/// The durability fields of a [`StatsBody`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Sequence number of the last record known durable per the sync
    /// policy — the acknowledged-write horizon a crash cannot erase.
    pub last_durable_seq: u64,
    /// Bytes of complete records across the log's segments.
    pub wal_bytes: u64,
    /// The latest compacted snapshot's watermark (0 before the first
    /// compaction): replay on boot starts after this sequence number.
    pub snapshot_watermark: u64,
}

/// One histogram as the wire carries it: the name, the sum of all
/// recorded values, and the non-empty log-buckets in sparse form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsHistogram {
    /// The registered metric name (labels included).
    pub name: String,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Non-empty buckets as `(bucket index, count)` pairs.
    pub buckets: Vec<(u16, u64)>,
}

impl MetricsHistogram {
    /// Rebuilds the dense snapshot, ready for quantiles and merging.
    pub fn snapshot(&self) -> geodabs_obs::HistogramSnapshot {
        geodabs_obs::HistogramSnapshot::from_sparse(&self.buckets, self.sum)
    }
}

/// One slow-query log entry as the wire carries it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSlowQuery {
    /// The request's trace id (0 if it carried none).
    pub trace_id: u64,
    /// The request kind (frame type name).
    pub kind: String,
    /// End-to-end service time, microseconds.
    pub total_us: u64,
    /// Per-stage timings: `(stage name, microseconds)`.
    pub stages: Vec<(String, u64)>,
}

/// Everything [`Request::Metrics`] fetches: typed instrument readings
/// plus the rendered Prometheus text exposition.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsReport {
    /// Counters as `(name, total)`.
    pub counters: Vec<(String, u64)>,
    /// Gauges as `(name, value, peak)`.
    pub gauges: Vec<(String, u64, u64)>,
    /// Histograms with sparse buckets.
    pub histograms: Vec<MetricsHistogram>,
    /// The slow-query log, slowest first.
    pub slow_queries: Vec<MetricsSlowQuery>,
    /// The Prometheus text exposition of the same registry.
    pub text: String,
}

impl MetricsReport {
    /// Looks up a counter's total by full name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge's `(value, peak)` by full name.
    pub fn gauge(&self, name: &str) -> Option<(u64, u64)> {
        self.gauges
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, v, p)| (*v, *p))
    }

    /// Looks up a histogram by full name.
    pub fn histogram(&self, name: &str) -> Option<&MetricsHistogram> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// A response message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Stats`].
    Stats(StatsBody),
    /// Answer to [`Request::Query`].
    Hits(Vec<SearchResult>),
    /// Answer to [`Request::QueryBatch`], rankings in query order.
    HitsBatch(Vec<Vec<SearchResult>>),
    /// Answer to [`Request::Insert`]: the post-insert trajectory count.
    Inserted {
        /// Indexed trajectories after the insert.
        len: u64,
    },
    /// Answer to [`Request::Remove`].
    Removed {
        /// Whether the id was indexed.
        was_present: bool,
    },
    /// The request failed server-side; the connection stays usable.
    Error(String),
    /// Answer to [`Request::ShardQuery`]: one shard's top-k heap. A
    /// distinct tag from [`Response::Hits`] so a partial can never be
    /// mistaken for a final ranking.
    ShardTopK(Vec<SearchResult>),
    /// A frontend's typed degraded response: the named shard was
    /// unreachable, so the request was refused rather than answered
    /// partially. The connection stays usable.
    Unavailable {
        /// The unreachable shard's node id.
        node: u32,
        /// Why the shard could not be reached.
        message: String,
    },
    /// Answer to [`Request::Metrics`].
    Metrics(MetricsReport),
}

const REQ_PING: u8 = 1;
const REQ_STATS: u8 = 2;
const REQ_QUERY: u8 = 3;
const REQ_QUERY_BATCH: u8 = 4;
const REQ_INSERT: u8 = 5;
const REQ_REMOVE: u8 = 6;
const REQ_SHARD_QUERY: u8 = 7;
const REQ_SHARD_INSERT: u8 = 8;
const REQ_METRICS: u8 = 9;

/// The only `Stats` request flag so far: append the durability tail.
const STATS_FLAG_DURABILITY: u8 = 0x01;

/// The only `ShardQuery` flag so far: a `trace u64` follows.
const SHARD_QUERY_FLAG_TRACE: u8 = 0x01;

const BODY_TRAJECTORY: u8 = 1;
const BODY_FINGERPRINTS: u8 = 2;

const RESP_PONG: u8 = 1;
const RESP_STATS: u8 = 2;
const RESP_HITS: u8 = 3;
const RESP_HITS_BATCH: u8 = 4;
const RESP_INSERTED: u8 = 5;
const RESP_REMOVED: u8 = 6;
const RESP_ERROR: u8 = 7;
const RESP_SHARD_TOPK: u8 = 8;
const RESP_UNAVAILABLE: u8 = 9;
const RESP_METRICS: u8 = 10;

/// Caps a `Vec::with_capacity` taken from untrusted input: never reserve
/// more entries than the remaining payload could possibly hold.
fn claimed_capacity(claimed: usize, remaining: usize, entry_size: usize) -> usize {
    claimed.min(remaining / entry_size.max(1))
}

fn write_options(out: &mut Vec<u8>, options: &SearchOptions) {
    out.extend_from_slice(&options.max_distance.to_bits().to_le_bytes());
    match options.limit {
        Some(limit) => {
            out.push(1);
            out.extend_from_slice(&(limit as u64).to_le_bytes());
        }
        None => {
            out.push(0);
            out.extend_from_slice(&0u64.to_le_bytes());
        }
    }
}

fn read_options(cursor: &mut Cursor<'_>) -> Result<SearchOptions, WireError> {
    let max_distance = cursor.f64()?;
    let has_limit = cursor.u8()?;
    let limit = cursor.u64()?;
    let mut options = SearchOptions::default().max_distance(max_distance);
    match has_limit {
        0 => {}
        1 => {
            let limit = usize::try_from(limit)
                .map_err(|_| WireError::Corrupt("result limit exceeds usize"))?;
            options = options.limit(limit);
        }
        _ => return Err(WireError::Corrupt("limit flag is not 0 or 1")),
    }
    Ok(options)
}

fn write_trajectory(out: &mut Vec<u8>, trajectory: &Trajectory) {
    out.extend_from_slice(&(trajectory.len() as u32).to_le_bytes());
    for p in trajectory.iter() {
        out.extend_from_slice(&p.lat().to_bits().to_le_bytes());
        out.extend_from_slice(&p.lon().to_bits().to_le_bytes());
    }
}

fn read_trajectory(cursor: &mut Cursor<'_>) -> Result<Trajectory, WireError> {
    let count = cursor.u32()? as usize;
    let mut points = Vec::with_capacity(claimed_capacity(count, cursor.remaining(), 16));
    for _ in 0..count {
        let lat = cursor.f64()?;
        let lon = cursor.f64()?;
        points.push(Point::new(lat, lon).map_err(|_| WireError::Corrupt("invalid coordinate"))?);
    }
    Ok(Trajectory::new(points))
}

fn write_terms(out: &mut Vec<u8>, terms: &[u32]) {
    out.extend_from_slice(&(terms.len() as u32).to_le_bytes());
    for &term in terms {
        out.extend_from_slice(&term.to_le_bytes());
    }
}

fn read_terms(cursor: &mut Cursor<'_>) -> Result<Vec<u32>, WireError> {
    let count = cursor.u32()? as usize;
    let mut terms = Vec::with_capacity(claimed_capacity(count, cursor.remaining(), 4));
    for _ in 0..count {
        terms.push(cursor.u32()?);
    }
    Ok(terms)
}

fn write_query_body(out: &mut Vec<u8>, body: &QueryBody) {
    match body {
        QueryBody::Trajectory(trajectory) => {
            out.push(BODY_TRAJECTORY);
            write_trajectory(out, trajectory);
        }
        QueryBody::Fingerprints(terms) => {
            out.push(BODY_FINGERPRINTS);
            write_terms(out, terms);
        }
    }
}

fn read_query_body(cursor: &mut Cursor<'_>) -> Result<QueryBody, WireError> {
    match cursor.u8()? {
        BODY_TRAJECTORY => Ok(QueryBody::Trajectory(read_trajectory(cursor)?)),
        BODY_FINGERPRINTS => Ok(QueryBody::Fingerprints(read_terms(cursor)?)),
        tag => Err(WireError::UnknownTag {
            what: "query body",
            tag,
        }),
    }
}

fn write_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn read_string(cursor: &mut Cursor<'_>) -> Result<String, WireError> {
    let len = cursor.u32()? as usize;
    let bytes = cursor.take(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Corrupt("string is not utf-8"))
}

fn write_hits(out: &mut Vec<u8>, hits: &[SearchResult]) {
    out.extend_from_slice(&(hits.len() as u32).to_le_bytes());
    for hit in hits {
        out.extend_from_slice(&hit.id.raw().to_le_bytes());
        out.extend_from_slice(&hit.distance.to_bits().to_le_bytes());
    }
}

fn read_hits(cursor: &mut Cursor<'_>) -> Result<Vec<SearchResult>, WireError> {
    let count = cursor.u32()? as usize;
    let mut hits = Vec::with_capacity(claimed_capacity(count, cursor.remaining(), 12));
    for _ in 0..count {
        let id = TrajId::new(cursor.u32()?);
        let distance = cursor.f64()?;
        hits.push(SearchResult { id, distance });
    }
    Ok(hits)
}

impl Request {
    /// Serializes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(REQ_PING),
            Request::Stats { durability } => {
                out.push(REQ_STATS);
                // Without the flag the legacy single-byte shape goes
                // out, so old servers keep understanding new clients.
                if *durability {
                    out.push(STATS_FLAG_DURABILITY);
                }
            }
            Request::Query { query, options } => {
                out.push(REQ_QUERY);
                write_options(&mut out, options);
                write_query_body(&mut out, query);
            }
            Request::QueryBatch { queries, options } => {
                out.push(REQ_QUERY_BATCH);
                write_options(&mut out, options);
                out.extend_from_slice(&(queries.len() as u32).to_le_bytes());
                for query in queries {
                    write_query_body(&mut out, query);
                }
            }
            Request::Insert { id, trajectory } => {
                out.push(REQ_INSERT);
                out.extend_from_slice(&id.raw().to_le_bytes());
                write_trajectory(&mut out, trajectory);
            }
            Request::Remove { id } => {
                out.push(REQ_REMOVE);
                out.extend_from_slice(&id.raw().to_le_bytes());
            }
            Request::ShardQuery {
                terms,
                options,
                trace,
            } => {
                out.push(REQ_SHARD_QUERY);
                write_options(&mut out, options);
                write_terms(&mut out, terms);
                // An untraced request stays byte-identical to the
                // legacy shape, so old shard servers keep answering it.
                if *trace != 0 {
                    out.push(SHARD_QUERY_FLAG_TRACE);
                    out.extend_from_slice(&trace.to_le_bytes());
                }
            }
            Request::ShardInsert { id, terms } => {
                out.push(REQ_SHARD_INSERT);
                out.extend_from_slice(&id.raw().to_le_bytes());
                write_terms(&mut out, terms);
            }
            Request::Metrics => out.push(REQ_METRICS),
        }
        out
    }

    /// Decodes a frame payload into a request.
    ///
    /// # Errors
    ///
    /// A typed [`WireError`] on any malformed payload; never panics on
    /// arbitrary bytes.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut cursor = Cursor::new(payload);
        let request = match cursor.u8()? {
            REQ_PING => Request::Ping,
            REQ_STATS => {
                // Legacy clients send the bare tag; flag-aware ones
                // append one flags byte.
                let durability = match cursor.remaining() {
                    0 => false,
                    _ => match cursor.u8()? {
                        STATS_FLAG_DURABILITY => true,
                        0 => false,
                        _ => return Err(WireError::Corrupt("unknown stats flags")),
                    },
                };
                Request::Stats { durability }
            }
            REQ_QUERY => {
                let options = read_options(&mut cursor)?;
                let query = read_query_body(&mut cursor)?;
                Request::Query { query, options }
            }
            REQ_QUERY_BATCH => {
                let options = read_options(&mut cursor)?;
                let count = cursor.u32()? as usize;
                let mut queries =
                    Vec::with_capacity(claimed_capacity(count, cursor.remaining(), 5));
                for _ in 0..count {
                    queries.push(read_query_body(&mut cursor)?);
                }
                Request::QueryBatch { queries, options }
            }
            REQ_INSERT => {
                let id = TrajId::new(cursor.u32()?);
                let trajectory = read_trajectory(&mut cursor)?;
                Request::Insert { id, trajectory }
            }
            REQ_REMOVE => Request::Remove {
                id: TrajId::new(cursor.u32()?),
            },
            REQ_SHARD_QUERY => {
                let options = read_options(&mut cursor)?;
                let terms = read_terms(&mut cursor)?;
                // Legacy frontends end here; trace-aware ones append a
                // flags byte and the trace id.
                let trace = match cursor.remaining() {
                    0 => 0,
                    _ => match cursor.u8()? {
                        SHARD_QUERY_FLAG_TRACE => cursor.u64()?,
                        _ => return Err(WireError::Corrupt("unknown shard query flags")),
                    },
                };
                Request::ShardQuery {
                    terms,
                    options,
                    trace,
                }
            }
            REQ_SHARD_INSERT => {
                let id = TrajId::new(cursor.u32()?);
                let terms = read_terms(&mut cursor)?;
                Request::ShardInsert { id, terms }
            }
            REQ_METRICS => Request::Metrics,
            tag => {
                return Err(WireError::UnknownTag {
                    what: "request",
                    tag,
                })
            }
        };
        cursor.expect_end()?;
        Ok(request)
    }
}

impl Response {
    /// Serializes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong => out.push(RESP_PONG),
            Response::Stats(stats) => {
                out.push(RESP_STATS);
                write_string(&mut out, &stats.backend);
                out.extend_from_slice(&stats.trajectories.to_le_bytes());
                out.extend_from_slice(&stats.terms.to_le_bytes());
                out.extend_from_slice(&stats.workers.to_le_bytes());
                // The tail only goes out when the client asked for it,
                // so legacy strict decoders never see trailing bytes.
                if let Some(d) = &stats.durability {
                    out.extend_from_slice(&d.last_durable_seq.to_le_bytes());
                    out.extend_from_slice(&d.wal_bytes.to_le_bytes());
                    out.extend_from_slice(&d.snapshot_watermark.to_le_bytes());
                }
            }
            Response::Hits(hits) => {
                out.push(RESP_HITS);
                write_hits(&mut out, hits);
            }
            Response::HitsBatch(batches) => {
                out.push(RESP_HITS_BATCH);
                out.extend_from_slice(&(batches.len() as u32).to_le_bytes());
                for hits in batches {
                    write_hits(&mut out, hits);
                }
            }
            Response::Inserted { len } => {
                out.push(RESP_INSERTED);
                out.extend_from_slice(&len.to_le_bytes());
            }
            Response::Removed { was_present } => {
                out.push(RESP_REMOVED);
                out.push(u8::from(*was_present));
            }
            Response::Error(message) => {
                out.push(RESP_ERROR);
                write_string(&mut out, message);
            }
            Response::ShardTopK(hits) => {
                out.push(RESP_SHARD_TOPK);
                write_hits(&mut out, hits);
            }
            Response::Unavailable { node, message } => {
                out.push(RESP_UNAVAILABLE);
                out.extend_from_slice(&node.to_le_bytes());
                write_string(&mut out, message);
            }
            Response::Metrics(report) => {
                out.push(RESP_METRICS);
                out.extend_from_slice(&(report.counters.len() as u32).to_le_bytes());
                for (name, value) in &report.counters {
                    write_string(&mut out, name);
                    out.extend_from_slice(&value.to_le_bytes());
                }
                out.extend_from_slice(&(report.gauges.len() as u32).to_le_bytes());
                for (name, value, peak) in &report.gauges {
                    write_string(&mut out, name);
                    out.extend_from_slice(&value.to_le_bytes());
                    out.extend_from_slice(&peak.to_le_bytes());
                }
                out.extend_from_slice(&(report.histograms.len() as u32).to_le_bytes());
                for histogram in &report.histograms {
                    write_string(&mut out, &histogram.name);
                    out.extend_from_slice(&histogram.sum.to_le_bytes());
                    out.extend_from_slice(&(histogram.buckets.len() as u32).to_le_bytes());
                    for (index, count) in &histogram.buckets {
                        out.extend_from_slice(&index.to_le_bytes());
                        out.extend_from_slice(&count.to_le_bytes());
                    }
                }
                out.extend_from_slice(&(report.slow_queries.len() as u32).to_le_bytes());
                for slow in &report.slow_queries {
                    out.extend_from_slice(&slow.trace_id.to_le_bytes());
                    write_string(&mut out, &slow.kind);
                    out.extend_from_slice(&slow.total_us.to_le_bytes());
                    out.extend_from_slice(&(slow.stages.len() as u32).to_le_bytes());
                    for (stage, us) in &slow.stages {
                        write_string(&mut out, stage);
                        out.extend_from_slice(&us.to_le_bytes());
                    }
                }
                write_string(&mut out, &report.text);
            }
        }
        out
    }

    /// Decodes a frame payload into a response.
    ///
    /// # Errors
    ///
    /// A typed [`WireError`] on any malformed payload; never panics on
    /// arbitrary bytes.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut cursor = Cursor::new(payload);
        let response = match cursor.u8()? {
            RESP_PONG => Response::Pong,
            RESP_STATS => {
                let backend = read_string(&mut cursor)?;
                let trajectories = cursor.u64()?;
                let terms = cursor.u64()?;
                let workers = cursor.u64()?;
                // An old server's response ends here; a durability tail
                // is exactly three more words.
                let durability = match cursor.remaining() {
                    0 => None,
                    _ => Some(DurabilityStats {
                        last_durable_seq: cursor.u64()?,
                        wal_bytes: cursor.u64()?,
                        snapshot_watermark: cursor.u64()?,
                    }),
                };
                Response::Stats(StatsBody {
                    backend,
                    trajectories,
                    terms,
                    workers,
                    durability,
                })
            }
            RESP_HITS => Response::Hits(read_hits(&mut cursor)?),
            RESP_HITS_BATCH => {
                let count = cursor.u32()? as usize;
                let mut batches =
                    Vec::with_capacity(claimed_capacity(count, cursor.remaining(), 4));
                for _ in 0..count {
                    batches.push(read_hits(&mut cursor)?);
                }
                Response::HitsBatch(batches)
            }
            RESP_INSERTED => Response::Inserted { len: cursor.u64()? },
            RESP_REMOVED => Response::Removed {
                was_present: match cursor.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Corrupt("presence flag is not 0 or 1")),
                },
            },
            RESP_ERROR => Response::Error(read_string(&mut cursor)?),
            RESP_SHARD_TOPK => Response::ShardTopK(read_hits(&mut cursor)?),
            RESP_UNAVAILABLE => {
                let node = cursor.u32()?;
                let message = read_string(&mut cursor)?;
                Response::Unavailable { node, message }
            }
            RESP_METRICS => {
                let count = cursor.u32()? as usize;
                let mut counters =
                    Vec::with_capacity(claimed_capacity(count, cursor.remaining(), 12));
                for _ in 0..count {
                    let name = read_string(&mut cursor)?;
                    let value = cursor.u64()?;
                    counters.push((name, value));
                }
                let count = cursor.u32()? as usize;
                let mut gauges =
                    Vec::with_capacity(claimed_capacity(count, cursor.remaining(), 20));
                for _ in 0..count {
                    let name = read_string(&mut cursor)?;
                    let value = cursor.u64()?;
                    let peak = cursor.u64()?;
                    gauges.push((name, value, peak));
                }
                let count = cursor.u32()? as usize;
                let mut histograms =
                    Vec::with_capacity(claimed_capacity(count, cursor.remaining(), 16));
                for _ in 0..count {
                    let name = read_string(&mut cursor)?;
                    let sum = cursor.u64()?;
                    let bucket_count = cursor.u32()? as usize;
                    let mut buckets =
                        Vec::with_capacity(claimed_capacity(bucket_count, cursor.remaining(), 10));
                    for _ in 0..bucket_count {
                        let index = cursor.u16()?;
                        let bucket = cursor.u64()?;
                        buckets.push((index, bucket));
                    }
                    histograms.push(MetricsHistogram { name, sum, buckets });
                }
                let count = cursor.u32()? as usize;
                let mut slow_queries =
                    Vec::with_capacity(claimed_capacity(count, cursor.remaining(), 24));
                for _ in 0..count {
                    let trace_id = cursor.u64()?;
                    let kind = read_string(&mut cursor)?;
                    let total_us = cursor.u64()?;
                    let stage_count = cursor.u32()? as usize;
                    let mut stages =
                        Vec::with_capacity(claimed_capacity(stage_count, cursor.remaining(), 12));
                    for _ in 0..stage_count {
                        let stage = read_string(&mut cursor)?;
                        let us = cursor.u64()?;
                        stages.push((stage, us));
                    }
                    slow_queries.push(MetricsSlowQuery {
                        trace_id,
                        kind,
                        total_us,
                        stages,
                    });
                }
                let text = read_string(&mut cursor)?;
                Response::Metrics(MetricsReport {
                    counters,
                    gauges,
                    histograms,
                    slow_queries,
                    text,
                })
            }
            tag => {
                return Err(WireError::UnknownTag {
                    what: "response",
                    tag,
                })
            }
        };
        cursor.expect_end()?;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trajectory() -> Trajectory {
        let start = Point::new(51.5074, -0.1278).unwrap();
        (0..5)
            .map(|i| start.destination(90.0, i as f64 * 90.0))
            .collect()
    }

    fn roundtrip_request(request: Request) {
        let decoded = Request::decode(&request.encode()).expect("roundtrip");
        assert_eq!(decoded, request);
    }

    fn roundtrip_response(response: Response) {
        let decoded = Response::decode(&response.encode()).expect("roundtrip");
        assert_eq!(decoded, response);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Stats { durability: false });
        roundtrip_request(Request::Stats { durability: true });
        roundtrip_request(Request::Query {
            query: QueryBody::Trajectory(sample_trajectory()),
            options: SearchOptions::default().max_distance(0.75).limit(10),
        });
        roundtrip_request(Request::Query {
            query: QueryBody::Fingerprints(vec![1, 2, 3, u32::MAX]),
            options: SearchOptions::default(),
        });
        roundtrip_request(Request::QueryBatch {
            queries: vec![
                QueryBody::Trajectory(sample_trajectory()),
                QueryBody::Fingerprints(vec![7]),
                QueryBody::Trajectory(Trajectory::default()),
            ],
            options: SearchOptions::default().limit(0),
        });
        roundtrip_request(Request::Insert {
            id: TrajId::new(42),
            trajectory: sample_trajectory(),
        });
        roundtrip_request(Request::Remove {
            id: TrajId::new(u32::MAX),
        });
        roundtrip_request(Request::ShardQuery {
            terms: vec![1, 1, 2, u32::MAX],
            options: SearchOptions::default().max_distance(0.5).limit(7),
            trace: 0,
        });
        roundtrip_request(Request::ShardQuery {
            terms: vec![],
            options: SearchOptions::default(),
            trace: 0,
        });
        roundtrip_request(Request::ShardQuery {
            terms: vec![9, 9, 9],
            options: SearchOptions::default().limit(3),
            trace: 0xDEAD_BEEF_CAFE_F00D,
        });
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::ShardInsert {
            id: TrajId::new(9),
            terms: vec![3, 3, 3, 8],
        });
        roundtrip_request(Request::ShardInsert {
            id: TrajId::new(0),
            terms: vec![],
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Stats(StatsBody {
            backend: "geodab".into(),
            trajectories: 12,
            terms: 3400,
            workers: 8,
            durability: None,
        }));
        roundtrip_response(Response::Stats(StatsBody {
            backend: "cluster".into(),
            trajectories: 12,
            terms: 3400,
            workers: 8,
            durability: Some(DurabilityStats {
                last_durable_seq: 77,
                wal_bytes: 4096,
                snapshot_watermark: 50,
            }),
        }));
        roundtrip_response(Response::Hits(vec![
            SearchResult {
                id: TrajId::new(3),
                distance: 0.0,
            },
            SearchResult {
                id: TrajId::new(9),
                distance: 0.1234567890123,
            },
        ]));
        roundtrip_response(Response::HitsBatch(vec![
            vec![],
            vec![SearchResult {
                id: TrajId::new(1),
                distance: 1.0,
            }],
        ]));
        roundtrip_response(Response::Inserted { len: 41 });
        roundtrip_response(Response::Removed { was_present: true });
        roundtrip_response(Response::Removed { was_present: false });
        roundtrip_response(Response::Error("boom".into()));
        roundtrip_response(Response::ShardTopK(vec![SearchResult {
            id: TrajId::new(4),
            distance: 0.25,
        }]));
        roundtrip_response(Response::ShardTopK(vec![]));
        roundtrip_response(Response::Unavailable {
            node: 3,
            message: "connection refused".into(),
        });
    }

    /// The shard frames are strictly additive: their tag bytes were
    /// rejected by the pre-distributed protocol and every older tag
    /// still encodes to the same byte. A PR 5-era server answers a
    /// distributed frontend with its typed unknown-tag error, never
    /// garbage.
    #[test]
    fn shard_frames_are_additive() {
        assert_eq!(REQ_SHARD_QUERY, 7);
        assert_eq!(REQ_SHARD_INSERT, 8);
        assert_eq!(RESP_SHARD_TOPK, 8);
        assert_eq!(RESP_UNAVAILABLE, 9);
        let shard_query = Request::ShardQuery {
            terms: vec![1],
            options: SearchOptions::default(),
            trace: 0,
        }
        .encode();
        assert_eq!(shard_query[0], REQ_SHARD_QUERY);
        // A shard partial and a final ranking never share a tag.
        assert_ne!(
            Response::ShardTopK(vec![]).encode()[0],
            Response::Hits(vec![]).encode()[0]
        );
    }

    /// The exact bytes the pre-durability protocol used for `Stats`, as
    /// a frozen reference for both compatibility directions.
    fn frozen_old_stats_request() -> Vec<u8> {
        vec![REQ_STATS]
    }

    fn frozen_old_stats_response(
        backend: &str,
        trajectories: u64,
        terms: u64,
        workers: u64,
    ) -> Vec<u8> {
        let mut out = vec![RESP_STATS];
        out.extend_from_slice(&(backend.len() as u32).to_le_bytes());
        out.extend_from_slice(backend.as_bytes());
        out.extend_from_slice(&trajectories.to_le_bytes());
        out.extend_from_slice(&terms.to_le_bytes());
        out.extend_from_slice(&workers.to_le_bytes());
        out
    }

    /// Old client, new server: the legacy request still decodes, and
    /// the response it earns is byte-identical to what the old strict
    /// decoder (which rejects trailing bytes) expects.
    #[test]
    fn stats_compat_old_client_against_new_server() {
        let decoded = Request::decode(&frozen_old_stats_request()).unwrap();
        assert_eq!(decoded, Request::Stats { durability: false });
        // A legacy-shaped answer (durability absent on the wire)…
        let response = Response::Stats(StatsBody {
            backend: "geodab".into(),
            trajectories: 5,
            terms: 90,
            workers: 4,
            durability: None,
        });
        // …is bit-for-bit the old encoding: nothing an old client's
        // trailing-bytes check could trip over.
        assert_eq!(
            response.encode(),
            frozen_old_stats_response("geodab", 5, 90, 4)
        );
    }

    /// New client, old server: the flagless request is byte-identical
    /// to the old one, and the old response shape decodes with
    /// `durability: None` rather than erroring on the missing tail.
    #[test]
    fn stats_compat_new_client_against_old_server() {
        assert_eq!(
            Request::Stats { durability: false }.encode(),
            frozen_old_stats_request()
        );
        let decoded = Response::decode(&frozen_old_stats_response("cluster", 7, 3, 2)).unwrap();
        assert_eq!(
            decoded,
            Response::Stats(StatsBody {
                backend: "cluster".into(),
                trajectories: 7,
                terms: 3,
                workers: 2,
                durability: None,
            })
        );
    }

    #[test]
    fn stats_malformed_extensions_are_rejected() {
        // Unknown request flag bits are an error, not silently zero.
        assert!(matches!(
            Request::decode(&[REQ_STATS, 0x80]),
            Err(WireError::Corrupt("unknown stats flags"))
        ));
        // A partial durability tail is truncation, not a short read.
        let mut partial = frozen_old_stats_response("geodab", 1, 2, 3);
        partial.extend_from_slice(&9u64.to_le_bytes());
        assert!(matches!(
            Response::decode(&partial),
            Err(WireError::Truncated)
        ));
        // And a tail with trailing garbage still fails the end check.
        let mut overlong = frozen_old_stats_response("geodab", 1, 2, 3);
        for word in [9u64, 10, 11] {
            overlong.extend_from_slice(&word.to_le_bytes());
        }
        overlong.push(0);
        assert!(matches!(
            Response::decode(&overlong),
            Err(WireError::Corrupt(_))
        ));
    }

    /// The exact bytes the pre-telemetry protocol used for a
    /// `ShardQuery`, as a frozen reference for both compatibility
    /// directions of the trace extension.
    fn frozen_old_shard_query(terms: &[u32], limit: u64) -> Vec<u8> {
        let mut out = vec![REQ_SHARD_QUERY];
        out.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        out.push(1);
        out.extend_from_slice(&limit.to_le_bytes());
        out.extend_from_slice(&(terms.len() as u32).to_le_bytes());
        for &term in terms {
            out.extend_from_slice(&term.to_le_bytes());
        }
        out
    }

    /// Old shard server, new frontend: an untraced request is
    /// byte-identical to the legacy frame. New server, old frontend:
    /// the legacy frame decodes with `trace == 0`.
    #[test]
    fn shard_query_trace_compat_both_directions() {
        let frozen = frozen_old_shard_query(&[5, 6, 7], 9);
        assert_eq!(
            Request::ShardQuery {
                terms: vec![5, 6, 7],
                options: SearchOptions::default().limit(9),
                trace: 0,
            }
            .encode(),
            frozen
        );
        assert_eq!(
            Request::decode(&frozen).unwrap(),
            Request::ShardQuery {
                terms: vec![5, 6, 7],
                options: SearchOptions::default().limit(9),
                trace: 0,
            }
        );
        // A traced frame is the frozen bytes plus exactly the flagged
        // tail — an old server's strict decoder rejects it typed.
        let traced = Request::ShardQuery {
            terms: vec![5, 6, 7],
            options: SearchOptions::default().limit(9),
            trace: 0xABCD,
        }
        .encode();
        assert_eq!(&traced[..frozen.len()], &frozen[..]);
        assert_eq!(traced.len(), frozen.len() + 9);
        assert_eq!(traced[frozen.len()], SHARD_QUERY_FLAG_TRACE);
    }

    #[test]
    fn shard_query_malformed_trace_tails_are_rejected() {
        // An unknown flag byte is an error, not silently zero.
        let mut bad_flag = frozen_old_shard_query(&[1], 2);
        bad_flag.push(0x80);
        bad_flag.extend_from_slice(&7u64.to_le_bytes());
        assert!(matches!(
            Request::decode(&bad_flag),
            Err(WireError::Corrupt("unknown shard query flags"))
        ));
        // A flag byte with a short trace is truncation.
        let mut short = frozen_old_shard_query(&[1], 2);
        short.push(SHARD_QUERY_FLAG_TRACE);
        short.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(Request::decode(&short), Err(WireError::Truncated)));
        // A full tail with trailing garbage fails the end check.
        let mut overlong = frozen_old_shard_query(&[1], 2);
        overlong.push(SHARD_QUERY_FLAG_TRACE);
        overlong.extend_from_slice(&7u64.to_le_bytes());
        overlong.push(0);
        assert!(matches!(
            Request::decode(&overlong),
            Err(WireError::Corrupt(_))
        ));
    }

    /// The telemetry frames are strictly additive, like the shard
    /// frames before them: their tags were rejected by every older
    /// decoder, and no older frame's encoding changed.
    #[test]
    fn metrics_frames_are_additive() {
        assert_eq!(REQ_METRICS, 9);
        assert_eq!(RESP_METRICS, 10);
        assert_eq!(Request::Metrics.encode(), vec![REQ_METRICS]);
        // An old server's request decoder calls tag 9 unknown.
        assert!(matches!(
            Request::decode(&[REQ_METRICS + 100]),
            Err(WireError::UnknownTag { .. })
        ));
    }

    fn sample_metrics_report() -> MetricsReport {
        MetricsReport {
            counters: vec![
                ("geodabs_requests_total{kind=\"query\"}".into(), 41),
                ("geodabs_wal_appends_total".into(), 7),
            ],
            gauges: vec![("geodabs_connections".into(), 2, 16)],
            histograms: vec![
                MetricsHistogram {
                    name: "geodabs_request_latency_us{kind=\"query\"}".into(),
                    sum: 12345,
                    buckets: vec![(0, 1), (17, 4), (200, 2)],
                },
                MetricsHistogram::default(),
            ],
            slow_queries: vec![MetricsSlowQuery {
                trace_id: 0x1234_5678_9ABC_DEF0,
                kind: "query".into(),
                total_us: 15_000,
                stages: vec![("engine".into(), 14_000), ("merge".into(), 500)],
            }],
            text: "# TYPE geodabs_requests_total counter\n".into(),
        }
    }

    #[test]
    fn metrics_report_roundtrips() {
        let report = sample_metrics_report();
        roundtrip_response(Response::Metrics(report.clone()));
        roundtrip_response(Response::Metrics(MetricsReport::default()));
        // The lookup helpers find entries by full name.
        assert_eq!(
            report.counter("geodabs_requests_total{kind=\"query\"}"),
            Some(41)
        );
        assert_eq!(report.counter("absent"), None);
        assert_eq!(report.gauge("geodabs_connections"), Some((2, 16)));
        let histogram = report
            .histogram("geodabs_request_latency_us{kind=\"query\"}")
            .unwrap();
        assert_eq!(histogram.snapshot().count(), 7);
    }

    #[test]
    fn truncated_metrics_payloads_are_typed_errors() {
        let payload = Response::Metrics(sample_metrics_report()).encode();
        for cut in 0..payload.len() {
            assert!(
                Response::decode(&payload[..cut]).is_err(),
                "metrics response cut at {cut}"
            );
        }
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let payload = Request::Query {
            query: QueryBody::Trajectory(sample_trajectory()),
            options: SearchOptions::default().limit(3),
        }
        .encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        write_frame(&mut wire, &[]).unwrap();
        let mut reader = FrameReader::new(wire.as_slice());
        assert_eq!(reader.read_frame().unwrap(), Some(payload));
        assert_eq!(reader.read_frame().unwrap(), Some(Vec::new()));
        assert_eq!(reader.read_frame().unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        let mut reader = FrameReader::new(wire.as_slice());
        assert!(matches!(
            reader.read_frame(),
            Err(WireError::FrameTooLarge { claimed }) if claimed == MAX_FRAME_LEN + 1
        ));
        // A payload larger than the cap is refused on the write side too.
        struct NullWriter;
        impl Write for NullWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let big = vec![0u8; MAX_FRAME_LEN as usize + 1];
        assert!(matches!(
            write_frame(&mut NullWriter, &big),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn invalid_coordinates_are_rejected() {
        let mut payload = vec![REQ_INSERT];
        payload.extend_from_slice(&7u32.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
        payload.extend_from_slice(&0f64.to_bits().to_le_bytes());
        assert!(matches!(
            Request::decode(&payload),
            Err(WireError::Corrupt("invalid coordinate"))
        ));
    }

    #[test]
    fn trailing_bytes_and_unknown_tags_are_rejected() {
        let mut payload = Request::Ping.encode();
        payload.push(0);
        assert!(matches!(
            Request::decode(&payload),
            Err(WireError::Corrupt(_))
        ));
        assert!(matches!(
            Request::decode(&[200]),
            Err(WireError::UnknownTag {
                what: "request",
                tag: 200
            })
        ));
        assert!(matches!(
            Response::decode(&[200]),
            Err(WireError::UnknownTag {
                what: "response",
                tag: 200
            })
        ));
        assert!(matches!(Request::decode(&[]), Err(WireError::Truncated)));
    }

    #[test]
    fn error_messages_render() {
        for e in [
            WireError::Closed,
            WireError::ChecksumMismatch,
            WireError::Truncated,
            WireError::Corrupt("x"),
            WireError::FrameTooLarge { claimed: 9 },
            WireError::UnknownTag { what: "y", tag: 3 },
            WireError::Remote("z".into()),
            WireError::Unavailable {
                node: 1,
                message: "down".into(),
            },
            WireError::Io(std::io::Error::other("io")),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
