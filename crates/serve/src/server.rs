//! The concurrent query server: a connection multiplexer over shard-
//! per-core index state.
//!
//! # Threading model
//!
//! One acceptor (the thread calling [`Server::run`]) hands accepted
//! connections — switched to non-blocking mode — to a fixed pool of
//! [`ServerConfig::mux_workers`] multiplexing workers, round-robin.
//! Each worker *sweeps* many connections per iteration instead of
//! owning one for its lifetime, so thousands of mostly-idle connections
//! share a pool sized to the cores and clients may still pipeline
//! requests freely (frames on one connection are answered in order).
//!
//! How the index itself is hosted depends on [`ServerConfig::shards`]:
//!
//! * `shards == 1` (the default): the backend lives in one [`RwLock`].
//!   Queries take the shared read lock; `Insert`/`Remove` take the
//!   exclusive lock and briefly stall readers.
//! * `shards > 1`: the backend is re-partitioned into an in-process
//!   [`ShardedIndex`] — per-core shard cells along the cluster routing
//!   boundary, each publishing its read state through a copy-on-write
//!   handle. Queries clone a cell's current `Arc` snapshot and **never
//!   block on ingest**; the single writer broadcasts each mutation to
//!   the cells' spare copies and swaps them in. Rankings stay
//!   bit-identical to the monolithic index because the per-cell top-k
//!   heaps go through the engine's exact merge.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] flips a shared flag and pokes the
//! listener so the accept loop wakes up; workers poll the flag between
//! sweeps and drain. If a request handler panics while holding the
//! **write** lock (or mid-broadcast in the sharded path), the state is
//! poisoned: every subsequent mutation is answered with an error frame
//! and the server initiates the same clean shutdown rather than serving
//! from possibly half-mutated state.

use geodabs_cluster::{ClusterIndex, ShardNode};
use geodabs_core::Fingerprints;
use geodabs_index::batch::default_threads;
use geodabs_index::store::{self, Persist};
use geodabs_index::{GeodabIndex, GeohashIndex, SearchOptions, SearchResult, TrajectoryIndex};
use geodabs_traj::{TrajId, Trajectory};
use geodabs_wal::{Wal, WalOp};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use crate::metrics::{kind_index, ServeMetrics, KINDS};
use crate::mux::{self, RESPONSE_TOO_LARGE};
use crate::proto::{DurabilityStats, QueryBody, Request, Response, StatsBody, MAX_FRAME_LEN};
use crate::shards::{self, cluster_scaffold, ShardTelemetry, ShardedIndex};

/// Upper bound on hits across one response (12 wire bytes per hit, so
/// this is what fits in a frame). Enforced **while the response is
/// being built**, so a small request fanning out to millions of hits is
/// refused with a typed error instead of materializing a response that
/// could never be framed (or OOM-ing the server first).
const MAX_RESPONSE_HITS: usize = MAX_FRAME_LEN as usize / 12;

/// How often the compaction thread wakes to poll its timer and the
/// shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// File name of the compacted snapshot inside a WAL directory: boot
/// loads it (when present) and replays only the log suffix beyond its
/// watermark; the compaction thread atomically replaces it.
pub const WAL_SNAPSHOT_FILE: &str = "snapshot.gdab";

/// The index interface the server hosts: every backend the workspace
/// ships (and any future one) answers the full request vocabulary
/// through it.
pub trait ServeBackend: Send + Sync + 'static {
    /// The backend's stable name, reported by `Stats`.
    fn backend_name(&self) -> &'static str;

    /// Indexed trajectories.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct terms (active shards for the cluster backend).
    fn term_count(&self) -> usize;

    /// Ranked retrieval from a raw trajectory.
    fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult>;

    /// Ranked retrieval from pre-computed geodab fingerprints (ordered
    /// sequence), when the backend's term vocabulary supports it.
    ///
    /// # Errors
    ///
    /// A static message when the backend cannot score fingerprint
    /// queries (the geohash baseline uses `u64` cell terms).
    fn search_fingerprints(
        &self,
        ordered: &[u32],
        options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, &'static str>;

    /// Indexes a trajectory (replace-on-reinsert).
    fn insert(&mut self, id: TrajId, trajectory: &Trajectory);

    /// Removes a trajectory; returns whether the id was indexed.
    fn remove(&mut self, id: TrajId) -> bool;

    /// Serializes the backend into a `GDAB` snapshot, for the
    /// durability compaction path. The default `None` disables
    /// compaction for backends without snapshot support; the
    /// write-ahead log itself still works for them.
    fn to_snapshot_bytes(&self) -> Option<Vec<u8>> {
        None
    }

    /// Consumes the backend and re-partitions its corpus into an
    /// in-process [`ShardedIndex`] with `shards` per-core cells — the
    /// conversion [`Server::bind`] performs when
    /// [`ServerConfig::shards`] exceeds one. The default refuses, for
    /// backends whose term vocabulary the cluster router cannot spread
    /// (the geohash baseline) or whose state is already a single
    /// node's slice.
    ///
    /// # Errors
    ///
    /// A message naming why this backend cannot shard in process.
    fn into_shards(self, shards: usize) -> Result<ShardedIndex, String>
    where
        Self: Sized,
    {
        let _ = shards;
        Err(format!(
            "the {} backend cannot be partitioned into in-process shards",
            self.backend_name()
        ))
    }

    /// Answers a frontend's scatter sub-query: score the node-local
    /// slice against the query's full ordered term sequence and return
    /// this node's exact top-k heap (the frontend merges heaps across
    /// shards). Only shard backends implement it — on anything else the
    /// default refuses, so pointing a frontend at a monolithic server
    /// is a typed error, not silently-partial ranking.
    ///
    /// # Errors
    ///
    /// A static message when the backend is not a shard node.
    fn shard_query(
        &self,
        _ordered: &[u32],
        _options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, &'static str> {
        Err(NOT_A_SHARD_NODE)
    }

    /// Applies a frontend's broadcast insert: keep the routed subset of
    /// the full ordered term sequence (and the fingerprint replica, if
    /// any term landed here). Only shard backends implement it.
    ///
    /// # Errors
    ///
    /// A static message when the backend is not a shard node.
    fn shard_insert(&mut self, _id: TrajId, _ordered: &[u32]) -> Result<(), &'static str> {
        Err(NOT_A_SHARD_NODE)
    }
}

/// The refusal for shard frames sent to a non-shard server.
const NOT_A_SHARD_NODE: &str = "this backend is not a shard node; start the server with --shard-id";

impl ServeBackend for GeodabIndex {
    fn backend_name(&self) -> &'static str {
        "geodab"
    }

    fn len(&self) -> usize {
        TrajectoryIndex::len(self)
    }

    fn term_count(&self) -> usize {
        GeodabIndex::term_count(self)
    }

    fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        TrajectoryIndex::search(self, query, options)
    }

    fn search_fingerprints(
        &self,
        ordered: &[u32],
        options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, &'static str> {
        let fp = Fingerprints::from_ordered(ordered.to_vec());
        Ok(GeodabIndex::search_fingerprints(self, &fp, options))
    }

    fn insert(&mut self, id: TrajId, trajectory: &Trajectory) {
        TrajectoryIndex::insert(self, id, trajectory);
    }

    fn remove(&mut self, id: TrajId) -> bool {
        TrajectoryIndex::remove(self, id)
    }

    fn to_snapshot_bytes(&self) -> Option<Vec<u8>> {
        Some(Persist::to_snapshot(self))
    }

    fn into_shards(self, shards: usize) -> Result<ShardedIndex, String> {
        let cluster = cluster_scaffold(*self.config(), shards, self.iter_fingerprints())?;
        Ok(ShardedIndex::from_cluster(cluster))
    }
}

impl ServeBackend for GeohashIndex {
    fn backend_name(&self) -> &'static str {
        "geohash"
    }

    fn len(&self) -> usize {
        TrajectoryIndex::len(self)
    }

    fn term_count(&self) -> usize {
        GeohashIndex::term_count(self)
    }

    fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        TrajectoryIndex::search(self, query, options)
    }

    fn search_fingerprints(
        &self,
        _ordered: &[u32],
        _options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, &'static str> {
        Err("the geohash backend cannot score geodab fingerprint queries")
    }

    fn insert(&mut self, id: TrajId, trajectory: &Trajectory) {
        TrajectoryIndex::insert(self, id, trajectory);
    }

    fn remove(&mut self, id: TrajId) -> bool {
        TrajectoryIndex::remove(self, id)
    }

    fn to_snapshot_bytes(&self) -> Option<Vec<u8>> {
        Some(Persist::to_snapshot(self))
    }
}

impl ServeBackend for ClusterIndex {
    fn backend_name(&self) -> &'static str {
        "cluster"
    }

    fn len(&self) -> usize {
        ClusterIndex::len(self)
    }

    fn term_count(&self) -> usize {
        self.active_shards()
    }

    fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        ClusterIndex::search(self, query, options)
    }

    fn search_fingerprints(
        &self,
        ordered: &[u32],
        options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, &'static str> {
        let fp = Fingerprints::from_ordered(ordered.to_vec());
        Ok(ClusterIndex::search_fingerprints(self, &fp, options))
    }

    fn insert(&mut self, id: TrajId, trajectory: &Trajectory) {
        ClusterIndex::insert(self, id, trajectory);
    }

    fn remove(&mut self, id: TrajId) -> bool {
        ClusterIndex::remove(self, id)
    }

    fn to_snapshot_bytes(&self) -> Option<Vec<u8>> {
        Some(Persist::to_snapshot(self))
    }

    fn into_shards(mut self, shards: usize) -> Result<ShardedIndex, String> {
        // Keep the logical shard grid, respread it over `shards` cells.
        self.resize(shards).map_err(|e| e.to_string())?;
        Ok(ShardedIndex::from_cluster(self))
    }
}

impl ServeBackend for ShardNode {
    fn backend_name(&self) -> &'static str {
        "node"
    }

    fn len(&self) -> usize {
        ShardNode::len(self)
    }

    fn term_count(&self) -> usize {
        ShardNode::term_count(self)
    }

    fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        ShardNode::search(self, query, options)
    }

    fn search_fingerprints(
        &self,
        ordered: &[u32],
        options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, &'static str> {
        let fp = Fingerprints::from_ordered(ordered.to_vec());
        Ok(ShardNode::search_fingerprints(self, &fp, options))
    }

    fn insert(&mut self, id: TrajId, trajectory: &Trajectory) {
        ShardNode::insert(self, id, trajectory);
    }

    fn remove(&mut self, id: TrajId) -> bool {
        ShardNode::remove(self, id)
    }

    fn to_snapshot_bytes(&self) -> Option<Vec<u8>> {
        Some(Persist::to_snapshot(self))
    }

    fn shard_query(
        &self,
        ordered: &[u32],
        options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, &'static str> {
        let fp = Fingerprints::from_ordered(ordered.to_vec());
        Ok(ShardNode::search_fingerprints(self, &fp, options))
    }

    fn shard_insert(&mut self, id: TrajId, ordered: &[u32]) -> Result<(), &'static str> {
        let fp = Fingerprints::from_ordered(ordered.to_vec());
        ShardNode::insert_fingerprints(self, id, fp);
        Ok(())
    }
}

/// Server tuning knobs; build with [`ServerConfig::builder`].
///
/// ```
/// use geodabs_serve::ServerConfig;
///
/// # fn main() -> Result<(), geodabs_serve::ServerConfigError> {
/// let config = ServerConfig::builder().shards(4).mux_workers(2).build()?;
/// assert_eq!(config.shards(), 4);
/// assert_eq!(config.mux_workers(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    shards: usize,
    mux_workers: usize,
}

impl ServerConfig {
    /// A builder starting from the defaults (one shard, one mux worker
    /// per core).
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder::default()
    }

    /// In-process shard cells hosting the index. `1` keeps the backend
    /// monolithic behind a read-write lock; more re-partitions it into
    /// a [`ShardedIndex`] with a lock-free read path.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Worker threads in the connection multiplexer. Each worker sweeps
    /// many connections, so this sizes parallelism, not the concurrent-
    /// connection capacity.
    pub fn mux_workers(&self) -> usize {
        self.mux_workers
    }
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            shards: 1,
            mux_workers: default_threads(),
        }
    }
}

/// Chainable builder for [`ServerConfig`], mirroring
/// [`geodabs_core::GeodabConfig::builder`]. All validation happens in
/// [`ServerConfigBuilder::build`], so setters combine in any order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfigBuilder {
    shards: usize,
    mux_workers: usize,
}

impl Default for ServerConfigBuilder {
    fn default() -> ServerConfigBuilder {
        let defaults = ServerConfig::default();
        ServerConfigBuilder {
            shards: defaults.shards,
            mux_workers: defaults.mux_workers,
        }
    }
}

impl ServerConfigBuilder {
    /// Sets the in-process shard cell count (see
    /// [`ServerConfig::shards`]).
    pub fn shards(mut self, shards: usize) -> ServerConfigBuilder {
        self.shards = shards;
        self
    }

    /// Sets the multiplexer worker count (see
    /// [`ServerConfig::mux_workers`]).
    pub fn mux_workers(mut self, mux_workers: usize) -> ServerConfigBuilder {
        self.mux_workers = mux_workers;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// [`ServerConfigError`] when either knob is zero.
    pub fn build(self) -> Result<ServerConfig, ServerConfigError> {
        if self.shards == 0 {
            return Err(ServerConfigError::ZeroShards);
        }
        if self.mux_workers == 0 {
            return Err(ServerConfigError::ZeroMuxWorkers);
        }
        Ok(ServerConfig {
            shards: self.shards,
            mux_workers: self.mux_workers,
        })
    }
}

/// Why a serving configuration failed to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerConfigError {
    /// `shards` was zero; the index needs at least one cell.
    ZeroShards,
    /// `mux_workers` was zero; nothing would ever answer a frame.
    ZeroMuxWorkers,
}

impl std::fmt::Display for ServerConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerConfigError::ZeroShards => write!(f, "shards must be at least 1"),
            ServerConfigError::ZeroMuxWorkers => write!(f, "mux_workers must be at least 1"),
        }
    }
}

impl std::error::Error for ServerConfigError {}

/// Durability state for a serving process: the open write-ahead log
/// plus the lock-free counters `Stats` reports from read paths.
struct Durability {
    wal: Mutex<Wal>,
    /// Where compaction lands its snapshot (inside the WAL directory).
    snapshot_path: PathBuf,
    /// How often the compaction thread folds the log; `None` disables
    /// the thread (the log only ever grows until a restart).
    compact_every: Option<Duration>,
    last_durable: AtomicU64,
    wal_bytes: AtomicU64,
    watermark: AtomicU64,
}

impl Durability {
    fn new(wal: Wal, snapshot_watermark: u64, compact_every: Option<Duration>) -> Durability {
        Durability {
            snapshot_path: wal.dir().join(WAL_SNAPSHOT_FILE),
            compact_every,
            last_durable: AtomicU64::new(wal.last_durable_seq()),
            wal_bytes: AtomicU64::new(wal.size_bytes()),
            watermark: AtomicU64::new(snapshot_watermark),
            wal: Mutex::new(wal),
        }
    }

    fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            last_durable_seq: self.last_durable.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            snapshot_watermark: self.watermark.load(Ordering::Relaxed),
        }
    }
}

/// How the server hosts its backend: one copy behind a read-write lock
/// (`shards == 1`), or re-partitioned into per-core shard cells with a
/// copy-on-write read path (`shards > 1`).
enum Hosted<B> {
    Locked(RwLock<B>),
    Sharded(ShardedIndex),
}

struct Shared<B> {
    index: Hosted<B>,
    addr: SocketAddr,
    /// Mux worker count, reported via `Stats` so load generators can
    /// report saturation (connections per worker).
    workers: usize,
    shutdown: Arc<AtomicBool>,
    requests: AtomicU64,
    durability: Option<Durability>,
    metrics: ServeMetrics,
}

impl<B> Shared<B> {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag and wakes the acceptor.
    fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        wake_listener(self.addr);
    }
}

/// Best-effort poke so a blocked `accept()` observes the shutdown flag.
/// A wildcard bind address (`0.0.0.0` / `::`) is not connectable on
/// every platform, so the poke targets loopback at the bound port.
fn wake_listener(addr: SocketAddr) {
    let mut target = addr;
    if target.ip().is_unspecified() {
        target.set_ip(match target {
            SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    let _ = TcpStream::connect_timeout(&target, Duration::from_millis(200));
}

/// Remote control for a bound server **or frontend**: carries the
/// address and the shutdown flag, independent of what serves behind
/// them.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    pub(crate) fn new(addr: SocketAddr, shutdown: Arc<AtomicBool>) -> ServerHandle {
        ServerHandle { addr, shutdown }
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates a clean shutdown: stop accepting, let workers drain.
    /// Idempotent; returns once the flag is set (the accept loop exits on
    /// its next wake-up).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        wake_listener(self.addr);
    }
}

/// A server bound to its socket but not yet serving; call
/// [`Server::run`] (blocking) or [`Server::spawn`] (background thread).
///
/// # Examples
///
/// ```
/// use geodabs_core::GeodabConfig;
/// use geodabs_index::GeodabIndex;
/// use geodabs_serve::{Client, Server, ServerConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let index = GeodabIndex::new(GeodabConfig::default());
/// let server = Server::bind("127.0.0.1:0", index, ServerConfig::default())?;
/// let running = server.spawn();
///
/// let mut client = Client::connect(running.addr())?;
/// client.ping()?;
/// assert_eq!(client.stats()?.backend, "geodab");
///
/// running.shutdown()?;
/// # Ok(())
/// # }
/// ```
pub struct Server<B> {
    listener: TcpListener,
    addr: SocketAddr,
    config: ServerConfig,
    shared: Arc<Shared<B>>,
}

/// A server (or frontend) running on a background thread (see
/// [`Server::spawn`] / [`crate::Frontend::spawn`]).
pub struct RunningServer {
    handle: ServerHandle,
    join: std::thread::JoinHandle<std::io::Result<u64>>,
}

impl RunningServer {
    pub(crate) fn from_parts(
        handle: ServerHandle,
        join: std::thread::JoinHandle<std::io::Result<u64>>,
    ) -> RunningServer {
        RunningServer { handle, join }
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// A cloneable remote-control handle.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Shuts the server down and waits for it to drain; returns the
    /// number of requests served.
    ///
    /// # Errors
    ///
    /// Propagates the serve loop's I/O error, if it died on one.
    ///
    /// # Panics
    ///
    /// Panics if the serve thread itself panicked.
    pub fn shutdown(self) -> std::io::Result<u64> {
        self.handle.shutdown();
        self.join.join().expect("serve thread panicked")
    }
}

impl<B: ServeBackend> Server<B> {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port)
    /// hosting `backend`. With [`ServerConfig::shards`] above one the
    /// backend is re-partitioned here, via
    /// [`ServeBackend::into_shards`], into per-core shard cells with a
    /// lock-free read path.
    ///
    /// # Errors
    ///
    /// Any socket-level failure binding the listener, or
    /// [`std::io::ErrorKind::InvalidInput`] when the backend refuses
    /// the requested shard count.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        backend: B,
        config: ServerConfig,
    ) -> std::io::Result<Server<B>> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics = ServeMetrics::from_env();
        let index = if config.shards() > 1 {
            match backend.into_shards(config.shards()) {
                Ok(mut sharded) => {
                    sharded.set_telemetry(ShardTelemetry::from_metrics(&metrics));
                    Hosted::Sharded(sharded)
                }
                Err(message) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        message,
                    ))
                }
            }
        } else {
            Hosted::Locked(RwLock::new(backend))
        };
        let shared = Arc::new(Shared {
            index,
            addr,
            workers: config.mux_workers().max(1),
            shutdown: Arc::new(AtomicBool::new(false)),
            requests: AtomicU64::new(0),
            durability: None,
            metrics,
        });
        Ok(Server {
            listener,
            addr,
            config,
            shared,
        })
    }

    /// Makes the server durable: every `Insert`/`Remove` is appended to
    /// `wal` (and synced per its policy) **before** it is acknowledged,
    /// and — when `compact_every` is set — a background thread
    /// periodically folds the log into a watermark-stamped snapshot at
    /// [`WAL_SNAPSHOT_FILE`] inside the log directory, pruning the
    /// folded segments.
    ///
    /// The caller has already restored the backend (snapshot load plus
    /// replay of the log suffix beyond `snapshot_watermark`), so the
    /// log and the in-memory state agree when serving starts.
    ///
    /// # Panics
    ///
    /// Must be called between [`Server::bind`] and [`Server::run`] /
    /// [`Server::spawn`]; panics if the server is already shared with
    /// other threads.
    pub fn with_durability(
        mut self,
        wal: Wal,
        snapshot_watermark: u64,
        compact_every: Option<Duration>,
    ) -> Server<B> {
        let shared = Arc::get_mut(&mut self.shared)
            .expect("with_durability must be called before the server starts serving");
        shared.durability = Some(Durability::new(wal, snapshot_watermark, compact_every));
        self
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote-control handle usable from any thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle::new(self.addr, Arc::clone(&self.shared.shutdown))
    }

    /// Serves until [`ServerHandle::shutdown`] is called (this thread is
    /// the acceptor). Returns the number of requests served.
    ///
    /// # Errors
    ///
    /// Fatal listener errors; per-connection errors only drop that
    /// connection.
    pub fn run(self) -> std::io::Result<u64> {
        let workers = self.config.mux_workers().max(1);
        let shared = &self.shared;
        let mut served: std::io::Result<()> = Ok(());
        std::thread::scope(|scope| {
            if let Some(every) = shared.durability.as_ref().and_then(|d| d.compact_every) {
                scope.spawn(move || compaction_loop(shared, every));
            }
            served = mux::serve_connections(
                &self.listener,
                workers,
                &shared.shutdown,
                &shared.requests,
                &shared.metrics,
                || (),
                |_: &mut (), request| execute(shared, request),
            );
            // Release the compaction thread even when the serve loop
            // exited without flipping the flag itself.
            shared.shutdown.store(true, Ordering::SeqCst);
        });
        // Clean shutdown flushes the log regardless of sync policy:
        // every acknowledged write survives a graceful stop even under
        // `never`.
        if let Some(d) = &self.shared.durability {
            if let Ok(mut wal) = d.wal.lock() {
                let _ = wal.sync();
                d.last_durable
                    .store(wal.last_durable_seq(), Ordering::Relaxed);
            }
        }
        served.map(|()| self.shared.requests.load(Ordering::SeqCst))
    }

    /// Moves the server onto a background thread and returns its
    /// controls.
    pub fn spawn(self) -> RunningServer {
        let handle = self.handle();
        let join = std::thread::spawn(move || self.run());
        RunningServer::from_parts(handle, join)
    }
}

fn execute<B: ServeBackend>(shared: &Shared<B>, request: Request) -> Response {
    if matches!(request, Request::Metrics) {
        return metrics_response(shared);
    }
    // Query-shaped requests feed the slow-query log, stamped with the
    // trace id when the frontend minted one (shard scatter frames carry
    // it on the wire; direct queries have none).
    let kind = kind_index(&request);
    let trace = match &request {
        Request::ShardQuery { trace, .. } => *trace,
        _ => 0,
    };
    let is_query = matches!(
        request,
        Request::Query { .. } | Request::QueryBatch { .. } | Request::ShardQuery { .. }
    );
    let started = if is_query { shared.metrics.now() } else { None };
    let mut stages: Vec<(String, u64)> = Vec::new();
    let response = match &shared.index {
        Hosted::Locked(index) => execute_locked(shared, index, request, &mut stages),
        Hosted::Sharded(sharded) => execute_sharded(shared, sharded, request, &mut stages),
    };
    if let Some(started) = started {
        let total_us = started.elapsed().as_micros() as u64;
        shared
            .metrics
            .observe_slow(trace, KINDS[kind], total_us, stages);
    }
    response
}

/// Answers the `Metrics` frame: pull the engine's process-wide scan
/// counters into the registry, then snapshot everything.
fn metrics_response<B>(shared: &Shared<B>) -> Response {
    let telemetry = geodabs_index::engine_telemetry();
    shared.metrics.sync_engine(
        telemetry.searches,
        telemetry.candidates_scanned,
        telemetry.candidates_admitted,
        telemetry.prune_cutoffs,
    );
    Response::Metrics(shared.metrics.report())
}

fn execute_locked<B: ServeBackend>(
    shared: &Shared<B>,
    lock: &RwLock<B>,
    request: Request,
    stages: &mut Vec<(String, u64)>,
) -> Response {
    let metrics = &shared.metrics;
    match request {
        Request::Ping => Response::Pong,
        Request::Metrics => metrics_response(shared),
        Request::Stats { durability } => match lock.read() {
            Ok(index) => Response::Stats(StatsBody {
                backend: index.backend_name().to_string(),
                trajectories: index.len() as u64,
                terms: index.term_count() as u64,
                workers: shared.workers as u64,
                // The tail goes out only when asked for it (a legacy
                // client's strict decoder must not see it) and when a
                // log is actually configured.
                durability: match durability {
                    true => shared.durability.as_ref().map(Durability::stats),
                    false => None,
                },
            }),
            Err(_) => poisoned(shared),
        },
        Request::Query { query, options } => {
            let lock_started = metrics.now();
            match lock.read() {
                Ok(index) => {
                    let lock_us = metrics.record_since(&metrics.stage_lock_us, lock_started);
                    let engine_started = metrics.now();
                    let result = run_query(&*index, &query, &options);
                    let engine_us = metrics.record_since(&metrics.stage_engine_us, engine_started);
                    if lock_started.is_some() {
                        stages.push(("lock".to_string(), lock_us));
                        stages.push(("engine".to_string(), engine_us));
                    }
                    match result {
                        Ok(hits) if hits.len() > MAX_RESPONSE_HITS => {
                            Response::Error(RESPONSE_TOO_LARGE.to_string())
                        }
                        Ok(hits) => Response::Hits(hits),
                        Err(message) => Response::Error(message.to_string()),
                    }
                }
                Err(_) => poisoned(shared),
            }
        }
        Request::QueryBatch { queries, options } => match lock.read() {
            Ok(index) => {
                let mut batches = Vec::with_capacity(queries.len());
                let mut total_hits = 0usize;
                for query in &queries {
                    match run_query(&*index, query, &options) {
                        Ok(hits) => {
                            // Bail as soon as the running total blows
                            // the frame cap — before the rest of the
                            // batch materializes.
                            total_hits += hits.len();
                            if total_hits > MAX_RESPONSE_HITS {
                                return Response::Error(RESPONSE_TOO_LARGE.to_string());
                            }
                            batches.push(hits);
                        }
                        Err(message) => return Response::Error(message.to_string()),
                    }
                }
                Response::HitsBatch(batches)
            }
            Err(_) => poisoned(shared),
        },
        Request::Insert { id, trajectory } => match lock.write() {
            Ok(mut index) => {
                if let Err(message) = log_op(
                    shared,
                    &WalOp::Insert {
                        id,
                        trajectory: trajectory.clone(),
                    },
                ) {
                    return Response::Error(message);
                }
                index.insert(id, &trajectory);
                Response::Inserted {
                    len: index.len() as u64,
                }
            }
            Err(_) => poisoned(shared),
        },
        Request::Remove { id } => match lock.write() {
            Ok(mut index) => {
                if let Err(message) = log_op(shared, &WalOp::Remove { id }) {
                    return Response::Error(message);
                }
                Response::Removed {
                    was_present: index.remove(id),
                }
            }
            Err(_) => poisoned(shared),
        },
        Request::ShardQuery { terms, options, .. } => {
            let lock_started = metrics.now();
            match lock.read() {
                Ok(index) => {
                    let lock_us = metrics.record_since(&metrics.stage_lock_us, lock_started);
                    let engine_started = metrics.now();
                    let result = index.shard_query(&terms, &options);
                    let engine_us = metrics.record_since(&metrics.stage_engine_us, engine_started);
                    if lock_started.is_some() {
                        stages.push(("lock".to_string(), lock_us));
                        stages.push(("engine".to_string(), engine_us));
                    }
                    match result {
                        Ok(hits) if hits.len() > MAX_RESPONSE_HITS => {
                            Response::Error(RESPONSE_TOO_LARGE.to_string())
                        }
                        Ok(hits) => Response::ShardTopK(hits),
                        Err(message) => Response::Error(message.to_string()),
                    }
                }
                Err(_) => poisoned(shared),
            }
        }
        Request::ShardInsert { id, terms } => match lock.write() {
            Ok(mut index) => {
                // Shard support is a static property of the backend:
                // probe it through the read-only hook first, so an
                // unsupported op is refused whole instead of landing in
                // the write-ahead log unapplied.
                if let Err(message) = index.shard_query(&[], &SearchOptions::default()) {
                    return Response::Error(message.to_string());
                }
                if let Err(message) = log_op(
                    shared,
                    &WalOp::InsertFingerprints {
                        id,
                        terms: terms.clone(),
                    },
                ) {
                    return Response::Error(message);
                }
                match index.shard_insert(id, &terms) {
                    Ok(()) => Response::Inserted {
                        len: index.len() as u64,
                    },
                    Err(message) => Response::Error(message.to_string()),
                }
            }
            Err(_) => poisoned(shared),
        },
    }
}

/// The sharded request path: queries run lock-free against cell
/// snapshots; mutations funnel through the sharded writer with the WAL
/// append inside the write critical section (log order = apply order,
/// exactly like the locked path).
fn execute_sharded<B>(
    shared: &Shared<B>,
    sharded: &ShardedIndex,
    request: Request,
    stages: &mut Vec<(String, u64)>,
) -> Response {
    let metrics = &shared.metrics;
    match request {
        Request::Ping => Response::Pong,
        Request::Metrics => metrics_response(shared),
        Request::Stats { durability } => Response::Stats(StatsBody {
            backend: "sharded".to_string(),
            trajectories: sharded.len(),
            terms: sharded.term_count(),
            workers: shared.workers as u64,
            durability: match durability {
                true => shared.durability.as_ref().map(Durability::stats),
                false => None,
            },
        }),
        Request::Query { query, options } => {
            let engine_started = metrics.now();
            let hits = sharded_query(sharded, &query, &options);
            let engine_us = metrics.record_since(&metrics.stage_engine_us, engine_started);
            if engine_started.is_some() {
                stages.push(("engine".to_string(), engine_us));
            }
            if hits.len() > MAX_RESPONSE_HITS {
                Response::Error(RESPONSE_TOO_LARGE.to_string())
            } else {
                Response::Hits(hits)
            }
        }
        Request::QueryBatch { queries, options } => {
            let mut batches = Vec::with_capacity(queries.len());
            let mut total_hits = 0usize;
            for query in &queries {
                let hits = sharded_query(sharded, query, &options);
                total_hits += hits.len();
                if total_hits > MAX_RESPONSE_HITS {
                    return Response::Error(RESPONSE_TOO_LARGE.to_string());
                }
                batches.push(hits);
            }
            Response::HitsBatch(batches)
        }
        Request::Insert { id, trajectory } => {
            let logged = sharded.insert_logged(id, &trajectory, || {
                log_op(
                    shared,
                    &WalOp::Insert {
                        id,
                        trajectory: trajectory.clone(),
                    },
                )
            });
            match logged {
                Ok(len) => Response::Inserted { len },
                Err(message) => refused(shared, message),
            }
        }
        Request::Remove { id } => {
            match sharded.remove_logged(id, || log_op(shared, &WalOp::Remove { id })) {
                Ok(was_present) => Response::Removed { was_present },
                Err(message) => refused(shared, message),
            }
        }
        // The sharded cells are an internal layout, not cluster nodes a
        // frontend may address: refuse shard frames like any other
        // non-shard backend.
        Request::ShardQuery { .. } | Request::ShardInsert { .. } => {
            Response::Error(NOT_A_SHARD_NODE.to_string())
        }
    }
}

/// Maps a refused sharded mutation: a poisoned writer (a mutation
/// panicked mid-broadcast, so the cells may disagree) shuts the server
/// down like a poisoned write lock; a failed log append refuses just
/// this op.
fn refused<B>(shared: &Shared<B>, message: String) -> Response {
    if message == shards::POISONED {
        return poisoned(shared);
    }
    Response::Error(message)
}

fn sharded_query(
    sharded: &ShardedIndex,
    query: &QueryBody,
    options: &SearchOptions,
) -> Vec<SearchResult> {
    match query {
        QueryBody::Trajectory(trajectory) => sharded.search(trajectory, options),
        QueryBody::Fingerprints(ordered) => {
            sharded.search_fingerprints(&Fingerprints::from_ordered(ordered.clone()), options)
        }
    }
}

/// Appends one mutation to the write-ahead log (when one is configured)
/// and waits for it to be durable per the sync policy. Called **inside
/// the write critical section** (the index write lock, or the sharded
/// writer), so log order and apply order agree. On error the caller
/// must refuse the write without applying it: a mutation is either
/// logged-then-applied or rejected whole.
fn log_op<B>(shared: &Shared<B>, op: &WalOp) -> Result<(), String> {
    let Some(d) = &shared.durability else {
        return Ok(());
    };
    let mut wal = d
        .wal
        .lock()
        .map_err(|_| "write-ahead log is poisoned".to_string())?;
    let metrics = &shared.metrics;
    let started = metrics.now();
    wal.append(op)
        .map_err(|e| format!("write-ahead log append failed: {e}"))?;
    metrics.record_since(&metrics.wal_append_us, started);
    let last_durable = wal.last_durable_seq();
    d.last_durable.store(last_durable, Ordering::Relaxed);
    d.wal_bytes.store(wal.size_bytes(), Ordering::Relaxed);
    metrics.wal_last_durable_seq.set(last_durable);
    metrics
        .wal_durable_lag
        .set(wal.last_seq().saturating_sub(last_durable));
    metrics.wal_bytes.set(wal.size_bytes());
    Ok(())
}

/// Folds the log into snapshots on a timer until shutdown. Failures are
/// skipped — the next tick retries with the log intact.
fn compaction_loop<B: ServeBackend>(shared: &Shared<B>, every: Duration) {
    let mut last = Instant::now();
    while !shared.shutting_down() {
        std::thread::sleep(IDLE_POLL.min(every));
        if last.elapsed() < every {
            continue;
        }
        let _ = compact(shared);
        last = Instant::now();
    }
}

/// One compaction cycle: fold everything the log holds into a fresh
/// watermark-stamped snapshot, swap it in atomically (tmp file →
/// fsync → rename → fsync-of-dir), then prune the folded segments.
/// Readers are never blocked; writers only wait during the in-memory
/// serialization — under the brief shared lock for a monolithic
/// backend, under the sharded writer mutex (which also freezes WAL
/// appends) for a sharded one. Returns whether a snapshot landed
/// (`false` when there was nothing new to fold or the backend has no
/// snapshot support).
fn compact<B: ServeBackend>(shared: &Shared<B>) -> Result<bool, String> {
    let Some(d) = &shared.durability else {
        return Ok(false);
    };
    let compaction_started = shared.metrics.now();
    let bytes_before = d.wal_bytes.load(Ordering::Relaxed);
    let (bytes, watermark) = {
        // Rotating under the same lock(s) as the serialization ties the
        // watermark to exactly the records the serialized state covers.
        match &shared.index {
            Hosted::Locked(lock) => {
                let index = lock
                    .read()
                    .map_err(|_| "server index is poisoned".to_string())?;
                let mut wal = d
                    .wal
                    .lock()
                    .map_err(|_| "write-ahead log is poisoned".to_string())?;
                if wal.last_seq() <= d.watermark.load(Ordering::Relaxed) {
                    return Ok(false);
                }
                let Some(bytes) = index.to_snapshot_bytes() else {
                    return Ok(false);
                };
                let watermark = wal
                    .rotate()
                    .map_err(|e| format!("write-ahead log rotation failed: {e}"))?;
                (bytes, watermark)
            }
            Hosted::Sharded(sharded) => {
                // The writer guard freezes mutations *and* their WAL
                // appends (appends happen inside the write critical
                // section), so holding it across assembly and rotation
                // leaves the rotated tail with exactly the ops the
                // snapshot does not cover.
                let writer = sharded.lock_writes()?;
                let mut wal = d
                    .wal
                    .lock()
                    .map_err(|_| "write-ahead log is poisoned".to_string())?;
                if wal.last_seq() <= d.watermark.load(Ordering::Relaxed) {
                    return Ok(false);
                }
                let bytes = sharded.snapshot_locked(&writer);
                let watermark = wal
                    .rotate()
                    .map_err(|e| format!("write-ahead log rotation failed: {e}"))?;
                (bytes, watermark)
            }
        }
    };
    let stamped = store::with_watermark(&bytes, watermark)
        .map_err(|e| format!("stamping the snapshot watermark failed: {e}"))?;
    write_snapshot_atomically(&d.snapshot_path, &stamped)
        .map_err(|e| format!("writing the compacted snapshot failed: {e}"))?;
    let mut wal = d
        .wal
        .lock()
        .map_err(|_| "write-ahead log is poisoned".to_string())?;
    wal.prune(watermark)
        .map_err(|e| format!("pruning the write-ahead log failed: {e}"))?;
    d.watermark.store(watermark, Ordering::Relaxed);
    d.wal_bytes.store(wal.size_bytes(), Ordering::Relaxed);
    let metrics = &shared.metrics;
    metrics.compactions.inc();
    metrics.record_since(&metrics.compaction_us, compaction_started);
    metrics
        .compaction_bytes_folded
        .add(bytes_before.saturating_sub(wal.size_bytes()));
    metrics.wal_bytes.set(wal.size_bytes());
    Ok(true)
}

/// Readers of the snapshot path must only ever see a complete snapshot:
/// write to a sibling tmp file, fsync it, rename over the destination,
/// then fsync the directory so the rename itself is durable.
fn write_snapshot_atomically(dst: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = dst.with_extension("gdab.tmp");
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, dst)?;
    if let Some(dir) = dst.parent() {
        std::fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

fn run_query<B: ServeBackend>(
    index: &B,
    query: &QueryBody,
    options: &SearchOptions,
) -> Result<Vec<SearchResult>, &'static str> {
    match query {
        QueryBody::Trajectory(trajectory) => Ok(index.search(trajectory, options)),
        QueryBody::Fingerprints(ordered) => index.search_fingerprints(ordered, options),
    }
}

/// A write-path panic left the index in an unknown state: refuse to
/// serve from it and shut the server down cleanly (flag **and**
/// listener wake-up, so the acceptor does not sit in `accept()` waiting
/// for an unrelated connection to notice).
fn poisoned<B>(shared: &Shared<B>) -> Response {
    shared.initiate_shutdown();
    Response::Error("server index is poisoned; shutting down".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_core::GeodabConfig;

    #[test]
    fn config_builder_validates_and_defaults_to_all_cores() {
        let config = ServerConfig::default();
        assert_eq!(config.mux_workers(), default_threads());
        assert_eq!(config.shards(), 1);
        assert!(config.mux_workers() >= 1);

        let built = ServerConfig::builder()
            .shards(4)
            .mux_workers(2)
            .build()
            .expect("valid config");
        assert_eq!(built.shards(), 4);
        assert_eq!(built.mux_workers(), 2);

        assert_eq!(
            ServerConfig::builder().shards(0).build(),
            Err(ServerConfigError::ZeroShards)
        );
        assert_eq!(
            ServerConfig::builder().mux_workers(0).build(),
            Err(ServerConfigError::ZeroMuxWorkers)
        );
    }

    #[test]
    fn backend_names_and_stats_dispatch() {
        let geodab = GeodabIndex::new(GeodabConfig::default());
        assert_eq!(geodab.backend_name(), "geodab");
        assert!(
            ServeBackend::search_fingerprints(&geodab, &[1, 2], &SearchOptions::default()).is_ok()
        );
        let geohash = GeohashIndex::new(36);
        assert_eq!(geohash.backend_name(), "geohash");
        assert!(
            ServeBackend::search_fingerprints(&geohash, &[1, 2], &SearchOptions::default())
                .is_err()
        );
        let cluster = ClusterIndex::new(GeodabConfig::default(), 100, 2).unwrap();
        assert_eq!(cluster.backend_name(), "cluster");
        assert_eq!(ServeBackend::term_count(&cluster), 0);
    }

    #[test]
    fn into_shards_partitions_geodab_and_cluster_but_not_geohash() {
        let geodab = GeodabIndex::new(GeodabConfig::default());
        let sharded = geodab.into_shards(4).expect("geodab shards");
        assert_eq!(sharded.shards(), 4);

        let cluster = ClusterIndex::new(GeodabConfig::default(), 100, 2).unwrap();
        let sharded = cluster.into_shards(3).expect("cluster re-shards");
        assert_eq!(sharded.shards(), 3);

        let geohash = GeohashIndex::new(36);
        let err = geohash.into_shards(2).expect_err("geohash refuses");
        assert!(err.contains("geohash"));
    }

    #[test]
    fn binding_with_unshardable_backend_is_invalid_input() {
        let geohash = GeohashIndex::new(36);
        let config = ServerConfig::builder().shards(2).build().unwrap();
        let err = match Server::bind("127.0.0.1:0", geohash, config) {
            Ok(_) => panic!("an unshardable backend must be refused"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn bind_run_shutdown_without_traffic() {
        let index = GeodabIndex::new(GeodabConfig::default());
        let config = ServerConfig::builder().mux_workers(2).build().unwrap();
        let server = Server::bind("127.0.0.1:0", index, config).expect("bind loopback");
        assert_ne!(server.local_addr().port(), 0);
        let running = server.spawn();
        let served = running.shutdown().expect("clean shutdown");
        assert_eq!(served, 0);
    }
}
