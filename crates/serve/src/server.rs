//! The concurrent query server: a bounded thread pool over shared
//! read-mostly index state.
//!
//! # Threading model
//!
//! One acceptor (the thread calling [`Server::run`]) hands accepted
//! connections to a pool of `threads` workers over an MPSC channel; each
//! worker owns one connection **for that connection's lifetime** and
//! answers its frames in order, so clients may pipeline requests
//! freely. The pool size is therefore also the concurrent-connection
//! capacity: connection `threads + 1` queues unserved until an earlier
//! client disconnects — size [`ServerConfig::threads`] to the expected
//! connection count, not just the core count, for long-lived clients.
//! The index lives in one [`RwLock`]: queries
//! (`Ping`/`Stats`/`Query`/`QueryBatch`) take the shared read lock and
//! run concurrently across workers; writes (`Insert`/`Remove`) take the
//! exclusive lock. With the default
//! [`geodabs_index::batch::default_threads`] pool size, every core
//! answers queries.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] (or dropping the pipe on a poisoned lock)
//! flips a shared flag and pokes the listener so the accept loop wakes
//! up; workers poll the flag on a short read timeout between frames and
//! drain. If a request handler panics while holding the **write** lock,
//! the lock is poisoned: every subsequent request is answered with an
//! error frame and the server initiates the same clean shutdown rather
//! than serving from possibly half-mutated state.

use geodabs_cluster::{ClusterIndex, ShardNode};
use geodabs_core::Fingerprints;
use geodabs_index::batch::default_threads;
use geodabs_index::store::{self, Persist};
use geodabs_index::{GeodabIndex, GeohashIndex, SearchOptions, SearchResult, TrajectoryIndex};
use geodabs_traj::{TrajId, Trajectory};
use geodabs_wal::{Wal, WalOp};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use crate::proto::{
    is_timeout, write_frame, DurabilityStats, FrameReader, QueryBody, Request, Response, StatsBody,
    WireError, MAX_FRAME_LEN,
};

/// Upper bound on hits across one response (12 wire bytes per hit, so
/// this is what fits in a frame). Enforced **while the response is
/// being built**, so a small request fanning out to millions of hits is
/// refused with a typed error instead of materializing a response that
/// could never be framed (or OOM-ing the server first).
const MAX_RESPONSE_HITS: usize = MAX_FRAME_LEN as usize / 12;

/// The error sent when a response would blow the frame cap.
const RESPONSE_TOO_LARGE: &str =
    "response exceeds the frame cap; narrow the query with a result limit";

/// How often an idle worker wakes up to poll the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// File name of the compacted snapshot inside a WAL directory: boot
/// loads it (when present) and replays only the log suffix beyond its
/// watermark; the compaction thread atomically replaces it.
pub const WAL_SNAPSHOT_FILE: &str = "snapshot.gdab";

/// The index interface the server hosts: every backend the workspace
/// ships (and any future one) answers the full request vocabulary
/// through it.
pub trait ServeBackend: Send + Sync + 'static {
    /// The backend's stable name, reported by `Stats`.
    fn backend_name(&self) -> &'static str;

    /// Indexed trajectories.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct terms (active shards for the cluster backend).
    fn term_count(&self) -> usize;

    /// Ranked retrieval from a raw trajectory.
    fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult>;

    /// Ranked retrieval from pre-computed geodab fingerprints (ordered
    /// sequence), when the backend's term vocabulary supports it.
    ///
    /// # Errors
    ///
    /// A static message when the backend cannot score fingerprint
    /// queries (the geohash baseline uses `u64` cell terms).
    fn search_fingerprints(
        &self,
        ordered: &[u32],
        options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, &'static str>;

    /// Indexes a trajectory (replace-on-reinsert).
    fn insert(&mut self, id: TrajId, trajectory: &Trajectory);

    /// Removes a trajectory; returns whether the id was indexed.
    fn remove(&mut self, id: TrajId) -> bool;

    /// Serializes the backend into a `GDAB` snapshot, for the
    /// durability compaction path. The default `None` disables
    /// compaction for backends without snapshot support; the
    /// write-ahead log itself still works for them.
    fn to_snapshot_bytes(&self) -> Option<Vec<u8>> {
        None
    }

    /// Answers a frontend's scatter sub-query: score the node-local
    /// slice against the query's full ordered term sequence and return
    /// this node's exact top-k heap (the frontend merges heaps across
    /// shards). Only shard backends implement it — on anything else the
    /// default refuses, so pointing a frontend at a monolithic server
    /// is a typed error, not silently-partial ranking.
    ///
    /// # Errors
    ///
    /// A static message when the backend is not a shard node.
    fn shard_query(
        &self,
        _ordered: &[u32],
        _options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, &'static str> {
        Err("this backend is not a shard node; start the server with --shard-id")
    }

    /// Applies a frontend's broadcast insert: keep the routed subset of
    /// the full ordered term sequence (and the fingerprint replica, if
    /// any term landed here). Only shard backends implement it.
    ///
    /// # Errors
    ///
    /// A static message when the backend is not a shard node.
    fn shard_insert(&mut self, _id: TrajId, _ordered: &[u32]) -> Result<(), &'static str> {
        Err("this backend is not a shard node; start the server with --shard-id")
    }
}

impl ServeBackend for GeodabIndex {
    fn backend_name(&self) -> &'static str {
        "geodab"
    }

    fn len(&self) -> usize {
        TrajectoryIndex::len(self)
    }

    fn term_count(&self) -> usize {
        GeodabIndex::term_count(self)
    }

    fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        TrajectoryIndex::search(self, query, options)
    }

    fn search_fingerprints(
        &self,
        ordered: &[u32],
        options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, &'static str> {
        let fp = Fingerprints::from_ordered(ordered.to_vec());
        Ok(GeodabIndex::search_fingerprints(self, &fp, options))
    }

    fn insert(&mut self, id: TrajId, trajectory: &Trajectory) {
        TrajectoryIndex::insert(self, id, trajectory);
    }

    fn remove(&mut self, id: TrajId) -> bool {
        TrajectoryIndex::remove(self, id)
    }

    fn to_snapshot_bytes(&self) -> Option<Vec<u8>> {
        Some(Persist::to_snapshot(self))
    }
}

impl ServeBackend for GeohashIndex {
    fn backend_name(&self) -> &'static str {
        "geohash"
    }

    fn len(&self) -> usize {
        TrajectoryIndex::len(self)
    }

    fn term_count(&self) -> usize {
        GeohashIndex::term_count(self)
    }

    fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        TrajectoryIndex::search(self, query, options)
    }

    fn search_fingerprints(
        &self,
        _ordered: &[u32],
        _options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, &'static str> {
        Err("the geohash backend cannot score geodab fingerprint queries")
    }

    fn insert(&mut self, id: TrajId, trajectory: &Trajectory) {
        TrajectoryIndex::insert(self, id, trajectory);
    }

    fn remove(&mut self, id: TrajId) -> bool {
        TrajectoryIndex::remove(self, id)
    }

    fn to_snapshot_bytes(&self) -> Option<Vec<u8>> {
        Some(Persist::to_snapshot(self))
    }
}

impl ServeBackend for ClusterIndex {
    fn backend_name(&self) -> &'static str {
        "cluster"
    }

    fn len(&self) -> usize {
        ClusterIndex::len(self)
    }

    fn term_count(&self) -> usize {
        self.active_shards()
    }

    fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        ClusterIndex::search(self, query, options)
    }

    fn search_fingerprints(
        &self,
        ordered: &[u32],
        options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, &'static str> {
        let fp = Fingerprints::from_ordered(ordered.to_vec());
        Ok(ClusterIndex::search_fingerprints(self, &fp, options))
    }

    fn insert(&mut self, id: TrajId, trajectory: &Trajectory) {
        ClusterIndex::insert(self, id, trajectory);
    }

    fn remove(&mut self, id: TrajId) -> bool {
        ClusterIndex::remove(self, id)
    }

    fn to_snapshot_bytes(&self) -> Option<Vec<u8>> {
        Some(Persist::to_snapshot(self))
    }
}

impl ServeBackend for ShardNode {
    fn backend_name(&self) -> &'static str {
        "node"
    }

    fn len(&self) -> usize {
        ShardNode::len(self)
    }

    fn term_count(&self) -> usize {
        ShardNode::term_count(self)
    }

    fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        ShardNode::search(self, query, options)
    }

    fn search_fingerprints(
        &self,
        ordered: &[u32],
        options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, &'static str> {
        let fp = Fingerprints::from_ordered(ordered.to_vec());
        Ok(ShardNode::search_fingerprints(self, &fp, options))
    }

    fn insert(&mut self, id: TrajId, trajectory: &Trajectory) {
        ShardNode::insert(self, id, trajectory);
    }

    fn remove(&mut self, id: TrajId) -> bool {
        ShardNode::remove(self, id)
    }

    fn to_snapshot_bytes(&self) -> Option<Vec<u8>> {
        Some(Persist::to_snapshot(self))
    }

    fn shard_query(
        &self,
        ordered: &[u32],
        options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, &'static str> {
        let fp = Fingerprints::from_ordered(ordered.to_vec());
        Ok(ShardNode::search_fingerprints(self, &fp, options))
    }

    fn shard_insert(&mut self, id: TrajId, ordered: &[u32]) -> Result<(), &'static str> {
        let fp = Fingerprints::from_ordered(ordered.to_vec());
        ShardNode::insert_fingerprints(self, id, fp);
        Ok(())
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads in the connection pool — also the number of
    /// connections served concurrently, since a worker owns its
    /// connection until the client disconnects. Defaults to
    /// [`default_threads`] — one per core.
    pub threads: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            threads: default_threads(),
        }
    }
}

/// Durability state for a serving process: the open write-ahead log
/// plus the lock-free counters `Stats` reports from read paths.
struct Durability {
    wal: Mutex<Wal>,
    /// Where compaction lands its snapshot (inside the WAL directory).
    snapshot_path: PathBuf,
    /// How often the compaction thread folds the log; `None` disables
    /// the thread (the log only ever grows until a restart).
    compact_every: Option<Duration>,
    last_durable: AtomicU64,
    wal_bytes: AtomicU64,
    watermark: AtomicU64,
}

impl Durability {
    fn new(wal: Wal, snapshot_watermark: u64, compact_every: Option<Duration>) -> Durability {
        Durability {
            snapshot_path: wal.dir().join(WAL_SNAPSHOT_FILE),
            compact_every,
            last_durable: AtomicU64::new(wal.last_durable_seq()),
            wal_bytes: AtomicU64::new(wal.size_bytes()),
            watermark: AtomicU64::new(snapshot_watermark),
            wal: Mutex::new(wal),
        }
    }

    fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            last_durable_seq: self.last_durable.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            snapshot_watermark: self.watermark.load(Ordering::Relaxed),
        }
    }
}

struct Shared<B> {
    index: RwLock<B>,
    addr: SocketAddr,
    /// Pool size, reported via `Stats` so load generators can flag
    /// ladder points beyond the concurrent-connection capacity.
    workers: usize,
    shutdown: Arc<AtomicBool>,
    requests: AtomicU64,
    durability: Option<Durability>,
}

impl<B> Shared<B> {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag and wakes the acceptor.
    fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        wake_listener(self.addr);
    }
}

/// Best-effort poke so a blocked `accept()` observes the shutdown flag.
/// A wildcard bind address (`0.0.0.0` / `::`) is not connectable on
/// every platform, so the poke targets loopback at the bound port.
fn wake_listener(addr: SocketAddr) {
    let mut target = addr;
    if target.ip().is_unspecified() {
        target.set_ip(match target {
            SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    let _ = TcpStream::connect_timeout(&target, Duration::from_millis(200));
}

/// Remote control for a bound server: carries the address and the
/// shutdown flag, independent of the backend type.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates a clean shutdown: stop accepting, let workers drain.
    /// Idempotent; returns once the flag is set (the accept loop exits on
    /// its next wake-up).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        wake_listener(self.addr);
    }
}

/// A server bound to its socket but not yet serving; call
/// [`Server::run`] (blocking) or [`Server::spawn`] (background thread).
///
/// # Examples
///
/// ```
/// use geodabs_core::GeodabConfig;
/// use geodabs_index::GeodabIndex;
/// use geodabs_serve::{Client, Server, ServerConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let index = GeodabIndex::new(GeodabConfig::default());
/// let server = Server::bind("127.0.0.1:0", index, ServerConfig::default())?;
/// let running = server.spawn();
///
/// let mut client = Client::connect(running.addr())?;
/// client.ping()?;
/// assert_eq!(client.stats()?.backend, "geodab");
///
/// running.shutdown()?;
/// # Ok(())
/// # }
/// ```
pub struct Server<B> {
    listener: TcpListener,
    addr: SocketAddr,
    config: ServerConfig,
    shared: Arc<Shared<B>>,
}

/// A server running on a background thread (see [`Server::spawn`]).
pub struct RunningServer {
    handle: ServerHandle,
    join: std::thread::JoinHandle<std::io::Result<u64>>,
}

impl RunningServer {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// A cloneable remote-control handle.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Shuts the server down and waits for it to drain; returns the
    /// number of requests served.
    ///
    /// # Errors
    ///
    /// Propagates the serve loop's I/O error, if it died on one.
    ///
    /// # Panics
    ///
    /// Panics if the serve thread itself panicked.
    pub fn shutdown(self) -> std::io::Result<u64> {
        self.handle.shutdown();
        self.join.join().expect("serve thread panicked")
    }
}

impl<B: ServeBackend> Server<B> {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port)
    /// hosting `backend`.
    ///
    /// # Errors
    ///
    /// Any socket-level failure binding the listener.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        backend: B,
        config: ServerConfig,
    ) -> std::io::Result<Server<B>> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            index: RwLock::new(backend),
            addr,
            workers: config.threads.max(1),
            shutdown: Arc::new(AtomicBool::new(false)),
            requests: AtomicU64::new(0),
            durability: None,
        });
        Ok(Server {
            listener,
            addr,
            config,
            shared,
        })
    }

    /// Makes the server durable: every `Insert`/`Remove` is appended to
    /// `wal` (and synced per its policy) **before** it is acknowledged,
    /// and — when `compact_every` is set — a background thread
    /// periodically folds the log into a watermark-stamped snapshot at
    /// [`WAL_SNAPSHOT_FILE`] inside the log directory, pruning the
    /// folded segments.
    ///
    /// The caller has already restored the backend (snapshot load plus
    /// replay of the log suffix beyond `snapshot_watermark`), so the
    /// log and the in-memory state agree when serving starts.
    ///
    /// # Panics
    ///
    /// Must be called between [`Server::bind`] and [`Server::run`] /
    /// [`Server::spawn`]; panics if the server is already shared with
    /// other threads.
    pub fn with_durability(
        mut self,
        wal: Wal,
        snapshot_watermark: u64,
        compact_every: Option<Duration>,
    ) -> Server<B> {
        let shared = Arc::get_mut(&mut self.shared)
            .expect("with_durability must be called before the server starts serving");
        shared.durability = Some(Durability::new(wal, snapshot_watermark, compact_every));
        self
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote-control handle usable from any thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            shutdown: Arc::clone(&self.shared.shutdown),
        }
    }

    /// Serves until [`ServerHandle::shutdown`] is called (this thread is
    /// the acceptor). Returns the number of requests served.
    ///
    /// # Errors
    ///
    /// Fatal listener errors; per-connection errors only drop that
    /// connection.
    pub fn run(self) -> std::io::Result<u64> {
        let threads = self.config.threads.max(1);
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let shared = &self.shared;
        let mut fatal: Option<std::io::Error> = None;
        std::thread::scope(|scope| {
            if let Some(every) = shared.durability.as_ref().and_then(|d| d.compact_every) {
                scope.spawn(move || compaction_loop(shared, every));
            }
            for _ in 0..threads {
                let rx = Arc::clone(&rx);
                scope.spawn(move || loop {
                    // Holding the receiver lock only for the recv keeps
                    // hand-off fair across workers.
                    let conn = rx.lock().expect("receiver lock never poisons").recv();
                    match conn {
                        Ok(stream) => handle_connection(stream, shared),
                        Err(_) => break,
                    }
                });
            }
            // Transient accept() errors (a peer resetting mid-handshake)
            // are retried with a small back-off; a persistent error
            // streak (e.g. fd exhaustion) is fatal rather than a silent
            // 100%-CPU spin.
            let mut error_streak = 0u32;
            for conn in self.listener.incoming() {
                if shared.shutting_down() {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        error_streak = 0;
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        error_streak += 1;
                        if error_streak >= 100 {
                            fatal = Some(e);
                            shared.shutdown.store(true, Ordering::SeqCst);
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
            drop(tx);
        });
        // Clean shutdown flushes the log regardless of sync policy:
        // every acknowledged write survives a graceful stop even under
        // `never`.
        if let Some(d) = &self.shared.durability {
            if let Ok(mut wal) = d.wal.lock() {
                let _ = wal.sync();
                d.last_durable
                    .store(wal.last_durable_seq(), Ordering::Relaxed);
            }
        }
        match fatal {
            Some(e) => Err(e),
            None => Ok(self.shared.requests.load(Ordering::SeqCst)),
        }
    }

    /// Moves the server onto a background thread and returns its
    /// controls.
    pub fn spawn(self) -> RunningServer {
        let handle = self.handle();
        let join = std::thread::spawn(move || self.run());
        RunningServer { handle, join }
    }
}

fn handle_connection<B: ServeBackend>(stream: TcpStream, shared: &Shared<B>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let mut reader = FrameReader::new(&stream);
    loop {
        if shared.shutting_down() {
            break;
        }
        match reader.read_frame() {
            Ok(None) => break,
            Ok(Some(payload)) => {
                let response = match Request::decode(&payload) {
                    // A panicking handler must not take the worker pool
                    // (or the whole accept scope) down with it: catch it
                    // at the request boundary and answer with an error.
                    // If the panic struck under the write lock, the lock
                    // is now poisoned and the next lock acquisition
                    // triggers the clean shutdown path.
                    Ok(request) => std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        execute(shared, request)
                    }))
                    .unwrap_or_else(|_| Response::Error("request handler panicked".to_string())),
                    Err(e) => Response::Error(format!("bad request: {e}")),
                };
                shared.requests.fetch_add(1, Ordering::Relaxed);
                if let Err(e) = write_frame(&mut &stream, &response.encode()) {
                    // write_frame validates the cap before touching the
                    // socket, so an oversized response (a batch of many
                    // empty rankings can exceed the cap on record
                    // overhead alone) can still be answered with a
                    // small typed error instead of a silent hang-up.
                    if matches!(e, WireError::FrameTooLarge { .. }) {
                        let fallback = Response::Error(RESPONSE_TOO_LARGE.to_string());
                        if write_frame(&mut &stream, &fallback.encode()).is_ok() {
                            continue;
                        }
                    }
                    break;
                }
            }
            Err(WireError::Io(e)) if is_timeout(&e) => continue,
            Err(e) => {
                // Framing is lost (bad checksum, oversized length, EOF
                // mid-frame): answer best-effort, then drop the
                // connection — later bytes cannot be trusted.
                let response = Response::Error(format!("bad frame: {e}"));
                let _ = write_frame(&mut &stream, &response.encode());
                break;
            }
        }
    }
}

fn execute<B: ServeBackend>(shared: &Shared<B>, request: Request) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Stats { durability } => match shared.index.read() {
            Ok(index) => Response::Stats(StatsBody {
                backend: index.backend_name().to_string(),
                trajectories: index.len() as u64,
                terms: index.term_count() as u64,
                workers: shared.workers as u64,
                // The tail goes out only when asked for it (a legacy
                // client's strict decoder must not see it) and when a
                // log is actually configured.
                durability: match durability {
                    true => shared.durability.as_ref().map(Durability::stats),
                    false => None,
                },
            }),
            Err(_) => poisoned(shared),
        },
        Request::Query { query, options } => match shared.index.read() {
            Ok(index) => match run_query(&*index, &query, &options) {
                Ok(hits) if hits.len() > MAX_RESPONSE_HITS => {
                    Response::Error(RESPONSE_TOO_LARGE.to_string())
                }
                Ok(hits) => Response::Hits(hits),
                Err(message) => Response::Error(message.to_string()),
            },
            Err(_) => poisoned(shared),
        },
        Request::QueryBatch { queries, options } => match shared.index.read() {
            Ok(index) => {
                let mut batches = Vec::with_capacity(queries.len());
                let mut total_hits = 0usize;
                for query in &queries {
                    match run_query(&*index, query, &options) {
                        Ok(hits) => {
                            // Bail as soon as the running total blows
                            // the frame cap — before the rest of the
                            // batch materializes.
                            total_hits += hits.len();
                            if total_hits > MAX_RESPONSE_HITS {
                                return Response::Error(RESPONSE_TOO_LARGE.to_string());
                            }
                            batches.push(hits);
                        }
                        Err(message) => return Response::Error(message.to_string()),
                    }
                }
                Response::HitsBatch(batches)
            }
            Err(_) => poisoned(shared),
        },
        Request::Insert { id, trajectory } => match shared.index.write() {
            Ok(mut index) => {
                if let Err(message) = log_op(
                    shared,
                    &WalOp::Insert {
                        id,
                        trajectory: trajectory.clone(),
                    },
                ) {
                    return Response::Error(message);
                }
                index.insert(id, &trajectory);
                Response::Inserted {
                    len: index.len() as u64,
                }
            }
            Err(_) => poisoned(shared),
        },
        Request::Remove { id } => match shared.index.write() {
            Ok(mut index) => {
                if let Err(message) = log_op(shared, &WalOp::Remove { id }) {
                    return Response::Error(message);
                }
                Response::Removed {
                    was_present: index.remove(id),
                }
            }
            Err(_) => poisoned(shared),
        },
        Request::ShardQuery { terms, options } => match shared.index.read() {
            Ok(index) => match index.shard_query(&terms, &options) {
                Ok(hits) if hits.len() > MAX_RESPONSE_HITS => {
                    Response::Error(RESPONSE_TOO_LARGE.to_string())
                }
                Ok(hits) => Response::ShardTopK(hits),
                Err(message) => Response::Error(message.to_string()),
            },
            Err(_) => poisoned(shared),
        },
        Request::ShardInsert { id, terms } => match shared.index.write() {
            Ok(mut index) => {
                // Shard support is a static property of the backend:
                // probe it through the read-only hook first, so an
                // unsupported op is refused whole instead of landing in
                // the write-ahead log unapplied.
                if let Err(message) = index.shard_query(&[], &SearchOptions::default()) {
                    return Response::Error(message.to_string());
                }
                if let Err(message) = log_op(
                    shared,
                    &WalOp::InsertFingerprints {
                        id,
                        terms: terms.clone(),
                    },
                ) {
                    return Response::Error(message);
                }
                match index.shard_insert(id, &terms) {
                    Ok(()) => Response::Inserted {
                        len: index.len() as u64,
                    },
                    Err(message) => Response::Error(message.to_string()),
                }
            }
            Err(_) => poisoned(shared),
        },
    }
}

/// Appends one mutation to the write-ahead log (when one is configured)
/// and waits for it to be durable per the sync policy. Called **under
/// the index write lock**, so log order and apply order agree. On
/// error the caller must refuse the write without applying it: a
/// mutation is either logged-then-applied or rejected whole.
fn log_op<B>(shared: &Shared<B>, op: &WalOp) -> Result<(), String> {
    let Some(d) = &shared.durability else {
        return Ok(());
    };
    let mut wal = d
        .wal
        .lock()
        .map_err(|_| "write-ahead log is poisoned".to_string())?;
    wal.append(op)
        .map_err(|e| format!("write-ahead log append failed: {e}"))?;
    d.last_durable
        .store(wal.last_durable_seq(), Ordering::Relaxed);
    d.wal_bytes.store(wal.size_bytes(), Ordering::Relaxed);
    Ok(())
}

/// Folds the log into snapshots on a timer until shutdown. Failures are
/// skipped — the next tick retries with the log intact.
fn compaction_loop<B: ServeBackend>(shared: &Shared<B>, every: Duration) {
    let mut last = Instant::now();
    while !shared.shutting_down() {
        std::thread::sleep(IDLE_POLL.min(every));
        if last.elapsed() < every {
            continue;
        }
        let _ = compact(shared);
        last = Instant::now();
    }
}

/// One compaction cycle: fold everything the log holds into a fresh
/// watermark-stamped snapshot, swap it in atomically (tmp file →
/// fsync → rename → fsync-of-dir), then prune the folded segments.
/// Readers are never blocked; writers only wait during the in-memory
/// serialization under the brief shared lock — the "consistent view".
/// Returns whether a snapshot landed (`false` when there was nothing
/// new to fold or the backend has no snapshot support).
fn compact<B: ServeBackend>(shared: &Shared<B>) -> Result<bool, String> {
    let Some(d) = &shared.durability else {
        return Ok(false);
    };
    let (bytes, watermark) = {
        let index = shared
            .index
            .read()
            .map_err(|_| "server index is poisoned".to_string())?;
        let mut wal = d
            .wal
            .lock()
            .map_err(|_| "write-ahead log is poisoned".to_string())?;
        if wal.last_seq() <= d.watermark.load(Ordering::Relaxed) {
            return Ok(false);
        }
        let Some(bytes) = index.to_snapshot_bytes() else {
            return Ok(false);
        };
        // Rotating under the same lock ties the watermark to exactly
        // the records the serialized state covers.
        let watermark = wal
            .rotate()
            .map_err(|e| format!("write-ahead log rotation failed: {e}"))?;
        (bytes, watermark)
    };
    let stamped = store::with_watermark(&bytes, watermark)
        .map_err(|e| format!("stamping the snapshot watermark failed: {e}"))?;
    write_snapshot_atomically(&d.snapshot_path, &stamped)
        .map_err(|e| format!("writing the compacted snapshot failed: {e}"))?;
    let mut wal = d
        .wal
        .lock()
        .map_err(|_| "write-ahead log is poisoned".to_string())?;
    wal.prune(watermark)
        .map_err(|e| format!("pruning the write-ahead log failed: {e}"))?;
    d.watermark.store(watermark, Ordering::Relaxed);
    d.wal_bytes.store(wal.size_bytes(), Ordering::Relaxed);
    Ok(true)
}

/// Readers of the snapshot path must only ever see a complete snapshot:
/// write to a sibling tmp file, fsync it, rename over the destination,
/// then fsync the directory so the rename itself is durable.
fn write_snapshot_atomically(dst: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = dst.with_extension("gdab.tmp");
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, dst)?;
    if let Some(dir) = dst.parent() {
        std::fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

fn run_query<B: ServeBackend>(
    index: &B,
    query: &QueryBody,
    options: &SearchOptions,
) -> Result<Vec<SearchResult>, &'static str> {
    match query {
        QueryBody::Trajectory(trajectory) => Ok(index.search(trajectory, options)),
        QueryBody::Fingerprints(ordered) => index.search_fingerprints(ordered, options),
    }
}

/// A write-lock panic left the index in an unknown state: refuse to
/// serve from it and shut the server down cleanly (flag **and**
/// listener wake-up, so the acceptor does not sit in `accept()` waiting
/// for an unrelated connection to notice).
fn poisoned<B>(shared: &Shared<B>) -> Response {
    shared.initiate_shutdown();
    Response::Error("server index is poisoned; shutting down".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodabs_core::GeodabConfig;

    #[test]
    fn config_defaults_to_all_cores() {
        assert_eq!(ServerConfig::default().threads, default_threads());
        assert!(ServerConfig::default().threads >= 1);
    }

    #[test]
    fn backend_names_and_stats_dispatch() {
        let geodab = GeodabIndex::new(GeodabConfig::default());
        assert_eq!(geodab.backend_name(), "geodab");
        assert!(
            ServeBackend::search_fingerprints(&geodab, &[1, 2], &SearchOptions::default()).is_ok()
        );
        let geohash = GeohashIndex::new(36);
        assert_eq!(geohash.backend_name(), "geohash");
        assert!(
            ServeBackend::search_fingerprints(&geohash, &[1, 2], &SearchOptions::default())
                .is_err()
        );
        let cluster = ClusterIndex::new(GeodabConfig::default(), 100, 2).unwrap();
        assert_eq!(cluster.backend_name(), "cluster");
        assert_eq!(ServeBackend::term_count(&cluster), 0);
    }

    #[test]
    fn bind_run_shutdown_without_traffic() {
        let index = GeodabIndex::new(GeodabConfig::default());
        let server =
            Server::bind("127.0.0.1:0", index, ServerConfig { threads: 2 }).expect("bind loopback");
        assert_ne!(server.local_addr().port(), 0);
        let running = server.spawn();
        let served = running.shutdown().expect("clean shutdown");
        assert_eq!(served, 0);
    }
}
