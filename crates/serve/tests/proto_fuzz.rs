//! Corruption suite for the wire protocol, mirroring the snapshot
//! layer's `codec_roundtrip.rs` discipline: truncated, bit-flipped and
//! length-prefix-attack frames must be rejected with a typed
//! [`WireError`] — never a panic, never an unbounded allocation — and
//! arbitrary bytes must never decode-panic either.

use geodabs_geo::Point;
use geodabs_index::{SearchOptions, SearchResult};
use geodabs_serve::proto::{write_frame, FrameReader, MAX_FRAME_LEN};
use geodabs_serve::{
    MetricsHistogram, MetricsReport, MetricsSlowQuery, QueryBody, Request, Response, WireError,
};
use geodabs_traj::{TrajId, Trajectory};
use proptest::prelude::*;

fn sample_trajectory(points: usize) -> Trajectory {
    let start = Point::new(51.5074, -0.1278).unwrap();
    (0..points)
        .map(|i| start.destination(90.0, i as f64 * 90.0))
        .collect()
}

fn framed(payload: &[u8]) -> Vec<u8> {
    let mut wire = Vec::new();
    write_frame(&mut wire, payload).expect("payload under the cap");
    wire
}

fn read_one(wire: &[u8]) -> Result<Option<Vec<u8>>, WireError> {
    FrameReader::new(wire).read_frame()
}

/// A representative request exercising every body shape.
fn sample_request() -> Request {
    Request::QueryBatch {
        queries: vec![
            QueryBody::Trajectory(sample_trajectory(8)),
            QueryBody::Fingerprints(vec![1, 99, 100_000]),
        ],
        options: SearchOptions::default().max_distance(0.7).limit(10),
    }
}

/// The distributed frames run through the same corruption gauntlets.
fn shard_frames() -> Vec<Vec<u8>> {
    vec![
        Request::ShardQuery {
            terms: vec![3, 77, 65_536],
            options: SearchOptions::default().limit(5),
            trace: 0,
        }
        .encode(),
        Request::ShardQuery {
            terms: vec![3, 77, 65_536],
            options: SearchOptions::default().limit(5),
            trace: 0x1234_5678_9ABC_DEF0,
        }
        .encode(),
        Request::ShardInsert {
            id: TrajId::new(11),
            terms: vec![0, 1, u32::MAX],
        }
        .encode(),
        Response::ShardTopK(vec![SearchResult {
            id: TrajId::new(4),
            distance: 0.25,
        }])
        .encode(),
        Response::Unavailable {
            node: 2,
            message: "dial tcp: connection refused".into(),
        }
        .encode(),
    ]
}

/// A populated telemetry report, so the metrics frames exercise every
/// nested shape (counters, gauges, sparse histograms, slow queries).
fn sample_report() -> MetricsReport {
    MetricsReport {
        counters: vec![("geodabs_requests_total".into(), 42)],
        gauges: vec![("geodabs_connections".into(), 3, 9)],
        histograms: vec![MetricsHistogram {
            name: "geodabs_request_latency_us".into(),
            sum: 1234,
            buckets: vec![(0, 5), (17, 2), (495, 1)],
        }],
        slow_queries: vec![MetricsSlowQuery {
            trace_id: 0xFEED_FACE_CAFE_BEEF,
            kind: "query".into(),
            total_us: 1500,
            stages: vec![("engine".into(), 1400), ("lock".into(), 100)],
        }],
        text: "# TYPE geodabs_requests_total counter\n".into(),
    }
}

/// The telemetry frames run through the same corruption gauntlets.
fn metrics_frames() -> Vec<Vec<u8>> {
    vec![
        Request::Metrics.encode(),
        Response::Metrics(sample_report()).encode(),
    ]
}

#[test]
fn every_strict_prefix_of_a_metrics_frame_is_rejected() {
    for payload in metrics_frames() {
        let wire = framed(&payload);
        for cut in 1..wire.len() {
            let result = read_one(&wire[..cut]);
            assert!(
                matches!(result, Err(WireError::Truncated)),
                "cut at {cut}: {result:?}"
            );
        }
    }
}

#[test]
fn every_single_bit_flip_in_a_metrics_frame_is_rejected() {
    for payload in metrics_frames() {
        let wire = framed(&payload);
        for byte in 0..wire.len() {
            for bit in 0..8u8 {
                let mut corrupted = wire.clone();
                corrupted[byte] ^= 1 << bit;
                let outcome = read_one(&corrupted);
                assert!(
                    outcome.is_err(),
                    "flip of bit {bit} in byte {byte} survived: {outcome:?}"
                );
            }
        }
    }
}

#[test]
fn truncated_metrics_payloads_are_typed_errors() {
    let payload = Response::Metrics(sample_report()).encode();
    for cut in 0..payload.len() {
        assert!(
            Response::decode(&payload[..cut]).is_err(),
            "metrics response cut at {cut}"
        );
    }
}

#[test]
fn metrics_report_roundtrip_is_identity() {
    let response = Response::Metrics(sample_report());
    assert_eq!(Response::decode(&response.encode()).unwrap(), response);
    let empty = Response::Metrics(MetricsReport::default());
    assert_eq!(Response::decode(&empty.encode()).unwrap(), empty);
    assert_eq!(
        Request::decode(&Request::Metrics.encode()).unwrap(),
        Request::Metrics
    );
}

#[test]
fn every_strict_prefix_of_a_shard_frame_is_rejected() {
    for payload in shard_frames() {
        let wire = framed(&payload);
        for cut in 1..wire.len() {
            let result = read_one(&wire[..cut]);
            assert!(
                matches!(result, Err(WireError::Truncated)),
                "cut at {cut}: {result:?}"
            );
        }
    }
}

#[test]
fn every_single_bit_flip_in_a_shard_frame_is_rejected() {
    for payload in shard_frames() {
        let wire = framed(&payload);
        for byte in 0..wire.len() {
            for bit in 0..8u8 {
                let mut corrupted = wire.clone();
                corrupted[byte] ^= 1 << bit;
                let outcome = read_one(&corrupted);
                assert!(
                    outcome.is_err(),
                    "flip of bit {bit} in byte {byte} survived: {outcome:?}"
                );
            }
        }
    }
}

#[test]
fn truncated_shard_payloads_are_typed_errors() {
    // A pristine frame around a cut-short shard payload must fail its
    // decoder typed, never panic — the length-attack path for the new
    // tags. (Only the matching decoder is asserted: request and
    // response tags are separate spaces, so a request prefix may
    // coincidentally parse as some response.)
    let [shard_query, traced_query, shard_insert, shard_topk, unavailable]: [Vec<u8>; 5] =
        shard_frames().try_into().expect("five shard frames");
    for payload in [&shard_query, &shard_insert] {
        for cut in 0..payload.len() {
            assert!(
                Request::decode(&payload[..cut]).is_err(),
                "request cut at {cut}"
            );
        }
    }
    // The traced shard query is the untraced frame plus a trace tail, so
    // the cut landing exactly on the legacy boundary IS a valid legacy
    // frame (that is the back-compat contract); every other cut — a bare
    // flag byte, a chopped trace — must fail typed.
    for cut in 0..traced_query.len() {
        let decoded = Request::decode(&traced_query[..cut]);
        if cut == shard_query.len() {
            assert!(
                matches!(decoded, Ok(Request::ShardQuery { trace: 0, .. })),
                "legacy-boundary cut must decode untraced: {decoded:?}"
            );
        } else {
            assert!(decoded.is_err(), "traced request cut at {cut}: {decoded:?}");
        }
    }
    for payload in [shard_topk, unavailable] {
        for cut in 0..payload.len() {
            assert!(
                Response::decode(&payload[..cut]).is_err(),
                "response cut at {cut}"
            );
        }
    }
}

#[test]
fn every_strict_prefix_of_a_frame_is_rejected() {
    let wire = framed(&sample_request().encode());
    for cut in 1..wire.len() {
        let result = read_one(&wire[..cut]);
        assert!(
            matches!(result, Err(WireError::Truncated)),
            "cut at {cut}: {result:?}"
        );
    }
    // The empty prefix is a clean close, not an error.
    assert!(matches!(read_one(&[]), Ok(None)));
}

#[test]
fn every_single_bit_flip_in_a_frame_is_rejected() {
    let wire = framed(&sample_request().encode());
    for byte in 0..wire.len() {
        for bit in 0..8u8 {
            let mut corrupted = wire.clone();
            corrupted[byte] ^= 1 << bit;
            let outcome = read_one(&corrupted);
            // A flip in the length prefix can shrink the claimed length;
            // the CRC (over different bytes) then catches it. A flip
            // anywhere else fails the checksum, the length cap or the
            // truncation check. Nothing may decode cleanly.
            assert!(
                outcome.is_err(),
                "flip of bit {bit} in byte {byte} survived: {outcome:?}"
            );
        }
    }
}

#[test]
fn length_prefix_attacks_fail_before_allocating() {
    for claimed in [MAX_FRAME_LEN + 1, u32::MAX / 2, u32::MAX] {
        let mut wire = Vec::new();
        wire.extend_from_slice(&claimed.to_le_bytes());
        wire.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        wire.extend_from_slice(&[0u8; 64]);
        assert!(
            matches!(
                read_one(&wire),
                Err(WireError::FrameTooLarge { claimed: c }) if c == claimed
            ),
            "claimed {claimed}"
        );
    }
    // The largest admissible claim with a missing body is truncation,
    // and the reader's buffer is bounded by the claim it validated.
    let mut wire = Vec::new();
    wire.extend_from_slice(&1024u32.to_le_bytes());
    wire.extend_from_slice(&0u32.to_le_bytes());
    assert!(matches!(read_one(&wire), Err(WireError::Truncated)));
}

#[test]
fn corrupt_payloads_inside_valid_frames_are_typed_errors() {
    // A frame can be pristine while its payload is garbage: the decoder
    // must still fail typed.
    let garbage = framed(&[42u8; 33]);
    let payload = read_one(&garbage).unwrap().unwrap();
    assert!(Request::decode(&payload).is_err());
    assert!(Response::decode(&payload).is_err());
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic_the_decoders(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let _ = read_one(&bytes);
    }

    #[test]
    fn truncated_random_requests_never_panic(
        points in 0usize..20,
        cut_permille in 0u32..1000,
    ) {
        let payload = Request::Insert {
            id: TrajId::new(7),
            trajectory: sample_trajectory(points),
        }
        .encode();
        let cut = (payload.len() as u64 * cut_permille as u64 / 1000) as usize;
        prop_assert!(Request::decode(&payload[..cut]).is_err() || cut == payload.len());
    }

    #[test]
    fn request_roundtrip_is_identity(
        terms in proptest::collection::vec(any::<u32>(), 0..50),
        max_distance_pm in 0u32..1001,
        limit in 0usize..100,
    ) {
        let mut options = SearchOptions::default().max_distance(max_distance_pm as f64 / 1000.0);
        // limit == 0 doubles as the "no limit" case.
        if limit > 0 {
            options = options.limit(limit - 1);
        }
        let request = Request::Query {
            query: QueryBody::Fingerprints(terms),
            options,
        };
        prop_assert_eq!(Request::decode(&request.encode()).unwrap(), request);
    }

    #[test]
    fn shard_query_roundtrip_is_identity(
        terms in proptest::collection::vec(any::<u32>(), 0..80),
        limit in 0usize..50,
        trace in any::<u64>(),
    ) {
        let request = Request::ShardQuery {
            terms,
            options: SearchOptions::default().limit(limit),
            trace,
        };
        prop_assert_eq!(Request::decode(&request.encode()).unwrap(), request);
    }

    #[test]
    fn shard_insert_roundtrip_is_identity(
        id in any::<u32>(),
        terms in proptest::collection::vec(any::<u32>(), 0..80),
    ) {
        let request = Request::ShardInsert { id: TrajId::new(id), terms };
        prop_assert_eq!(Request::decode(&request.encode()).unwrap(), request);
    }

    #[test]
    fn shard_topk_and_unavailable_roundtrip_is_identity(
        hits in proptest::collection::vec((any::<u32>(), any::<u64>()), 0..50),
        node in any::<u32>(),
        message_bytes in proptest::collection::vec(0x20u8..0x7f, 0..60),
    ) {
        let message = String::from_utf8(message_bytes).expect("printable ascii");
        // Raw bit patterns for the distances: the frame must carry the
        // exact IEEE-754 bits, including NaNs and infinities.
        let hits: Vec<SearchResult> = hits
            .into_iter()
            .map(|(id, bits)| SearchResult {
                id: TrajId::new(id),
                distance: f64::from_bits(bits),
            })
            .collect();
        let response = Response::ShardTopK(hits.clone());
        match Response::decode(&response.encode()).unwrap() {
            Response::ShardTopK(decoded) => {
                prop_assert_eq!(decoded.len(), hits.len());
                for (d, h) in decoded.iter().zip(&hits) {
                    prop_assert_eq!(d.id, h.id);
                    prop_assert_eq!(d.distance.to_bits(), h.distance.to_bits());
                }
            }
            other => prop_assert!(false, "wrong variant {:?}", other),
        }
        let response = Response::Unavailable { node, message };
        prop_assert_eq!(Response::decode(&response.encode()).unwrap(), response);
    }

    #[test]
    fn response_roundtrip_is_identity(
        hits in proptest::collection::vec((any::<u32>(), 0u32..1001), 0..50),
    ) {
        let hits: Vec<SearchResult> = hits
            .into_iter()
            .map(|(id, d)| SearchResult {
                id: TrajId::new(id),
                distance: d as f64 / 1000.0,
            })
            .collect();
        let response = Response::Hits(hits);
        prop_assert_eq!(Response::decode(&response.encode()).unwrap(), response);
    }
}
