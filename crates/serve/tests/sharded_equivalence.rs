//! Sharded-server equivalence and stress tests: a server partitioned
//! into in-process shards must serve rankings **bit-identical** to the
//! monolithic engine — while queries keep completing (and keep
//! matching) under concurrent ingest, over a mux pool far smaller than
//! the connection count, and through the WAL restart path.

use geodabs_cluster::ClusterIndex;
use geodabs_core::GeodabConfig;
use geodabs_geo::Point;
use geodabs_index::store::{self, Persist};
use geodabs_index::{GeodabIndex, SearchOptions, SearchResult, TrajectoryIndex};
use geodabs_serve::{Client, LoadClient, Server, ServerConfig, ShardedIndex, WAL_SNAPSHOT_FILE};
use geodabs_traj::{TrajId, Trajectory};
use geodabs_wal::{SyncPolicy, Wal, WalOp};
use std::time::Duration;

fn eastward(n: usize, offset_m: f64) -> Trajectory {
    let start = Point::new(51.5074, -0.1278).unwrap();
    (0..n)
        .map(|i| start.destination(90.0, offset_m + i as f64 * 90.0))
        .collect()
}

/// Forward/reverse pairs at several offsets: queries see real rankings
/// with ties, so a merge-order bug cannot hide.
fn corpus() -> Vec<(TrajId, Trajectory)> {
    let mut items = Vec::new();
    for route in 0..10u32 {
        let path = eastward(40, route as f64 * 400.0);
        items.push((TrajId::new(route * 2), path.clone()));
        items.push((TrajId::new(route * 2 + 1), path.reversed()));
    }
    items
}

fn build_index() -> GeodabIndex {
    let mut index = GeodabIndex::new(GeodabConfig::default());
    for (id, trajectory) in corpus() {
        index.insert(id, &trajectory);
    }
    index
}

fn queries() -> Vec<Trajectory> {
    (0..8)
        .map(|i| {
            eastward(40, i as f64 * 400.0)
                .iter()
                .map(|p| p.destination(45.0, 6.0))
                .collect()
        })
        .collect()
}

fn sharded_config(shards: usize, mux_workers: usize) -> ServerConfig {
    ServerConfig::builder()
        .shards(shards)
        .mux_workers(mux_workers)
        .build()
        .unwrap()
}

#[test]
fn sharded_server_rankings_and_mutations_match_the_monolith() {
    let mut reference = build_index();
    let options = SearchOptions::default().limit(10);

    let running = Server::bind("127.0.0.1:0", build_index(), sharded_config(3, 2))
        .expect("bind sharded loopback")
        .spawn();
    let mut client = Client::connect(running.addr()).expect("connect");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.backend, "sharded");
    assert_eq!(
        stats.trajectories as usize,
        TrajectoryIndex::len(&reference)
    );

    for query in queries() {
        let hits = client.query(&query, &options).expect("query");
        assert_eq!(hits, reference.search(&query, &options));
    }

    // Mutations route through the sharded write path and must leave the
    // served state bit-identical to the same edits applied in process.
    let fresh = eastward(35, 4_400.0);
    let count = client.insert(TrajId::new(64), &fresh).expect("insert");
    reference.insert(TrajId::new(64), &fresh);
    assert_eq!(count as usize, TrajectoryIndex::len(&reference));
    assert!(client.remove(TrajId::new(3)).expect("remove"));
    assert!(reference.remove(TrajId::new(3)));
    assert!(!client.remove(TrajId::new(3)).expect("re-remove"));
    // Replacing an id recycles its interner slot on every cell.
    let reshaped = eastward(35, 4_800.0);
    client.insert(TrajId::new(64), &reshaped).expect("replace");
    reference.insert(TrajId::new(64), &reshaped);

    for query in queries().iter().chain([&fresh, &reshaped]) {
        let hits = client.query(query, &options).expect("query after edits");
        assert_eq!(hits, reference.search(query, &options));
    }
    running.shutdown().expect("clean shutdown");
}

#[test]
fn sixty_four_connections_over_two_mux_workers_see_zero_mismatches() {
    let reference = build_index();
    let options = SearchOptions::default().limit(10);
    let queries = queries();
    let expected: Vec<Vec<SearchResult>> = queries
        .iter()
        .map(|q| reference.search(q, &options))
        .collect();

    // 32× more connections than mux workers: the event loop must keep
    // every socket progressing, in order, with no dropped frames.
    let running = Server::bind("127.0.0.1:0", build_index(), sharded_config(2, 2))
        .expect("bind sharded loopback")
        .spawn();
    let load =
        LoadClient::new(running.addr().to_string(), queries, options).expect_results(expected);
    let run = load.run(64, Duration::from_millis(500)).expect("load run");
    assert_eq!(run.connections, 64);
    assert!(
        run.requests >= 64,
        "every connection completed work: {run:?}"
    );
    assert_eq!(run.mismatches, 0, "{run:?}");
    let served = running.shutdown().expect("clean shutdown");
    assert!(served >= run.requests);
}

#[test]
fn queries_never_block_and_never_diverge_under_concurrent_ingest() {
    let reference = build_index();
    let options = SearchOptions::default().limit(10);
    let queries = queries();
    let expected: Vec<Vec<SearchResult>> = queries
        .iter()
        .map(|q| reference.search(q, &options))
        .collect();

    let running = Server::bind("127.0.0.1:0", build_index(), sharded_config(4, 3))
        .expect("bind sharded loopback")
        .spawn();
    let addr = running.addr();

    let stop = std::sync::atomic::AtomicBool::new(false);
    let ingested = std::thread::scope(|scope| {
        // A writer hammers inserts of geographically disjoint
        // trajectories (no term overlap with the queries), so the
        // expected rankings stay frozen while the copy-on-write cells
        // churn underneath the readers.
        let writer = scope.spawn(|| {
            let mut client = Client::connect(addr).expect("writer connect");
            let mut pushed = 0u32;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let trajectory = eastward(25, 500_000.0 + pushed as f64 * 300.0);
                client
                    .insert(TrajId::new(10_000 + pushed), &trajectory)
                    .expect("ingest insert acked");
                pushed += 1;
            }
            pushed
        });

        let mut readers = Vec::new();
        for reader_index in 0..3usize {
            let queries = &queries;
            let expected = &expected;
            readers.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("reader connect");
                for round in 0..40 {
                    let qi = (round + reader_index) % queries.len();
                    let hits = client.query(&queries[qi], &options).expect("query");
                    assert_eq!(hits, expected[qi], "reader {reader_index} round {round}");
                }
            }));
        }
        for reader in readers {
            reader.join().expect("reader thread");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        writer.join().expect("writer thread")
    });
    assert!(ingested > 0, "the writer made progress during the reads");

    // After the churn the ingested ids are all queryable.
    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.trajectories,
        corpus().len() as u64 + u64::from(ingested)
    );
    running.shutdown().expect("clean shutdown");
}

/// A fresh per-test WAL directory under the target-adjacent temp root.
fn wal_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "geodabs-serve-sharded-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create wal dir");
    dir
}

#[test]
fn sharded_acked_writes_survive_restart_via_cluster_snapshot() {
    let dir = wal_dir("e2e");

    let running = Server::bind("127.0.0.1:0", build_index(), sharded_config(2, 2))
        .expect("bind sharded loopback")
        .with_durability(
            Wal::open(&dir, SyncPolicy::Always).expect("open wal"),
            0,
            Some(Duration::from_millis(20)),
        )
        .spawn();
    let mut client = Client::connect(running.addr()).expect("connect");

    let mut acked = Vec::new();
    for i in 0..8u32 {
        let id = TrajId::new(200 + i);
        let trajectory = eastward(30, 6_000.0 + i as f64 * 250.0);
        client.insert(id, &trajectory).expect("insert acked");
        acked.push((id, trajectory));
    }
    assert!(client.remove(TrajId::new(205)).expect("remove acked"));

    // Background compaction folds the sharded state into a *cluster*
    // snapshot without ever stalling this reader.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let watermark = loop {
        let stats = client.stats_durable().expect("stats");
        let durability = stats.durability.expect("durability stats present");
        if durability.snapshot_watermark >= 9 {
            break durability.snapshot_watermark;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sharded compaction never advanced the watermark: {durability:?}"
        );
        client.ping().expect("reads stay live during compaction");
        std::thread::sleep(Duration::from_millis(10));
    };
    running.shutdown().expect("clean shutdown");

    // Restart: the compaction artifact is a cluster snapshot, replayed
    // with the WAL suffix exactly like a cold boot would.
    let bytes = std::fs::read(dir.join(WAL_SNAPSHOT_FILE)).expect("compacted snapshot exists");
    assert_eq!(
        store::watermark(&bytes).expect("stamped snapshot"),
        Some(watermark)
    );
    let mut restored = ClusterIndex::from_snapshot(&bytes).expect("load cluster snapshot");
    for record in Wal::records(&dir).expect("replayable wal") {
        if record.seq <= watermark {
            continue;
        }
        match record.op {
            WalOp::Insert { id, trajectory } => restored.insert(id, &trajectory),
            WalOp::Remove { id } => {
                restored.remove(id);
            }
            WalOp::InsertFingerprints { .. } => {
                panic!("a sharded server logs whole-trajectory ops")
            }
        }
    }

    let mut reference = build_index();
    for (id, trajectory) in &acked {
        reference.insert(*id, trajectory);
    }
    reference.remove(TrajId::new(205));
    assert_eq!(restored.len(), TrajectoryIndex::len(&reference));
    let options = SearchOptions::default().limit(10);
    for query in queries().iter().chain(acked.iter().map(|(_, t)| t)) {
        assert_eq!(
            restored.search(query, &options),
            reference.search(query, &options),
            "restored sharded state diverged from the reference"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

mod equivalence {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The in-process sharded index (copy-on-write cells, merged
        /// per-cell heaps) returns exactly what a monolithic index over
        /// the same fingerprints would — including after removals and
        /// re-inserts that recycle interner slots — for any workload,
        /// cell count and options.
        #[test]
        fn sharded_equals_monolithic_on_random_mutations(
            sets in proptest::collection::vec(
                proptest::collection::vec(0u32..5_000, 0..30), 1..40),
            query in proptest::collection::vec(0u32..5_000, 0..30),
            cells in 1usize..8,
            limit in 0usize..8,
            threshold_pm in 0u32..101,
            remove_stride in 2usize..5,
        ) {
            let config = GeodabConfig::default();
            let cluster = ClusterIndex::new(config, 10_000, cells).unwrap();
            let sharded = ShardedIndex::from_cluster(cluster);
            let mut mono = GeodabIndex::new(config);
            let insert = |sharded: &ShardedIndex,
                          mono: &mut GeodabIndex,
                          i: usize,
                          set: &[u32]| {
                let fp = geodabs_core::Fingerprints::from_ordered(set.to_vec());
                sharded.insert_fingerprints(TrajId::new(i as u32), fp.clone());
                mono.insert_fingerprints(TrajId::new(i as u32), fp);
            };
            for (i, set) in sets.iter().enumerate() {
                insert(&sharded, &mut mono, i, set);
            }
            for i in (0..sets.len()).step_by(remove_stride) {
                sharded.remove(TrajId::new(i as u32));
                mono.remove(TrajId::new(i as u32));
            }
            for i in (0..sets.len()).step_by(remove_stride * 2) {
                let shifted: Vec<u32> = sets[i].iter().map(|t| t + 1).collect();
                insert(&sharded, &mut mono, i, &shifted);
            }
            prop_assert_eq!(sharded.len() as usize, TrajectoryIndex::len(&mono));
            let query_fp = geodabs_core::Fingerprints::from_ordered(query);
            let mut options =
                SearchOptions::default().max_distance(threshold_pm as f64 / 100.0);
            if limit > 0 {
                options = options.limit(limit - 1);
            }
            prop_assert_eq!(
                sharded.search_fingerprints(&query_fp, &options),
                mono.search_fingerprints(&query_fp, &options)
            );
        }
    }
}
