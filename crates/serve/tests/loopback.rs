//! End-to-end loopback tests: the served rankings must be
//! **bit-identical** to direct in-process `TrajectoryIndex::search`
//! calls — across concurrent pipelined clients — and the server must
//! shut down cleanly on both an explicit signal and a poisoned write
//! lock.

use geodabs_cluster::ClusterIndex;
use geodabs_core::GeodabConfig;
use geodabs_geo::Point;
use geodabs_index::store::{self, Persist};
use geodabs_index::{GeodabIndex, SearchOptions, SearchResult, TrajectoryIndex};
use geodabs_serve::{
    Client, LoadClient, QueryBody, Request, Response, Server, ServerConfig, WAL_SNAPSHOT_FILE,
};
use geodabs_traj::{TrajId, Trajectory};
use geodabs_wal::{SyncPolicy, Wal, WalOp};
use std::time::Duration;

fn eastward(n: usize, offset_m: f64) -> Trajectory {
    let start = Point::new(51.5074, -0.1278).unwrap();
    (0..n)
        .map(|i| start.destination(90.0, offset_m + i as f64 * 90.0))
        .collect()
}

/// A small but non-trivial corpus: forward/reverse pairs at several
/// offsets, so queries see real rankings with distance ties.
fn corpus() -> Vec<(TrajId, Trajectory)> {
    let mut items = Vec::new();
    for route in 0..10u32 {
        let path = eastward(40, route as f64 * 400.0);
        items.push((TrajId::new(route * 2), path.clone()));
        items.push((TrajId::new(route * 2 + 1), path.reversed()));
    }
    items
}

fn build_index() -> GeodabIndex {
    let mut index = GeodabIndex::new(GeodabConfig::default());
    for (id, trajectory) in corpus() {
        index.insert(id, &trajectory);
    }
    index
}

fn queries() -> Vec<Trajectory> {
    (0..8)
        .map(|i| {
            eastward(40, i as f64 * 400.0)
                .iter()
                .map(|p| p.destination(45.0, 6.0))
                .collect()
        })
        .collect()
}

#[test]
fn four_concurrent_pipelined_clients_get_bit_identical_rankings() {
    let reference = build_index();
    let options = SearchOptions::default().limit(10);
    let queries = queries();
    let expected: Vec<Vec<SearchResult>> = queries
        .iter()
        .map(|q| reference.search(q, &options))
        .collect();

    let running = Server::bind(
        "127.0.0.1:0",
        build_index(),
        ServerConfig::builder().mux_workers(4).build().unwrap(),
    )
    .expect("bind loopback")
    .spawn();
    let addr = running.addr();

    std::thread::scope(|scope| {
        for client_index in 0..4 {
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Pipeline: enqueue every request before reading any
                // response; the server must answer them in order.
                for (qi, query) in queries.iter().enumerate() {
                    let rotated = (qi + client_index) % queries.len();
                    client
                        .send(&Request::Query {
                            query: QueryBody::Trajectory(queries[rotated].clone()),
                            options,
                        })
                        .expect("send");
                    let _ = query;
                }
                for qi in 0..queries.len() {
                    let rotated = (qi + client_index) % queries.len();
                    match client.recv().expect("recv") {
                        Response::Hits(hits) => {
                            assert_eq!(hits, expected[rotated], "client {client_index}")
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
            });
        }
    });

    running.shutdown().expect("clean shutdown");
}

#[test]
fn batch_fingerprint_and_mutation_requests_match_in_process_state() {
    let mut reference = build_index();
    let options = SearchOptions::default().limit(5);
    let queries = queries();

    let running = Server::bind(
        "127.0.0.1:0",
        build_index(),
        ServerConfig::builder().mux_workers(2).build().unwrap(),
    )
    .expect("bind loopback")
    .spawn();
    let mut client = Client::connect(running.addr()).expect("connect");

    // Batch query ≡ per-query loop on the in-process index.
    let batches = client.query_batch(&queries, &options).expect("batch");
    let expected: Vec<Vec<SearchResult>> = queries
        .iter()
        .map(|q| reference.search(q, &options))
        .collect();
    assert_eq!(batches, expected);

    // Client-side fingerprinting ≡ server-side fingerprinting.
    let fp = reference.fingerprint_query(&queries[0]);
    let via_fingerprints = client
        .query_fingerprints(fp.ordered(), &options)
        .expect("fingerprint query");
    assert_eq!(via_fingerprints, reference.search(&queries[0], &options));

    // Insert / remove round-trips mirror the in-process index.
    let fresh = eastward(50, 9_000.0);
    reference.insert(TrajId::new(500), &fresh);
    let len = client.insert(TrajId::new(500), &fresh).expect("insert");
    assert_eq!(len as usize, reference.len());
    let hits = client.query(&fresh, &options).expect("query");
    assert_eq!(hits, reference.search(&fresh, &options));
    assert_eq!(hits[0].id, TrajId::new(500));

    assert!(client.remove(TrajId::new(500)).expect("remove"));
    assert!(!client.remove(TrajId::new(500)).expect("re-remove"));
    reference.remove(TrajId::new(500));

    let stats = client.stats().expect("stats");
    assert_eq!(stats.backend, "geodab");
    assert_eq!(stats.trajectories as usize, reference.len());
    assert_eq!(stats.terms as usize, reference.term_count());

    client.ping().expect("ping");
    running.shutdown().expect("clean shutdown");
}

#[test]
fn cluster_backend_serves_identically_to_monolithic() {
    let mut cluster = ClusterIndex::new(GeodabConfig::default(), 10_000, 4).unwrap();
    for (id, trajectory) in corpus() {
        cluster.insert(id, &trajectory);
    }
    let reference = build_index();
    let options = SearchOptions::default().limit(10);

    let running = Server::bind(
        "127.0.0.1:0",
        cluster,
        ServerConfig::builder().mux_workers(2).build().unwrap(),
    )
    .expect("bind loopback")
    .spawn();
    let mut client = Client::connect(running.addr()).expect("connect");
    for query in queries() {
        let hits = client.query(&query, &options).expect("query");
        assert_eq!(hits, reference.search(&query, &options));
    }
    assert_eq!(client.stats().expect("stats").backend, "cluster");
    running.shutdown().expect("clean shutdown");
}

#[test]
fn load_client_reports_traffic_and_zero_mismatches() {
    let reference = build_index();
    let options = SearchOptions::default().limit(10);
    let queries = queries();
    let expected: Vec<Vec<SearchResult>> = queries
        .iter()
        .map(|q| reference.search(q, &options))
        .collect();

    let running = Server::bind(
        "127.0.0.1:0",
        build_index(),
        ServerConfig::builder().mux_workers(4).build().unwrap(),
    )
    .expect("bind loopback")
    .spawn();
    let load =
        LoadClient::new(running.addr().to_string(), queries, options).expect_results(expected);
    let run = load.run(4, Duration::from_millis(300)).expect("load run");
    assert_eq!(run.connections, 4);
    assert!(run.requests > 0, "{run:?}");
    assert_eq!(run.mismatches, 0, "{run:?}");
    assert!(run.qps > 0.0);
    assert!(run.p50_ms <= run.p95_ms && run.p95_ms <= run.p99_ms);
    let served = running.shutdown().expect("clean shutdown");
    assert!(served >= run.requests);
}

#[test]
fn malformed_frames_get_an_error_response_and_the_server_survives() {
    let running = Server::bind(
        "127.0.0.1:0",
        build_index(),
        ServerConfig::builder().mux_workers(2).build().unwrap(),
    )
    .expect("bind loopback")
    .spawn();

    // Hand-write a frame whose checksum is wrong: the server answers
    // with a typed error frame, then drops that connection.
    {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(running.addr()).expect("connect");
        let payload = [1u8]; // a Ping…
        let mut wire = Vec::new();
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&0xBAD0_BAD0u32.to_le_bytes()); // …with a bogus CRC
        wire.extend_from_slice(&payload);
        stream.write_all(&wire).expect("write");
        let mut response = Vec::new();
        stream.read_to_end(&mut response).expect("read");
        assert!(!response.is_empty(), "server answered before closing");
        let mut reader = geodabs_serve::proto::FrameReader::new(response.as_slice());
        match reader
            .read_frame()
            .expect("error frame")
            .map(|p| Response::decode(&p))
        {
            Some(Ok(Response::Error(message))) => {
                assert!(message.contains("checksum"), "{message}")
            }
            other => panic!("expected an error response, got {other:?}"),
        }
    }

    // A fresh connection still works: the bad frame hurt nobody else.
    let mut client = Client::connect(running.addr()).expect("connect");
    client.ping().expect("ping after corruption");
    running.shutdown().expect("clean shutdown");
}

/// A backend that panics while holding the write lock, to exercise the
/// poison path.
struct PanicOnInsert(GeodabIndex);

impl geodabs_serve::ServeBackend for PanicOnInsert {
    fn backend_name(&self) -> &'static str {
        "panic-on-insert"
    }
    fn len(&self) -> usize {
        TrajectoryIndex::len(&self.0)
    }
    fn term_count(&self) -> usize {
        self.0.term_count()
    }
    fn search(&self, query: &Trajectory, options: &SearchOptions) -> Vec<SearchResult> {
        TrajectoryIndex::search(&self.0, query, options)
    }
    fn search_fingerprints(
        &self,
        _ordered: &[u32],
        _options: &SearchOptions,
    ) -> Result<Vec<SearchResult>, &'static str> {
        Err("unsupported")
    }
    fn insert(&mut self, _id: TrajId, _trajectory: &Trajectory) {
        panic!("injected failure while holding the write lock");
    }
    fn remove(&mut self, id: TrajId) -> bool {
        TrajectoryIndex::remove(&mut self.0, id)
    }
}

#[test]
fn poisoned_write_lock_shuts_the_server_down_cleanly() {
    let running = Server::bind(
        "127.0.0.1:0",
        PanicOnInsert(build_index()),
        ServerConfig::builder().mux_workers(2).build().unwrap(),
    )
    .expect("bind loopback")
    .spawn();
    let addr = running.addr();

    // The panicking insert is caught at the request boundary: the
    // victim gets an error response instead of a dead socket…
    {
        let mut victim = Client::connect(addr).expect("connect");
        let err = victim.insert(TrajId::new(9), &eastward(40, 0.0));
        assert!(
            matches!(&err, Err(geodabs_serve::WireError::Remote(m)) if m.contains("panicked")),
            "expected a remote panic report: {err:?}"
        );
    }
    // …and the poisoned lock turns every later request into an error
    // response while the server starts its clean shutdown.
    let mut witness = Client::connect(addr).expect("connect");
    match witness.request(&Request::Stats { durability: false }) {
        Ok(Response::Error(message)) => assert!(message.contains("poisoned"), "{message}"),
        // The shutdown may already have won the race and closed the
        // socket — equally acceptable, as long as join() returns.
        Ok(other) => panic!("unexpected response {other:?}"),
        Err(_) => {}
    }
    running.shutdown().expect("clean shutdown after poison");
}

/// A fresh per-test WAL directory under the target-adjacent temp root.
fn wal_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "geodabs-serve-durability-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create wal dir");
    dir
}

#[test]
fn acked_writes_survive_restart_and_compaction_advances_the_watermark() {
    let dir = wal_dir("e2e");
    let corpus_len = corpus().len() as u64;

    // Phase 1: a durable server; every ack implies the WAL has synced.
    let running = Server::bind(
        "127.0.0.1:0",
        build_index(),
        ServerConfig::builder().mux_workers(2).build().unwrap(),
    )
    .expect("bind loopback")
    .with_durability(
        Wal::open(&dir, SyncPolicy::Always).expect("open wal"),
        0,
        Some(Duration::from_millis(20)),
    )
    .spawn();
    let addr = running.addr();

    let mut client = Client::connect(addr).expect("connect");
    let mut acked = Vec::new();
    for i in 0..12u32 {
        let id = TrajId::new(100 + i);
        let trajectory = eastward(30, 5_000.0 + i as f64 * 250.0);
        client.insert(id, &trajectory).expect("insert acked");
        acked.push((id, trajectory));
    }
    // A replace of an existing id and a removal also go through the log.
    client
        .insert(TrajId::new(100), &acked[1].1)
        .expect("replace");
    assert!(client.remove(TrajId::new(111)).expect("remove"));

    // The durability stats must reflect all 14 mutations as durable…
    let stats = client.stats_durable().expect("stats");
    let durability = stats.durability.expect("durability stats present");
    assert_eq!(durability.last_durable_seq, 14);
    assert!(durability.wal_bytes > 0, "live WAL bytes");

    // …and the background compactor must fold them into a snapshot.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let watermark = loop {
        let stats = client.stats_durable().expect("stats");
        let durability = stats.durability.expect("durability stats present");
        if durability.snapshot_watermark >= 14 {
            break durability.snapshot_watermark;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "compaction never advanced the watermark: {durability:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    running.shutdown().expect("clean shutdown");

    // Phase 2: boot the way the CLI does — snapshot, then the log suffix.
    let snapshot_path = dir.join(WAL_SNAPSHOT_FILE);
    let bytes = std::fs::read(&snapshot_path).expect("compacted snapshot exists");
    assert_eq!(
        store::watermark(&bytes).expect("stamped snapshot"),
        Some(watermark)
    );
    let mut restored = GeodabIndex::from_snapshot(&bytes).expect("load snapshot");
    for record in Wal::records(&dir).expect("replayable wal") {
        if record.seq <= watermark {
            continue;
        }
        match record.op {
            WalOp::Insert { id, trajectory } => restored.insert(id, &trajectory),
            WalOp::Remove { id } => {
                restored.remove(id);
            }
            WalOp::InsertFingerprints { .. } => {
                panic!("a monolithic server never logs shard ops")
            }
        }
    }

    // Zero acked-write loss: corpus + 12 inserts − 1 remove (the
    // replace of id 100 reuses its slot), and the replaced trajectory
    // ranks for its new shape.
    assert_eq!(restored.len() as u64, corpus_len + 12 - 1);
    assert!(
        !restored.remove(TrajId::new(111)),
        "removed id stays removed"
    );
    let hits = restored.search(&acked[1].1, &SearchOptions::default().limit(3));
    assert!(
        hits.iter().any(|h| h.id == TrajId::new(100)),
        "replaced id 100 must rank for its new trajectory: {hits:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
