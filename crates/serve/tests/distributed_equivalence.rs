//! Distributed equivalence suite: a scatter/gather frontend over N
//! shard servers on loopback must answer every query **bit-identical**
//! (`==` on the IEEE-754 distance bits) to the monolithic in-process
//! index — across shard counts, mutations routed through the frontend,
//! pipelined clients, and a restart from per-shard snapshots. Shard
//! loss yields the typed `Unavailable` error, never a silently partial
//! ranking, and the frontend recovers without a restart.

use geodabs_cluster::{ClusterIndex, ShardNode, ShardRouter};
use geodabs_core::{Fingerprinter, GeodabConfig};
use geodabs_geo::Point;
use geodabs_index::store::Persist;
use geodabs_index::{GeodabIndex, SearchOptions, SearchResult, TrajectoryIndex};
use geodabs_serve::{
    Client, Frontend, FrontendConfig, QueryBody, Request, Response, RunningServer, Server,
    ServerConfig, WireError,
};
use geodabs_traj::{TrajId, Trajectory};

/// The paper's fine-grained logical shard count, scaled down enough to
/// keep the suite fast while still spreading terms across every node.
const NUM_SHARDS: u64 = 1_000;

fn eastward(n: usize, offset_m: f64) -> Trajectory {
    let start = Point::new(51.5074, -0.1278).unwrap();
    (0..n)
        .map(|i| start.destination(90.0, offset_m + i as f64 * 90.0))
        .collect()
}

/// Forward/reverse pairs at several offsets: real rankings with
/// distance ties, spread across shards by the Z-curve prefixes.
fn corpus() -> Vec<(TrajId, Trajectory)> {
    let mut items = Vec::new();
    for route in 0..10u32 {
        let path = eastward(40, route as f64 * 400.0);
        items.push((TrajId::new(route * 2), path.clone()));
        items.push((TrajId::new(route * 2 + 1), path.reversed()));
    }
    items
}

fn build_monolith() -> GeodabIndex {
    let mut index = GeodabIndex::new(GeodabConfig::default());
    for (id, trajectory) in corpus() {
        index.insert(id, &trajectory);
    }
    index
}

fn queries() -> Vec<Trajectory> {
    (0..8)
        .map(|i| {
            eastward(40, i as f64 * 400.0)
                .iter()
                .map(|p| p.destination(45.0, 6.0))
                .collect()
        })
        .collect()
}

/// Boots `nodes` shard servers hosting the given [`ShardNode`] slices
/// plus a frontend over them, all on OS-assigned loopback ports.
fn boot(slices: Vec<ShardNode>) -> (Vec<RunningServer>, RunningServer) {
    let nodes = slices.len();
    let mut servers = Vec::with_capacity(nodes);
    let mut addrs = Vec::with_capacity(nodes);
    for slice in slices {
        let server = Server::bind(
            "127.0.0.1:0",
            slice,
            ServerConfig::builder().mux_workers(4).build().unwrap(),
        )
        .expect("bind shard server");
        addrs.push(server.local_addr().to_string());
        servers.push(server.spawn());
    }
    let config = GeodabConfig::default();
    let router = ShardRouter::new(config.prefix_bits(), NUM_SHARDS, nodes).expect("router");
    let frontend = Frontend::bind(
        "127.0.0.1:0",
        Fingerprinter::new(config),
        router,
        addrs,
        FrontendConfig::builder().mux_workers(4).build().unwrap(),
    )
    .expect("bind frontend")
    .spawn();
    (servers, frontend)
}

/// Slices the whole corpus through one cluster ingest — the state each
/// node would hold after a live N-node ingest.
fn preloaded_slices(nodes: usize) -> Vec<ShardNode> {
    let mut cluster =
        ClusterIndex::new(GeodabConfig::default(), NUM_SHARDS, nodes).expect("cluster");
    for (id, trajectory) in corpus() {
        cluster.insert(id, &trajectory);
    }
    (0..nodes)
        .map(|node| cluster.shard_node(node).expect("node in range"))
        .collect()
}

fn empty_slices(nodes: usize) -> Vec<ShardNode> {
    (0..nodes)
        .map(|node| {
            ShardNode::new(GeodabConfig::default(), NUM_SHARDS, nodes, node).expect("shard node")
        })
        .collect()
}

#[test]
fn scatter_gather_matches_the_monolith_at_two_and_four_shards() {
    let monolith = build_monolith();
    let options = SearchOptions::default().limit(10);
    for nodes in [2usize, 4] {
        let (servers, frontend) = boot(preloaded_slices(nodes));
        let mut client = Client::connect(frontend.addr()).expect("connect");

        let stats = client.stats().expect("stats");
        assert_eq!(stats.backend, "frontend");
        assert_eq!(stats.terms, nodes as u64, "terms slot = shard servers");

        for query in queries() {
            let hits = client.query(&query, &options).expect("query");
            let expected = monolith.search(&query, &options);
            assert_eq!(hits, expected, "{nodes} shards");
        }
        // An unfingerprintable (too short) query short-circuits to an
        // empty ranking without touching the shards, like the monolith.
        let tiny: Trajectory = eastward(2, 0.0);
        assert_eq!(
            client.query(&tiny, &options).expect("tiny query"),
            monolith.search(&tiny, &options)
        );

        frontend.shutdown().expect("frontend shutdown");
        for server in servers {
            server.shutdown().expect("shard shutdown");
        }
    }
}

#[test]
fn mutations_through_the_frontend_match_the_monolith() {
    let options = SearchOptions::default().limit(10);
    let (servers, frontend) = boot(empty_slices(2));
    let mut client = Client::connect(frontend.addr()).expect("connect");
    let mut monolith = GeodabIndex::new(GeodabConfig::default());

    // Inserts are acked with the frontend's corpus count and replicate
    // to every shard server.
    for (step, (id, trajectory)) in corpus().into_iter().enumerate() {
        let len = client.insert(id, &trajectory).expect("insert");
        monolith.insert(id, &trajectory);
        assert_eq!(len, step as u64 + 1);
    }
    for query in queries() {
        assert_eq!(
            client.query(&query, &options).expect("query"),
            monolith.search(&query, &options)
        );
    }

    // Removes: present ids ack true and scrub every shard; absent ids
    // ack false without touching any.
    assert!(client.remove(TrajId::new(3)).expect("remove"));
    assert!(monolith.remove(TrajId::new(3)));
    assert!(!client.remove(TrajId::new(999)).expect("remove absent"));

    // Replace-on-reinsert: the new shape must fully scrub the old one
    // on every shard, not leave stale postings behind.
    let replacement = eastward(40, 5_000.0);
    client
        .insert(TrajId::new(0), &replacement)
        .expect("replace");
    monolith.insert(TrajId::new(0), &replacement);

    for query in queries() {
        assert_eq!(
            client.query(&query, &options).expect("query"),
            monolith.search(&query, &options)
        );
    }

    frontend.shutdown().expect("frontend shutdown");
    for server in servers {
        server.shutdown().expect("shard shutdown");
    }
}

#[test]
fn four_pipelined_clients_get_bit_identical_rankings_through_the_frontend() {
    let monolith = build_monolith();
    let options = SearchOptions::default().limit(10);
    let queries = queries();
    let expected: Vec<Vec<SearchResult>> = queries
        .iter()
        .map(|q| monolith.search(q, &options))
        .collect();

    let (servers, frontend) = boot(preloaded_slices(2));
    let addr = frontend.addr();
    std::thread::scope(|scope| {
        for client_index in 0..4 {
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Pipeline: enqueue every request before reading any
                // response; the frontend must answer them in order.
                for qi in 0..queries.len() {
                    let rotated = (qi + client_index) % queries.len();
                    client
                        .send(&Request::Query {
                            query: QueryBody::Trajectory(queries[rotated].clone()),
                            options,
                        })
                        .expect("send");
                }
                for qi in 0..queries.len() {
                    let rotated = (qi + client_index) % queries.len();
                    match client.recv().expect("recv") {
                        Response::Hits(hits) => {
                            assert_eq!(hits, expected[rotated], "client {client_index}")
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
            });
        }
    });

    frontend.shutdown().expect("frontend shutdown");
    for server in servers {
        server.shutdown().expect("shard shutdown");
    }
}

#[test]
fn restart_from_per_shard_snapshots_preserves_rankings() {
    let monolith = build_monolith();
    let options = SearchOptions::default().limit(10);

    // Snapshot each node's slice, "restart" by decoding fresh nodes
    // from the bytes, and serve those.
    let snapshots: Vec<Vec<u8>> = preloaded_slices(4)
        .iter()
        .map(Persist::to_snapshot)
        .collect();
    let restored: Vec<ShardNode> = snapshots
        .iter()
        .map(|bytes| ShardNode::from_snapshot(bytes).expect("decode slice"))
        .collect();
    for (node, slice) in restored.iter().enumerate() {
        assert_eq!(slice.node_id(), node, "snapshot remembers its node id");
    }

    let (servers, frontend) = boot(restored);
    let mut client = Client::connect(frontend.addr()).expect("connect");
    for query in queries() {
        assert_eq!(
            client.query(&query, &options).expect("query"),
            monolith.search(&query, &options)
        );
    }
    frontend.shutdown().expect("frontend shutdown");
    for server in servers {
        server.shutdown().expect("shard shutdown");
    }
}

#[test]
fn killed_shard_yields_typed_unavailable_and_the_frontend_recovers() {
    let monolith = build_monolith();
    let options = SearchOptions::default().limit(10);
    let slices = preloaded_slices(2);
    let spare = slices[0].clone();
    let (mut servers, frontend) = boot(slices);
    let mut client = Client::connect(frontend.addr()).expect("connect");

    let query = &queries()[0];
    let expected = monolith.search(query, &options);
    assert_eq!(client.query(query, &options).expect("warm query"), expected);

    // Kill shard 0 (its worker connections drop mid-service)…
    let node0_addr = servers[0].addr();
    servers.remove(0).shutdown().expect("kill shard 0");

    // …and the frontend answers with the *typed* unavailable error —
    // never a silently partial ranking assembled from the survivors.
    match client.query(query, &options) {
        Err(WireError::Unavailable { node, message }) => {
            assert_eq!(node, 0);
            assert!(!message.is_empty());
        }
        other => panic!("expected a typed Unavailable, got {other:?}"),
    }

    // Bring the shard back on the same port: the frontend redials on
    // the next request and recovers without a restart.
    let reborn = Server::bind(
        node0_addr,
        spare,
        ServerConfig::builder().mux_workers(4).build().unwrap(),
    )
    .expect("rebind shard 0")
    .spawn();
    let mut recovered = Err(WireError::Closed);
    for _ in 0..20 {
        recovered = client.query(query, &options);
        if recovered.is_ok() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert_eq!(recovered.expect("recovered query"), expected);

    frontend.shutdown().expect("frontend shutdown");
    reborn.shutdown().expect("shard shutdown");
    for server in servers {
        server.shutdown().expect("shard shutdown");
    }
}
